package headroom

// Aggregator serialization: the hook distributed execution rests on. A
// shard aggregated in one capserved process is encoded, shipped over the
// internal shard endpoint, decoded by the coordinator and merged — and
// because the codec preserves every float64 bit and the accumulator layout
// exactly, the merged result is indistinguishable from aggregating all
// shards in a single process.

import (
	"errors"

	"headroom/internal/metrics"
)

// EncodeAggregator serializes an aggregator's accumulated state into the
// compact binary wire format used to ship per-shard aggregates between
// processes. The encoding is exact (float64 bit patterns are preserved) and
// deterministic (equal aggregators encode to equal bytes).
func EncodeAggregator(a *Aggregator) ([]byte, error) {
	if a == nil {
		return nil, errors.New("headroom: EncodeAggregator(nil)")
	}
	return a.MarshalBinary()
}

// DecodeAggregator reconstructs an aggregator encoded by EncodeAggregator.
// Merging the result is bit-identical to merging the original: distributed
// shard execution produces the same bytes as a single-process run.
func DecodeAggregator(data []byte) (*Aggregator, error) {
	a := metrics.NewAggregator()
	if err := a.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return a, nil
}
