package headroom_test

// Tests for the distributed-execution hooks: single-shard aggregation
// (Session.AggregateShard), the aggregator wire codec, and the mergePartial
// ordering edge cases that distributed degradation rests on.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"headroom"
	"headroom/internal/faults"
)

// TestAggregateShardMergeIdentical is the distributed-identity property: an
// "emulated cluster" that runs every shard through AggregateShard, encodes
// each aggregate, decodes it on the other side and merges in shard order
// must equal a plain single-session run exactly.
func TestAggregateShardMergeIdentical(t *testing.T) {
	ctx := context.Background()
	cfg := headroom.DefaultFleet(9)
	cfg.Pools = cfg.Pools[:4] // four pools so the split yields all four shards
	src := headroom.NewSimSource(cfg, 1)

	whole, err := headroom.New(ctx, headroom.WithSource(src), headroom.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := whole.Aggregate(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}

	const of = 4
	var merged *headroom.Aggregator
	var records int64
	for i := 0; i < of; i++ {
		// A fresh session per shard, as each remote worker would build.
		s, err := headroom.New(ctx, headroom.WithSource(headroom.NewSimSource(cfg, 1)))
		if err != nil {
			t.Fatal(err)
		}
		agg, n, err := s.AggregateShard(ctx, i, of)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		records += n
		enc, err := headroom.EncodeAggregator(agg)
		if err != nil {
			t.Fatalf("shard %d encode: %v", i, err)
		}
		dec, err := headroom.DecodeAggregator(enc)
		if err != nil {
			t.Fatalf("shard %d decode: %v", i, err)
		}
		if merged == nil {
			merged = dec
		} else {
			merged.Merge(dec)
		}
	}
	if records == 0 {
		t.Fatal("no records consumed across shards")
	}

	wantB, err := headroom.EncodeAggregator(want)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := headroom.EncodeAggregator(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantB, gotB) {
		t.Fatalf("distributed merge differs from single-session aggregate (%d vs %d bytes)", len(gotB), len(wantB))
	}
}

func TestAggregateShardValidation(t *testing.T) {
	ctx := context.Background()
	s, err := headroom.New(ctx, headroom.WithSource(headroom.NewSimSource(multiPoolFleet(1), 1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ index, of int }{
		{-1, 2}, {2, 2}, {0, 0}, {5, 3},
	} {
		if _, _, err := s.AggregateShard(ctx, tc.index, tc.of); err == nil {
			t.Errorf("AggregateShard(%d, %d) succeeded, want error", tc.index, tc.of)
		}
	}
	// A session without a source fails with ErrNoSource.
	bare, err := headroom.New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bare.AggregateShard(ctx, 0, 1); !errors.Is(err, headroom.ErrNoSource) {
		t.Errorf("no-source AggregateShard error = %v, want ErrNoSource", err)
	}
}

// TestAggregateShardPanicIsolated pins the worker half of panic isolation:
// a panic inside the shard's stream must come back as an error naming the
// shard — exactly as the in-process sharded fan-out reports it — instead of
// unwinding into the caller (which, on a dist worker, would kill the whole
// process and every other shard it serves).
func TestAggregateShardPanicIsolated(t *testing.T) {
	ctx := context.Background()
	cfg := headroom.DefaultFleet(9)
	cfg.Pools = cfg.Pools[:2]
	inj := faults.New(7, faults.Rule{Kind: faults.Panic, Pools: []string{cfg.Pools[1].Name}, At: []int{0}, Msg: "injected crash"})
	s, err := headroom.New(ctx, headroom.WithSource(inj.Source(headroom.NewSimSource(cfg, 1))))
	if err != nil {
		t.Fatal(err)
	}

	// Shard 0 (pool 0) is untouched.
	if _, n, err := s.AggregateShard(ctx, 0, 2); err != nil || n == 0 {
		t.Fatalf("healthy shard: n=%d err=%v", n, err)
	}
	// Shard 1 (pool 1) panics: the panic must surface as a shard error.
	_, _, err = s.AggregateShard(ctx, 1, 2)
	if err == nil {
		t.Fatal("panicking shard returned nil error")
	}
	if !strings.Contains(err.Error(), "shard 1 panicked") || !strings.Contains(err.Error(), "injected crash") {
		t.Errorf("error = %q, want shard-1 panic message", err)
	}
}
