package stats

import (
	"fmt"
	"math/rand"
)

// Fold is one train/test split of indices into a dataset.
type Fold struct {
	Train []int
	Test  []int
}

// KFold partitions n indices into k folds after a seeded shuffle, returning
// one Fold per held-out partition. Fold sizes differ by at most one. The
// paper trains its server-grouping decision tree with 5-fold cross
// validation.
func KFold(n, k int, seed int64) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("kfold: need k >= 2, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("kfold: need n >= k, got n=%d k=%d", n, k)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })

	folds := make([]Fold, k)
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	for f := 0; f < k; f++ {
		test := idx[bounds[f]:bounds[f+1]]
		train := make([]int, 0, n-len(test))
		train = append(train, idx[:bounds[f]]...)
		train = append(train, idx[bounds[f+1]:]...)
		tcopy := make([]int, len(test))
		copy(tcopy, test)
		folds[f] = Fold{Train: train, Test: tcopy}
	}
	return folds, nil
}
