// Pool reduction: reproduce the paper's §II-B2 iterative server-reduction
// experiment (Figure 7). A supervised RSM loop removes servers from pool B
// in steps, observes the latency response, extrapolates along the fitted
// quadratic, and stops before the QoS limit would be breached.
//
//	go run ./examples/poolreduction
package main

import (
	"context"
	"fmt"
	"log"

	"headroom"
)

func main() {
	ctx := context.Background()

	s, err := headroom.New(ctx)
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	// The plant is pool B receiving its organic diurnal traffic share in
	// DC 1. In production this loop is supervised by service operators;
	// here the simulator stands in for the live pool. Cancelling ctx stops
	// the experiment between (and inside) observations.
	plant := &headroom.SimPlant{
		Pool:      headroom.PoolB(),
		DC:        headroom.NineRegions()[0], // DC 1
		NoiseFrac: 0.03,
		Seed:      7,
	}

	res, err := s.RunRSM(ctx, plant, headroom.RSMConfig{
		InitialServers: 300,
		QoSLimitMs:     36, // current p95 latency + the 5 ms business budget
		StepFrac:       0.10,
		ObserveTicks:   720, // one day per iteration
		MaxIterations:  10,
		Seed:           8,
	})
	if err != nil {
		log.Fatalf("rsm: %v", err)
	}

	fmt.Println("iter  servers  observed_latency  forecast_next")
	for i, it := range res.Iterations {
		fmt.Printf("%3d   %6d   %8.1f ms       %8.1f ms (at %d servers)\n",
			i+1, it.Servers, it.ObservedLatencyMs, it.ForecastNextMs, it.NextServers)
	}
	fmt.Printf("\nstopped: %s\n", res.Stopped)
	fmt.Printf("final:   %d servers (%.0f%% savings)\n", res.FinalServers, 100*res.SavingsFrac)
	fmt.Printf("model:   %s\n", res.Model)
}
