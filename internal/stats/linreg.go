package stats

import (
	"fmt"
	"math"
)

// LinearFit is the result of a simple ordinary-least-squares regression
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Slope*x + f.Intercept
}

// String renders the fit the way the paper reports them, e.g.
// "y = 0.028*x + 1.37  R2 = 0.984  N = 1221".
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.4g*x + %.4g  R2 = %.3f  N = %d", f.Slope, f.Intercept, f.R2, f.N)
}

// LinearRegression fits y = slope*x + intercept by ordinary least squares.
// It requires at least two points with non-zero variance in x.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("linear regression: %w (%d vs %d)", ErrBadLength, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("linear regression: need >= 2 points, got %d: %w", len(xs), ErrEmptyInput)
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("linear regression: zero variance in x")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	fit := LinearFit{Slope: slope, Intercept: intercept, N: len(xs)}
	preds := make([]float64, len(xs))
	for i, x := range xs {
		preds[i] = fit.Predict(x)
	}
	r2, err := RSquared(ys, preds)
	if err != nil {
		return LinearFit{}, err
	}
	fit.R2 = r2
	return fit, nil
}

// Polynomial is a polynomial in one variable. Coeffs[i] is the coefficient
// of x^i, so Coeffs = [c0, c1, c2] represents c2*x^2 + c1*x + c0.
type Polynomial struct {
	Coeffs []float64
	R2     float64
	N      int
}

// Degree returns the nominal degree of the polynomial (len(Coeffs)-1).
func (p Polynomial) Degree() int {
	if len(p.Coeffs) == 0 {
		return 0
	}
	return len(p.Coeffs) - 1
}

// Predict evaluates the polynomial at x using Horner's method.
func (p Polynomial) Predict(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Derivative returns the first derivative polynomial. The derivative of a
// constant (or empty) polynomial is the zero polynomial.
func (p Polynomial) Derivative() Polynomial {
	if len(p.Coeffs) <= 1 {
		return Polynomial{Coeffs: []float64{0}}
	}
	d := make([]float64, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i++ {
		d[i-1] = p.Coeffs[i] * float64(i)
	}
	return Polynomial{Coeffs: d}
}

// String renders a quadratic the way the paper prints them, e.g.
// "y = 4.028e-05*x^2 + -0.031*x + 36.68".
func (p Polynomial) String() string {
	if len(p.Coeffs) == 0 {
		return "y = 0"
	}
	s := "y = "
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		switch i {
		case 0:
			s += fmt.Sprintf("%.4g", p.Coeffs[i])
		case 1:
			s += fmt.Sprintf("%.4g*x + ", p.Coeffs[i])
		default:
			s += fmt.Sprintf("%.4g*x^%d + ", p.Coeffs[i], i)
		}
	}
	return s
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by least squares
// using the normal equations solved with Gaussian elimination and partial
// pivoting. Degrees used by the methodology are small (1..3) so the normal
// equations are numerically adequate; inputs are centred and scaled
// internally to keep the system well conditioned.
func PolyFit(xs, ys []float64, degree int) (Polynomial, error) {
	if len(xs) != len(ys) {
		return Polynomial{}, fmt.Errorf("polyfit: %w (%d vs %d)", ErrBadLength, len(xs), len(ys))
	}
	if degree < 0 {
		return Polynomial{}, fmt.Errorf("polyfit: negative degree %d", degree)
	}
	if len(xs) < degree+1 {
		return Polynomial{}, fmt.Errorf("polyfit: need >= %d points for degree %d, got %d", degree+1, degree, len(xs))
	}

	// Centre and scale x to improve conditioning of the Vandermonde system.
	mx := Mean(xs)
	sx := StdDev(xs)
	if sx == 0 || math.IsNaN(sx) {
		if degree == 0 {
			return Polynomial{Coeffs: []float64{Mean(ys)}, R2: 0, N: len(xs)}, nil
		}
		return Polynomial{}, fmt.Errorf("polyfit: zero variance in x for degree %d", degree)
	}
	zs := make([]float64, len(xs))
	for i, x := range xs {
		zs[i] = (x - mx) / sx
	}

	m := degree + 1
	// Build normal equations A c = b where A[j][k] = sum z^(j+k),
	// b[j] = sum y z^j.
	a := make([][]float64, m)
	for j := range a {
		a[j] = make([]float64, m+1)
	}
	pows := make([]float64, 2*degree+1)
	for _, z := range zs {
		zp := 1.0
		for k := 0; k <= 2*degree; k++ {
			pows[k] += zp
			zp *= z
		}
	}
	for j := 0; j < m; j++ {
		for k := 0; k < m; k++ {
			a[j][k] = pows[j+k]
		}
	}
	for i, z := range zs {
		zp := 1.0
		for j := 0; j < m; j++ {
			a[j][m] += ys[i] * zp
			zp *= z
		}
	}

	coeffsZ, err := solveGaussian(a)
	if err != nil {
		return Polynomial{}, fmt.Errorf("polyfit: %w", err)
	}

	// Convert coefficients in z = (x-mx)/sx back to coefficients in x by
	// expanding sum_j cz[j] * ((x-mx)/sx)^j.
	coeffs := make([]float64, m)
	// binomial expansion: ((x-mx)/sx)^j = sum_k C(j,k) x^k (-mx)^(j-k) / sx^j
	for j := 0; j < m; j++ {
		cj := coeffsZ[j] / math.Pow(sx, float64(j))
		binom := 1.0
		for k := 0; k <= j; k++ {
			coeffs[k] += cj * binom * math.Pow(-mx, float64(j-k))
			binom = binom * float64(j-k) / float64(k+1)
		}
	}

	p := Polynomial{Coeffs: coeffs, N: len(xs)}
	preds := make([]float64, len(xs))
	for i, x := range xs {
		preds[i] = p.Predict(x)
	}
	r2, err := RSquared(ys, preds)
	if err != nil {
		return Polynomial{}, err
	}
	p.R2 = r2
	return p, nil
}

// solveGaussian solves the augmented system a (m rows, m+1 cols) in place
// using Gaussian elimination with partial pivoting and returns the solution
// vector of length m.
func solveGaussian(a [][]float64) ([]float64, error) {
	m := len(a)
	for col := 0; col < m; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate below.
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		s := a[r][m]
		for c := r + 1; c < m; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
