// Package faults is a deterministic fault-injection harness for the
// capacity-planning pipeline: it wraps any record source (headroom.Source)
// or job function with rules that inject transient errors, permanent
// errors, latency stalls and panics at configurable record offsets or
// probabilities — fully reproducible from a seed.
//
// The package exists so failure paths can be driven as deliberately as
// happy paths: the chaos tests replay the exact same faults from the same
// seed, and resilience layers (headroom.ResilientSource, internal/jobs
// retries, the capserved circuit breaker) can be exercised against known
// bad states instead of waiting for production to produce them.
//
// Determinism contract: a fresh Injector with the same seed and rules,
// driven through the same call sequence (same shard count, same stream
// order), injects the same faults at the same points. Offset-based
// transient, stall and panic rules are one-shot per (rule, offset) within
// an injector's lifetime, so a retry of the same stream succeeds — exactly
// the shape a retry layer needs. Permanent rules fire on every attempt.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"headroom"
	"headroom/internal/jobs"
)

// Kind is the class of an injected fault.
type Kind string

const (
	// Transient injects an error marked retryable (headroom.Transient for
	// sources, jobs.Transient for job funcs).
	Transient Kind = "transient"
	// Permanent injects an unmarked error: resilience layers must not
	// retry it.
	Permanent Kind = "permanent"
	// Stall injects a latency stall (Rule.Stall) before the record or call
	// proceeds; the stall honours context cancellation.
	Stall Kind = "stall"
	// Panic injects a panic, exercising panic-isolation paths.
	Panic Kind = "panic"
)

// Rule schedules injections of one fault kind. At-offset and probability
// triggers may be combined in one injector by passing multiple rules.
type Rule struct {
	// Kind is the fault class; required.
	Kind Kind
	// Pools restricts the rule to records of the named pools (and offset
	// counting to those records). Empty matches every record. Job-func
	// injection ignores the filter: funcs have no pool identity.
	Pools []string
	// At lists the matching-record ordinals (0-based, counted per stream
	// attempt) before which the fault fires. For Transient, Stall and
	// Panic the (rule, offset) pair fires at most once per injector
	// lifetime, so retries of the same stream proceed past it; Permanent
	// offsets fire on every attempt.
	At []int
	// Prob injects before each matching record with this probability,
	// drawn from the injector's seeded generator.
	Prob float64
	// StallFor is the injected delay for Kind Stall; default 50 ms.
	StallFor time.Duration
	// Msg overrides the injected error/panic text.
	Msg string
}

func (r Rule) matches(pool string) bool {
	if len(r.Pools) == 0 {
		return true
	}
	for _, p := range r.Pools {
		if p == pool {
			return true
		}
	}
	return false
}

func (r Rule) hasOffset(ord int) bool {
	for _, a := range r.At {
		if a == ord {
			return true
		}
	}
	return false
}

func (r Rule) stall() time.Duration {
	if r.StallFor > 0 {
		return r.StallFor
	}
	return 50 * time.Millisecond
}

func (r Rule) message(where string) string {
	if r.Msg != "" {
		return r.Msg
	}
	return fmt.Sprintf("faults: injected %s fault %s", r.Kind, where)
}

// Injector deterministically injects the configured rules into sources and
// job functions. One injector may wrap many streams; its injection counter
// aggregates across all of them (exported to metrics by capserved).
type Injector struct {
	seed     int64
	rules    []Rule
	injected atomic.Int64

	mu    sync.Mutex
	fired map[string]bool // one-shot (scope, rule, offset) triggers
}

// New builds an injector from a seed and rules. Rules are validated
// minimally: an unknown kind panics at injection time, not construction.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: append([]Rule(nil), rules...), fired: make(map[string]bool)}
}

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() int64 { return in.injected.Load() }

// Rules returns a copy of the configured rules.
func (in *Injector) Rules() []Rule { return append([]Rule(nil), in.rules...) }

// onceFired reports whether the one-shot trigger key already fired, marking
// it fired otherwise.
func (in *Injector) onceFired(key string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired[key] {
		return true
	}
	in.fired[key] = true
	return false
}

// Source wraps src with fault injection. The wrapper preserves sharding
// (each shard gets a decorrelated but reproducible random stream) and pool
// attribution (headroom.PoolNamer), so it can sit under
// headroom.ResilientSource and sharded aggregation transparently.
func (in *Injector) Source(src headroom.Source) headroom.Source {
	return &faultSource{in: in, src: src, scope: "s", seed: in.seed}
}

// faultSource is one wrapped source (or shard of one).
type faultSource struct {
	in    *Injector
	src   headroom.Source
	scope string // distinguishes one-shot triggers across shards
	seed  int64

	mu  sync.Mutex
	rng *rand.Rand
}

func (f *faultSource) Stream(ctx context.Context, emit func(headroom.Record) error) error {
	// Per-rule matching-record ordinals restart every attempt; the rng and
	// one-shot set persist across attempts so probability draws advance and
	// one-shot offsets stay consumed.
	counts := make([]int, len(f.in.rules))
	return f.src.Stream(ctx, func(r headroom.Record) error {
		for ri := range f.in.rules {
			rule := &f.in.rules[ri]
			if !rule.matches(r.Pool) {
				continue
			}
			ord := counts[ri]
			counts[ri]++
			fire := false
			if rule.hasOffset(ord) {
				if rule.Kind == Permanent {
					fire = true
				} else {
					fire = !f.in.onceFired(fmt.Sprintf("%s/%d/%d", f.scope, ri, ord))
				}
			}
			if !fire && rule.Prob > 0 && f.draw() < rule.Prob {
				fire = true
			}
			if !fire {
				continue
			}
			where := fmt.Sprintf("before record %d of pool %s@%s", ord, r.Pool, r.DC)
			if err := f.in.inject(ctx, rule, where); err != nil {
				return err
			}
		}
		return emit(r)
	})
}

// draw samples the wrapped source's seeded generator.
func (f *faultSource) draw() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.seed))
	}
	return f.rng.Float64()
}

// inject performs one fault. Stalls return nil after the delay (the stream
// proceeds); error kinds return the injected error; Panic panics.
func (in *Injector) inject(ctx context.Context, rule *Rule, where string) error {
	in.injected.Add(1)
	msg := rule.message(where)
	switch rule.Kind {
	case Transient:
		return headroom.Transient(fmt.Errorf("%s", msg))
	case Permanent:
		return fmt.Errorf("%s", msg)
	case Stall:
		select {
		case <-time.After(rule.stall()):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case Panic:
		panic(msg)
	}
	panic(fmt.Sprintf("faults: unknown fault kind %q", rule.Kind))
}

// Shards forwards sharding, wrapping each shard with a decorrelated but
// reproducible random stream and a distinct one-shot scope.
func (f *faultSource) Shards(n int) []headroom.Source {
	sh, ok := f.src.(headroom.ShardedSource)
	if !ok || n <= 1 {
		return []headroom.Source{f}
	}
	subs := sh.Shards(n)
	if len(subs) <= 1 {
		return []headroom.Source{f}
	}
	out := make([]headroom.Source, len(subs))
	for i, sub := range subs {
		out[i] = &faultSource{
			in:    f.in,
			src:   sub,
			scope: fmt.Sprintf("%s/%d", f.scope, i),
			seed:  mix(f.seed, int64(i)),
		}
	}
	return out
}

// PoolNames forwards the underlying source's pool attribution.
func (f *faultSource) PoolNames() []string {
	if pn, ok := f.src.(headroom.PoolNamer); ok {
		return pn.PoolNames()
	}
	return nil
}

// mix folds a shard index into a seed (splitmix64 finalizer).
func mix(seed, idx int64) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Func wraps a job function with fault injection. Each invocation of the
// wrapped function counts as one ordinal against every rule (pool filters
// do not apply); transient faults are marked with jobs.Transient so the job
// queue retries them. Stalls delay the call; panics exercise the queue's
// panic isolation.
func (in *Injector) Func(fn jobs.Func) jobs.Func {
	var calls atomic.Int64
	rng := rand.New(rand.NewSource(mix(in.seed, -7)))
	var mu sync.Mutex
	draw := func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Float64()
	}
	return func(ctx context.Context) (any, error) {
		ord := int(calls.Add(1)) - 1
		for ri := range in.rules {
			rule := &in.rules[ri]
			fire := false
			if rule.hasOffset(ord) {
				if rule.Kind == Permanent {
					fire = true
				} else {
					fire = !in.onceFired(fmt.Sprintf("f/%d/%d", ri, ord))
				}
			}
			if !fire && rule.Prob > 0 && draw() < rule.Prob {
				fire = true
			}
			if !fire {
				continue
			}
			where := fmt.Sprintf("before call %d", ord)
			if rule.Kind == Transient {
				in.injected.Add(1)
				return nil, jobs.Transient(fmt.Errorf("%s", rule.message(where)))
			}
			if err := in.inject(ctx, rule, where); err != nil {
				return nil, err
			}
		}
		return fn(ctx)
	}
}

// String renders the injector's configuration for logs.
func (in *Injector) String() string {
	parts := make([]string, len(in.rules))
	for i, r := range in.rules {
		var b strings.Builder
		fmt.Fprintf(&b, "%s", r.Kind)
		if len(r.Pools) > 0 {
			sorted := append([]string(nil), r.Pools...)
			sort.Strings(sorted)
			fmt.Fprintf(&b, " pools=%s", strings.Join(sorted, ","))
		}
		if len(r.At) > 0 {
			fmt.Fprintf(&b, " at=%v", r.At)
		}
		if r.Prob > 0 {
			fmt.Fprintf(&b, " p=%g", r.Prob)
		}
		parts[i] = b.String()
	}
	return fmt.Sprintf("faults(seed=%d: %s)", in.seed, strings.Join(parts, "; "))
}

var (
	_ headroom.ShardedSource = (*faultSource)(nil)
	_ headroom.PoolNamer     = (*faultSource)(nil)
)
