module headroom

go 1.24
