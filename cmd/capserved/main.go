// Command capserved is the long-running capacity-planning service: it
// exposes the pipeline the one-shot CLIs (capsim, capplan) drive — fleet
// simulation, planning, offline A/B validation and workload forecasting —
// as an HTTP/JSON job API with a bounded worker pool and a keyed result
// cache, so operators can submit what-if plans against a shared deployment
// and identical queries cost one simulation.
//
// Usage:
//
//	capserved -addr :8080
//	capserved -addr :8080 -workers 8 -cache 256 -job-timeout 10m
//
// Endpoints: POST /v1/{simulate,plan,validate,forecast}, GET /v1/jobs/{id},
// GET /healthz, GET /readyz, GET /metrics (Prometheus text format). See the
// README's "Running the server" and "Failure semantics" sections for request
// examples and degraded-mode behaviour.
//
// SIGTERM or SIGINT drains gracefully: the listener closes, in-flight
// requests and queued jobs finish (bounded by -drain-timeout), then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"headroom/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "capserved:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is cancelled and the drain
// completes. When ready is non-nil it receives the bound address once the
// listener is up (used by the e2e test to learn the ephemeral port).
func run(ctx context.Context, args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("capserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers      = fs.Int("workers", 0, "job worker-pool size (0 = one per CPU)")
		queueDepth   = fs.Int("queue", 0, "pending job queue depth (0 = 4x workers)")
		cacheSize    = fs.Int("cache", 128, "result cache capacity (number of results)")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "per-job deadline")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown window")
		shards       = fs.Int("shards", 0, "aggregation shards per job (0 = one per CPU)")

		partial       = fs.Bool("partial-results", false, "serve degraded results when some pools fail instead of failing the whole job")
		retryAttempts = fs.Int("source-retries", 0, "max source stream attempts per shard (0 = default 3, 1 = no retries)")
		retryBackoff  = fs.Duration("source-retry-backoff", 0, "initial backoff between source retries (0 = default 50ms)")
		brThreshold   = fs.Int("breaker-threshold", 0, "consecutive job failures before an endpoint's circuit opens (0 = default 5, negative = disabled)")
		brOpenFor     = fs.Duration("breaker-open-for", 0, "how long an open circuit fast-fails before probing (0 = default 10s)")
		readyHWM      = fs.Int("ready-watermark", 0, "queue depth at which /readyz reports overloaded (0 = 3/4 of queue depth)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fail := func(format string, v ...any) error {
		fmt.Fprintf(fs.Output(), format+"\n\n", v...)
		fs.Usage()
		return fmt.Errorf(format, v...)
	}
	if *workers < 0 {
		return fail("workers must be >= 0, got %d", *workers)
	}
	if *queueDepth < 0 {
		return fail("queue must be >= 0, got %d", *queueDepth)
	}
	if *cacheSize < 1 {
		return fail("cache must be >= 1, got %d", *cacheSize)
	}
	if *jobTimeout <= 0 {
		return fail("job-timeout must be positive, got %s", *jobTimeout)
	}
	if *drainTimeout <= 0 {
		return fail("drain-timeout must be positive, got %s", *drainTimeout)
	}
	if *shards < 0 {
		return fail("shards must be >= 0, got %d", *shards)
	}
	if *retryAttempts < 0 {
		return fail("source-retries must be >= 0, got %d", *retryAttempts)
	}
	if *retryBackoff < 0 {
		return fail("source-retry-backoff must be >= 0, got %s", *retryBackoff)
	}
	if *brOpenFor < 0 {
		return fail("breaker-open-for must be >= 0, got %s", *brOpenFor)
	}
	if *readyHWM < 0 {
		return fail("ready-watermark must be >= 0, got %d", *readyHWM)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", *addr, err)
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	srv := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		CacheSize:          *cacheSize,
		JobTimeout:         *jobTimeout,
		DrainTimeout:       *drainTimeout,
		Shards:             *shards,
		PartialResults:     *partial,
		RetryAttempts:      *retryAttempts,
		RetryBackoff:       *retryBackoff,
		BreakerThreshold:   *brThreshold,
		BreakerOpenFor:     *brOpenFor,
		ReadyHighWatermark: *readyHWM,
		Logf:               log.New(os.Stderr, "", log.LstdFlags).Printf,
	})
	return srv.Serve(ctx, ln)
}
