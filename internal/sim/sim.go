package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"headroom/internal/trace"
	"headroom/internal/workload"
)

// Action is a scheduled operational change applied to one pool in one
// datacenter at a tick. Actions model the paper's production experiments:
// server-count reductions (§II-B2), their restoration, and deployments that
// shift the CPU intercept or latency base (the confound observed during the
// pool B experiment).
type Action struct {
	Pool string
	DC   string
	Tick int
	// SetServers, when positive, caps the pool's active servers in this
	// datacenter at the given count.
	SetServers int
	// RestoreServers returns the pool to its nominal server count.
	RestoreServers bool
	// CPUInterceptDelta permanently shifts the CPU intercept from this
	// tick on (code/data deployments).
	CPUInterceptDelta float64
	// LatencyDelta permanently shifts the latency base from this tick on.
	LatencyDelta float64
}

// serverState is the immutable identity of one simulated server.
type serverState struct {
	name       string
	gen        Generation
	maintStart int     // tick-of-day when its maintenance window opens
	rpsJitter  float64 // persistent per-server load-balance skew (~1.0)
}

// poolDCState is the mutable per-(pool, datacenter) simulation state.
type poolDCState struct {
	dc          workload.Datacenter
	servers     []serverState
	rng         *rand.Rand
	target      int // active server cap (<= len(servers))
	cpuDelta    float64
	latDelta    float64
	incidentEnd int // tick before which an incident holds servers down
	incidentN   int // servers taken by the incident
	actions     []Action
	nextAction  int
}

// poolState is one pool across all datacenters.
type poolState struct {
	cfg   PoolConfig
	gen   *workload.Generator
	perDC []*poolDCState // indexed like FleetConfig.DCs; nil when absent
}

// Simulator runs a configured fleet over a tick timeline.
type Simulator struct {
	cfg         FleetConfig
	tick        time.Duration
	ticksPerDay int
	pools       []*poolState
}

// New validates the configuration and builds a simulator. Actions are
// applied at their scheduled ticks in order.
func New(cfg FleetConfig, actions ...Action) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = workload.TickDuration
	}
	s := &Simulator{cfg: cfg, tick: tick, ticksPerDay: workload.TicksPerDay(tick)}

	dcIndex := make(map[string]int, len(cfg.DCs))
	for i, dc := range cfg.DCs {
		dcIndex[dc.Name] = i
	}
	poolIndex := make(map[string]*poolState, len(cfg.Pools))

	for pi, pc := range cfg.Pools {
		gen, err := workload.NewGenerator(pc.Traffic, cfg.DCs, cfg.Schedule, tick,
			cfg.WorkloadNoiseFrac, deriveSeed(cfg.Seed, pc.Name, "workload"))
		if err != nil {
			return nil, fmt.Errorf("sim: pool %s: %w", pc.Name, err)
		}
		ps := &poolState{cfg: cfg.Pools[pi], gen: gen, perDC: make([]*poolDCState, len(cfg.DCs))}
		for dcName, n := range pc.Servers {
			di := dcIndex[dcName]
			st := &poolDCState{
				dc:       cfg.DCs[di],
				rng:      rand.New(rand.NewSource(deriveSeed(cfg.Seed, pc.Name, dcName))),
				target:   n,
				latDelta: pc.DCLatencyDelta[dcName],
			}
			st.servers = buildServers(pc, dcName, n, s.ticksPerDay, st.rng)
			ps.perDC[di] = st
		}
		poolIndex[pc.Name] = ps
		s.pools = append(s.pools, ps)
	}

	for _, a := range actions {
		ps, ok := poolIndex[a.Pool]
		if !ok {
			return nil, fmt.Errorf("sim: action references unknown pool %q", a.Pool)
		}
		di, ok := dcIndex[a.DC]
		if !ok || ps.perDC[di] == nil {
			return nil, fmt.Errorf("sim: action references pool %q absent from datacenter %q", a.Pool, a.DC)
		}
		if a.SetServers < 0 || a.SetServers > len(ps.perDC[di].servers) {
			return nil, fmt.Errorf("sim: action sets %d servers for pool %s@%s (max %d)",
				a.SetServers, a.Pool, a.DC, len(ps.perDC[di].servers))
		}
		ps.perDC[di].actions = append(ps.perDC[di].actions, a)
	}
	for _, ps := range s.pools {
		for _, st := range ps.perDC {
			if st == nil {
				continue
			}
			sort.SliceStable(st.actions, func(i, j int) bool { return st.actions[i].Tick < st.actions[j].Tick })
		}
	}
	return s, nil
}

// buildServers assigns names, hardware generations and staggered maintenance
// windows.
func buildServers(pc PoolConfig, dcName string, n, ticksPerDay int, rng *rand.Rand) []serverState {
	gens := pc.Generations
	if len(gens) == 0 {
		gens = []Generation{{Name: "gen1", Share: 1, CPUFactor: 1}}
	}
	var totalShare float64
	for _, g := range gens {
		totalShare += g.Share
	}
	servers := make([]serverState, n)
	// Assign generations in contiguous blocks proportional to share.
	gi, consumed := 0, 0.0
	for i := range servers {
		frac := float64(i) / float64(n)
		for gi < len(gens)-1 && frac >= (consumed+gens[gi].Share)/totalShare {
			consumed += gens[gi].Share
			gi++
		}
		servers[i] = serverState{
			name:       fmt.Sprintf("%s-%s-%04d", pc.Name, sanitize(dcName), i),
			gen:        gens[gi],
			maintStart: i * ticksPerDay / n,
			rpsJitter:  1 + 0.03*rng.NormFloat64(),
		}
		if servers[i].rpsJitter < 0.5 {
			servers[i].rpsJitter = 0.5
		}
	}
	return servers
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// deriveSeed mixes the fleet seed with component names so every stream is
// independent yet reproducible.
func deriveSeed(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	return seed ^ int64(h.Sum64())
}

// TicksPerDay returns the number of windows per day at the configured tick.
func (s *Simulator) TicksPerDay() int { return s.ticksPerDay }

// Run simulates [0, ticks) windows, emitting one record per server per tick
// through emit. Emission order is deterministic: tick, then pool
// (configuration order), then datacenter (configuration order), then server.
func (s *Simulator) Run(ticks int, emit func(trace.Record) error) error {
	return s.RunContext(context.Background(), ticks, emit)
}

// RunContext is Run with cancellation: it checks ctx at every pool-DC step
// and returns ctx.Err() as soon as the context is done, leaving the
// simulator's remaining timeline unevaluated.
func (s *Simulator) RunContext(ctx context.Context, ticks int, emit func(trace.Record) error) error {
	if ticks <= 0 {
		return fmt.Errorf("sim: non-positive tick count %d", ticks)
	}
	if emit == nil {
		return fmt.Errorf("sim: nil emit callback")
	}
	for tick := 0; tick < ticks; tick++ {
		for _, ps := range s.pools {
			for di, st := range ps.perDC {
				if st == nil {
					continue
				}
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := s.stepPoolDC(ps, st, di, tick, emit); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunCollect simulates and returns all records in memory. Intended for
// small fleets and tests; large fleets should stream through Run.
func (s *Simulator) RunCollect(ticks int) ([]trace.Record, error) {
	var out []trace.Record
	err := s.Run(ticks, func(r trace.Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// stepPoolDC advances one pool in one datacenter by one tick.
func (s *Simulator) stepPoolDC(ps *poolState, st *poolDCState, dcIdx, tick int, emit func(trace.Record) error) error {
	// Apply due actions.
	for st.nextAction < len(st.actions) && st.actions[st.nextAction].Tick <= tick {
		a := st.actions[st.nextAction]
		st.nextAction++
		if a.RestoreServers {
			st.target = len(st.servers)
		} else if a.SetServers > 0 {
			st.target = a.SetServers
		}
		st.cpuDelta += a.CPUInterceptDelta
		st.latDelta += a.LatencyDelta
	}

	// Roll pool-wide incidents at local day boundaries.
	av := ps.cfg.Availability
	if av.IncidentProb > 0 && tick%s.ticksPerDay == 0 {
		if st.rng.Float64() < av.IncidentProb {
			st.incidentEnd = tick + av.IncidentTicks
			st.incidentN = int(av.IncidentFrac * float64(st.target))
		}
	}

	// Offered load for this pool in this datacenter.
	offered, err := ps.gen.RPS(dcIdx, tick)
	if err != nil {
		return err
	}
	offered *= ps.cfg.Schedule.Multiplier(st.dc.Name, tick)

	// Determine availability per server, then share the offered load over
	// the online ones (the pool's load balancer spreads requests evenly).
	online := make([]bool, len(st.servers))
	nOnline := 0
	for i := range st.servers {
		online[i] = s.serverOnline(ps, st, i, tick)
		if online[i] {
			nOnline++
		}
	}
	var perServer float64
	if nOnline > 0 {
		perServer = offered / float64(nOnline)
	}

	for i := range st.servers {
		rec := trace.Record{
			Tick:       tick,
			DC:         st.dc.Name,
			Pool:       ps.cfg.Name,
			Server:     st.servers[i].name,
			Generation: st.servers[i].gen.Name,
			Online:     online[i],
		}
		if online[i] {
			rec = s.fillResponse(rec, ps.cfg.Response, st, st.servers[i], perServer, tick)
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}

// serverOnline evaluates the availability model for one server at one tick.
func (s *Simulator) serverOnline(ps *poolState, st *poolDCState, i, tick int) bool {
	if i >= st.target {
		return false // removed by a capacity action
	}
	av := ps.cfg.Availability
	tod := tick % s.ticksPerDay

	// Planned maintenance window (staggered per server).
	if av.PlannedDailyFrac > 0 {
		maintLen := int(av.PlannedDailyFrac * float64(s.ticksPerDay))
		if maintLen > 0 {
			delta := tod - st.servers[i].maintStart
			if delta < 0 {
				delta += s.ticksPerDay
			}
			if delta < maintLen {
				return false
			}
		}
	}

	// Repurposed off-peak: offline in a window centred on the local
	// traffic trough.
	if av.RepurposedOffPeakFrac > 0 {
		localFrac := s.localDayFrac(st.dc, tick)
		troughFrac := ps.cfg.Traffic.PeakHour/24 + 0.5
		if troughFrac >= 1 {
			troughFrac -= 1
		}
		d := math.Abs(localFrac - troughFrac)
		if d > 0.5 {
			d = 1 - d
		}
		if d < av.RepurposedOffPeakFrac/2 {
			return false
		}
	}

	// Incident: the first incidentN servers are down until incidentEnd.
	if tick < st.incidentEnd && i < st.incidentN {
		return false
	}
	return true
}

func (s *Simulator) localDayFrac(dc workload.Datacenter, tick int) float64 {
	local := time.Duration(tick)*s.tick + dc.UTCOffset
	day := local % (24 * time.Hour)
	if day < 0 {
		day += 24 * time.Hour
	}
	return float64(day) / float64(24*time.Hour)
}

// fillResponse computes the server's resource and QoS response to its share
// of the offered load.
func (s *Simulator) fillResponse(rec trace.Record, rp ResponseParams, st *poolDCState, srv serverState, perServer float64, tick int) trace.Record {
	rng := st.rng
	rps := perServer * srv.rpsJitter
	if rps < 0 {
		rps = 0
	}
	rec.RPS = rps

	cpu := srv.gen.CPUFactor*(rp.CPUSlope*rps+rp.CPUIntercept) + st.cpuDelta
	if rp.CPUNoise > 0 {
		cpu += rp.CPUNoise * rng.NormFloat64()
	}
	if rp.SpikeProb > 0 && rng.Float64() < rp.SpikeProb {
		cpu += rp.SpikeAmp * (0.5 + 0.5*rng.Float64())
	}
	var bgBytes float64
	if rp.BackgroundDurTicks > 0 && rp.BackgroundPeriodTicks > 0 {
		// Staggered per server like maintenance, so pool aggregates show
		// the rolling contamination the paper describes.
		phase := (tick + srv.maintStart) % rp.BackgroundPeriodTicks
		if phase < rp.BackgroundDurTicks {
			cpu += rp.BackgroundCPU * (0.7 + 0.6*rng.Float64())
			bgBytes = rp.BackgroundNetBytes
		}
	}
	rec.CPUPct = clamp(cpu, 0, 100)

	lat := rp.LatQuad[2]*rps*rps + rp.LatQuad[1]*rps + rp.LatQuad[0] + st.latDelta
	if rp.LatNoise > 0 {
		lat += rp.LatNoise * rng.NormFloat64()
	}
	if lat < 0 {
		lat = 0
	}
	rec.LatencyMs = lat

	rec.NetBytes = math.Max(0, rp.NetBytesPerReq*rps*(1+0.08*rng.NormFloat64())+bgBytes)
	rec.NetPkts = math.Max(0, rp.NetPktsPerReq*rps*(1+0.08*rng.NormFloat64()))
	// Paging activity varies widely at any workload level ("vertical
	// patterns" in Figure 2): dominated by background behaviour.
	rec.MemPages = rng.Float64() * rp.MemPagesBase
	rec.DiskRead = rec.MemPages * rp.DiskBytesPerPage * (1 + 0.1*rng.NormFloat64())
	if rec.DiskRead < 0 {
		rec.DiskRead = 0
	}
	rec.DiskQueue = rp.DiskQueueBase * rng.ExpFloat64()
	if rp.ErrorRate > 0 && rng.Float64() < rp.ErrorRate {
		rec.Errors = float64(1 + rng.Intn(3))
	}
	return rec
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SimulatePool runs one pool in one datacenter against an explicit offered-
// load series (total pool RPS per tick) with a fixed server count, returning
// all records. This is the controlled harness used by the synthetic-workload
// (step 3) and offline-validation (step 4) stages, where the operator drives
// load precisely instead of receiving organic traffic.
func SimulatePool(pc PoolConfig, dcName string, offered []float64, servers int, seed int64) ([]trace.Record, error) {
	return SimulatePoolContext(context.Background(), pc, dcName, offered, servers, seed)
}

// SimulatePoolContext is SimulatePool with cancellation, checked once per
// tick.
func SimulatePoolContext(ctx context.Context, pc PoolConfig, dcName string, offered []float64, servers int, seed int64) ([]trace.Record, error) {
	if servers <= 0 {
		return nil, fmt.Errorf("sim: non-positive server count %d", servers)
	}
	if len(offered) == 0 {
		return nil, fmt.Errorf("sim: empty offered-load series")
	}
	if err := pc.Response.Validate(); err != nil {
		return nil, err
	}
	ticksPerDay := workload.TicksPerDay(workload.TickDuration)
	rng := rand.New(rand.NewSource(deriveSeed(seed, pc.Name, dcName, "offline")))
	st := &poolDCState{
		dc:      workload.Datacenter{Name: dcName, Weight: 1},
		rng:     rng,
		target:  servers,
		servers: buildServers(pc, dcName, servers, ticksPerDay, rng),
	}
	sim := &Simulator{tick: workload.TickDuration, ticksPerDay: ticksPerDay}
	var out []trace.Record
	for tick, load := range offered {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if load < 0 {
			return nil, fmt.Errorf("sim: negative offered load %v at tick %d", load, tick)
		}
		perServer := load / float64(servers)
		for i := range st.servers {
			rec := trace.Record{
				Tick:       tick,
				DC:         dcName,
				Pool:       pc.Name,
				Server:     st.servers[i].name,
				Generation: st.servers[i].gen.Name,
				Online:     true,
			}
			rec = sim.fillResponse(rec, pc.Response, st, st.servers[i], perServer, tick)
			out = append(out, rec)
		}
	}
	return out, nil
}
