package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"headroom/internal/baseline"
	"headroom/internal/optimize"
	"headroom/internal/stats"
	"headroom/internal/workload"
)

// AblationRANSAC quantifies why §II-B2 fits its latency models with robust
// regression: production experiment windows are contaminated by deployments
// and traffic shifts. It generates a pool-B-like latency curve with a block
// of deployment-inflated outliers and compares extrapolation error of plain
// OLS against RANSAC across contamination levels.
func AblationRANSAC(ctx context.Context, cfg Config) (*Result, error) {
	truth := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	res := &Result{
		ID:     "ablation-ransac",
		Title:  "Extrapolation error at 540 RPS: OLS vs RANSAC under contamination",
		Header: []string{"outlier_frac", "ols_abs_err_ms", "ransac_abs_err_ms"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 900))
	target := 540.0
	truthAt := truth.Predict(target)
	var olsWorst, ransacWorst float64
	for _, frac := range []float64{0, 0.05, 0.10, 0.20, 0.30} {
		var xs, ys []float64
		for r := 150.0; r <= 420; r += 0.5 {
			xs = append(xs, r)
			ys = append(ys, truth.Predict(r)+0.4*rng.NormFloat64())
		}
		n := int(frac * float64(len(xs)))
		for i := 0; i < n; i++ {
			j := rng.Intn(len(ys))
			ys[j] += 15 + 10*rng.Float64() // deployment-window inflation
		}
		ols, err := stats.PolyFit(xs, ys, 2)
		if err != nil {
			return nil, err
		}
		rob, err := stats.RANSAC(xs, ys, stats.RANSACConfig{Degree: 2, Seed: cfg.Seed, MaxIterations: 300})
		if err != nil {
			return nil, err
		}
		olsErr := math.Abs(ols.Predict(target) - truthAt)
		robErr := math.Abs(rob.Model.Predict(target) - truthAt)
		if olsErr > olsWorst {
			olsWorst = olsErr
		}
		if robErr > ransacWorst {
			ransacWorst = robErr
		}
		res.Rows = append(res.Rows, []string{f2(frac), f2(olsErr), f2(robErr)})
	}
	res.Metric("ols_worst_err_ms", olsWorst)
	res.Metric("ransac_worst_err_ms", ransacWorst)
	return res, nil
}

// AblationDegree tests the paper's choice of second-order polynomials
// (§III-A1: "quadratic polynomials worked... no need for more complex
// approaches"): fit degrees 1-3 on the normally observed load range and
// score extrapolation to the post-reduction range.
func AblationDegree(ctx context.Context, cfg Config) (*Result, error) {
	truth := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	rng := rand.New(rand.NewSource(cfg.Seed + 901))
	var xs, ys []float64
	for r := 150.0; r <= 400; r += 0.25 {
		xs = append(xs, r)
		ys = append(ys, truth.Predict(r)+0.4*rng.NormFloat64())
	}
	res := &Result{
		ID:     "ablation-degree",
		Title:  "Latency extrapolation error by model degree (fit 150-400, predict 540)",
		Header: []string{"degree", "abs_err_at_540_ms", "fit_R2"},
	}
	for d := 1; d <= 3; d++ {
		fit, err := stats.PolyFit(xs, ys, d)
		if err != nil {
			return nil, err
		}
		e := math.Abs(fit.Predict(540) - truth.Predict(540))
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", d), f2(e), f3(fit.R2)})
		res.Metric(fmt.Sprintf("deg%d_err_ms", d), e)
	}
	res.Notes = append(res.Notes,
		"degree 2 matches the truth; degree 1 misses the convexity; degree 3 inflates variance without gain")
	return res, nil
}

// AblationPartitions studies the J (load-partition count) trade-off of
// §II-B2: more partitions isolate the server-count effect better but leave
// fewer, noisier observations per fit.
func AblationPartitions(ctx context.Context, cfg Config) (*Result, error) {
	truth := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	rng := rand.New(rand.NewSource(cfg.Seed + 902))
	// History: total load varies diurnally, server count varies with
	// maintenance and experiments.
	var series []optimize.ObsPoint
	for tick := 0; tick < 2000; tick++ {
		day := float64(tick%720) / 720
		total := 100000 * (1 + 0.4*math.Cos(2*math.Pi*(day-0.55))) * (1 + 0.02*rng.NormFloat64())
		servers := 240 + float64(rng.Intn(80))
		per := total / servers
		series = append(series, optimize.ObsPoint{
			Tick: tick, Servers: servers, TotalRPS: total,
			Latency: truth.Predict(per) + 0.4*rng.NormFloat64(),
		})
	}
	res := &Result{
		ID:     "ablation-partitions",
		Title:  "Eq.(1) fit quality vs number of load partitions J",
		Header: []string{"J", "mean_points_per_partition", "mean_pred_err_ms"},
	}
	for _, j := range []int{1, 2, 4, 8, 16} {
		parts, err := partitionObs(series, j)
		if err != nil {
			return nil, err
		}
		var errSum float64
		var fits int
		var pts int
		for _, p := range parts {
			pts += len(p.Points)
			fit, err := optimize.LatencyVsServers(p, cfg.Seed)
			if err != nil {
				continue
			}
			// Score: predicted latency at the partition's median load and
			// a 20% reduced server count vs truth.
			medLoad := p.Points[len(p.Points)/2].TotalRPS
			n := 0.8 * meanServers(p)
			pred := fit.Model.Predict(n)
			truthVal := truth.Predict(medLoad / n)
			errSum += math.Abs(pred - truthVal)
			fits++
		}
		if fits == 0 {
			continue
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", j),
			fmt.Sprintf("%d", pts/len(parts)),
			f2(errSum / float64(fits)),
		})
		res.Metric(fmt.Sprintf("J%d_err_ms", j), errSum/float64(fits))
	}
	res.Notes = append(res.Notes,
		"J=1 mixes the traffic effect into the server-count fit; very large J starves each fit — the paper picks J with the pool owner")
	return res, nil
}

func partitionObs(points []optimize.ObsPoint, j int) ([]optimize.Partition, error) {
	// Reuse optimize.PartitionByLoad via a TickStat adapter.
	return optimize.PartitionPoints(points, j)
}

func meanServers(p optimize.Partition) float64 {
	var s float64
	for _, pt := range p.Points {
		s += pt.Servers
	}
	return s / float64(len(p.Points))
}

// AblationPlanners compares the paper's black-box plan against the two
// prior-work families of §I on the same pool-B-like system: a naive M/M/c
// queueing plan, a calibrated M/M/c plan, and a reactive autoscaler.
func AblationPlanners(ctx context.Context, cfg Config) (*Result, error) {
	// Ground truth (black box to all planners): pool B's latency quadratic
	// and a diurnal day of traffic for DC 1.
	truthLat := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	respond := func(totalRPS float64, servers int) (float64, float64) {
		per := totalRPS / float64(servers)
		return 0.028*per + 1.37, truthLat.Predict(per)
	}
	pattern := workload.Pattern{BaseRPS: 84000, PeakToTrough: 2.2, PeakHour: 13}
	offered := make([]float64, 720)
	rng := rand.New(rand.NewSource(cfg.Seed + 903))
	for i := range offered {
		offered[i] = pattern.At(float64(i)/720) * (1 + 0.03*rng.NormFloat64())
		// An unplanned 4x capacity event during the local trough (the
		// paper's second natural experiment): headroom plans absorb it,
		// reactive scaling chases it.
		if i >= 100 && i < 190 {
			offered[i] *= 4
		}
	}
	peak := stats.Max(offered)
	slo := 36.0 // baseline ~31 ms + 5 ms budget

	res := &Result{
		ID:     "ablation-planners",
		Title:  "Provisioning cost and SLO compliance by planner",
		Header: []string{"planner", "servers(peak)", "server_ticks", "slo_violations"},
	}
	addStatic := func(name string, servers int) error {
		r, err := baseline.StaticPlanCost(servers, offered, slo, respond)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, []string{
			name, fmt.Sprintf("%d", servers), fmt.Sprintf("%d", r.ServerTicks), fmt.Sprintf("%d", r.SLOViolations),
		})
		res.Metric(name+"_server_ticks", float64(r.ServerTicks))
		res.Metric(name+"_violations", float64(r.SLOViolations))
		return nil
	}

	// Black-box plan: the smallest server count whose modelled latency at
	// peak load (including the unplanned event — the headroom the paper
	// right-sizes) stays within the SLO.
	model := optimize.PoolModel{
		CPU:     stats.LinearFit{Slope: 0.028, Intercept: 1.37},
		Latency: truthLat,
	}
	blackBox := 1
	for n := 1; n <= 5000; n++ {
		fc, err := model.ForecastReduction(peak, n, n)
		if err != nil {
			return nil, err
		}
		if fc.LatencyMs <= slo && fc.CPUPct < 100 {
			blackBox = n
			break
		}
	}
	if err := addStatic("black-box", blackBox); err != nil {
		return nil, err
	}

	// Naive M/M/c: service time taken from the observed ~31 ms response
	// time — the modelling error the paper warns about (response time is
	// not service time), which overprovisions massively.
	naive, err := baseline.PlanServers(baseline.PlanConfig{
		PeakLambda: peak, ServiceTimeMs: 31, SLOMs: slo, Percentile: 95,
	})
	if err != nil {
		return nil, err
	}
	if err := addStatic("mmc-naive", naive); err != nil {
		return nil, err
	}

	// Calibrated M/M/c: service rate set to the measured per-server
	// capacity at the SLO (which already requires the black-box
	// measurement the paper advocates).
	perAtSLO := 540.0
	for r := 540.0; r < 2000; r++ {
		if truthLat.Predict(r) > slo {
			perAtSLO = r - 1
			break
		}
	}
	calibrated := int(peak/perAtSLO) + 1
	if err := addStatic("mmc-calibrated", calibrated); err != nil {
		return nil, err
	}

	// Reactive autoscaler with realistic provisioning lag.
	auto, err := baseline.SimulateAutoscaler(baseline.AutoscalerConfig{
		TargetLow: 8, TargetHigh: 14,
		MinServers: 30, MaxServers: 600,
		ProvisionDelayTicks: 10, CooldownTicks: 3,
	}, offered, blackBox, slo, respond)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{
		"reactive", fmt.Sprintf("%d", auto.PeakServers), fmt.Sprintf("%d", auto.ServerTicks), fmt.Sprintf("%d", auto.SLOViolations),
	})
	res.Metric("reactive_server_ticks", float64(auto.ServerTicks))
	res.Metric("reactive_violations", float64(auto.SLOViolations))
	res.Metric("blackbox_servers", float64(blackBox))
	res.Metric("mmc_naive_servers", float64(naive))
	res.Notes = append(res.Notes,
		"naive queueing models overprovision because response time is not service time; calibrating them requires the black-box measurements anyway; the reactive scaler trades violations for savings",
		"the naive plan can even violate the SLO while overprovisioned: near-idle servers sit in the elevated cold-cache latency region the paper describes")
	return res, nil
}
