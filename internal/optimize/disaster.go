package optimize

import (
	"fmt"
	"sort"
)

// The paper's abstract claims the verified reductions had "effectively no
// impact on ... the capacity required for disaster recovery": headroom
// right-sizing must still leave every datacenter able to absorb the traffic
// of any single failed region (the natural experiments of §II-B1 are exactly
// such failovers). This file computes that N-1 requirement.

// DCCapacity is one datacenter's state for disaster-recovery planning.
type DCCapacity struct {
	// DC names the datacenter.
	DC string
	// Servers is the pool's server count there.
	Servers int
	// PeakRPS is the datacenter's own peak offered load.
	PeakRPS float64
	// Weight is the datacenter's share of global traffic (used to
	// redistribute a failed region's load to survivors).
	Weight float64
}

// DRPlan is the disaster-recovery sizing result for one pool.
type DRPlan struct {
	// PerDC lists, for each datacenter, the servers needed to survive the
	// worst single-region failure while meeting the QoS limit.
	PerDC []DRRequirement
	// TotalServers is the fleet-wide requirement.
	TotalServers int
	// WorstCaseDC is the failed datacenter that maximises total required
	// capacity.
	WorstCaseDC string
}

// DRRequirement is one datacenter's requirement.
type DRRequirement struct {
	DC string
	// Required is the server count needed under the worst single-region
	// failure affecting this datacenter.
	Required int
	// Current is the configured count; Deficit = Required - Current when
	// positive.
	Current int
	Deficit int
	// SurgeRPS is the peak load this datacenter must absorb in that
	// failure.
	SurgeRPS float64
}

// PlanDisasterRecovery sizes each datacenter of a pool so that the QoS
// limit holds even when any single other datacenter fails and its traffic
// redistributes to the survivors proportionally to weight. The model maps
// per-server load to latency exactly as the reduction forecasts do.
func (m PoolModel) PlanDisasterRecovery(dcs []DCCapacity, qosLimitMs float64) (DRPlan, error) {
	if len(dcs) < 2 {
		return DRPlan{}, fmt.Errorf("optimize: disaster recovery needs >= 2 datacenters, got %d", len(dcs))
	}
	if qosLimitMs <= 0 {
		return DRPlan{}, fmt.Errorf("optimize: non-positive QoS limit %v", qosLimitMs)
	}
	var totalWeight float64
	for _, dc := range dcs {
		if dc.Weight < 0 || dc.PeakRPS < 0 {
			return DRPlan{}, fmt.Errorf("optimize: datacenter %s has negative weight or load", dc.DC)
		}
		totalWeight += dc.Weight
	}
	if totalWeight <= 0 {
		return DRPlan{}, fmt.Errorf("optimize: zero total weight")
	}

	// Per-server load the model can carry within the QoS limit.
	maxPerServer, err := m.maxLoadWithinQoS(qosLimitMs)
	if err != nil {
		return DRPlan{}, err
	}

	plan := DRPlan{}
	var worstTotal int
	// Consider each single-DC failure; each surviving datacenter must
	// absorb its weight-proportional share of the failed load on top of
	// its own peak.
	requirements := make(map[string]int, len(dcs))
	for _, dc := range dcs {
		requirements[dc.DC] = 0
	}
	surges := make(map[string]float64, len(dcs))
	for _, failed := range dcs {
		aliveWeight := totalWeight - failed.Weight
		if aliveWeight <= 0 {
			return DRPlan{}, fmt.Errorf("optimize: datacenter %s carries all traffic; cannot survive its loss", failed.DC)
		}
		var scenarioTotal int
		for _, dc := range dcs {
			if dc.DC == failed.DC {
				continue
			}
			surge := dc.PeakRPS + failed.PeakRPS*dc.Weight/aliveWeight
			req := int(surge/maxPerServer) + 1
			if req > requirements[dc.DC] {
				requirements[dc.DC] = req
				surges[dc.DC] = surge
			}
			scenarioTotal += req
		}
		if scenarioTotal > worstTotal {
			worstTotal = scenarioTotal
			plan.WorstCaseDC = failed.DC
		}
	}

	for _, dc := range dcs {
		req := DRRequirement{
			DC:       dc.DC,
			Required: requirements[dc.DC],
			Current:  dc.Servers,
			SurgeRPS: surges[dc.DC],
		}
		if d := req.Required - req.Current; d > 0 {
			req.Deficit = d
		}
		plan.PerDC = append(plan.PerDC, req)
		plan.TotalServers += req.Required
	}
	sort.Slice(plan.PerDC, func(i, j int) bool { return plan.PerDC[i].DC < plan.PerDC[j].DC })
	return plan, nil
}

// maxLoadWithinQoS finds the largest per-server load whose modelled latency
// stays within the limit and CPU below 100%. Latency curves can be elevated
// at LOW load (cold caches, per the paper's Figure 6), so feasibility may
// begin mid-curve: the search first locates any feasible load geometrically,
// then bisects toward the upper crossing.
func (m PoolModel) maxLoadWithinQoS(qosLimitMs float64) (float64, error) {
	ok := func(per float64) bool {
		return m.Latency.Predict(per) <= qosLimitMs && m.CPU.Predict(per) < 100
	}
	// Find a feasible starting load.
	lo := -1.0
	for probe := 1.0; probe < 1e9; probe *= 2 {
		if ok(probe) {
			lo = probe
			break
		}
	}
	if lo < 0 {
		return 0, fmt.Errorf("optimize: QoS limit %v ms unreachable at any load", qosLimitMs)
	}
	hi := lo
	for ok(hi) && hi < 1e9 {
		lo = hi
		hi *= 2
	}
	if hi >= 1e9 {
		return lo, nil // effectively unconstrained in any realistic range
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
