package slo

import (
	"math/rand"
	"strings"
	"testing"

	"headroom/internal/metrics"
)

func series(n int, latMean, errMean float64, seed int64) []metrics.TickStat {
	rng := rand.New(rand.NewSource(seed))
	out := make([]metrics.TickStat, n)
	for i := range out {
		out[i] = metrics.TickStat{
			Tick: i, Servers: 10,
			LatencyMean: latMean + rng.NormFloat64(),
			Errors:      errMean,
		}
	}
	return out
}

func TestObjectiveValidate(t *testing.T) {
	bad := []Objective{
		{Name: "p", Kind: LatencyPercentile, Percentile: 0, Threshold: 10},
		{Name: "p", Kind: LatencyPercentile, Percentile: 100, Threshold: 10},
		{Name: "p", Kind: LatencyPercentile, Percentile: 95, Threshold: 0},
		{Name: "a", Kind: Availability, Threshold: 0},
		{Name: "a", Kind: Availability, Threshold: 1.5},
		{Name: "e", Kind: ErrorRate, Threshold: -1},
		{Name: "k", Kind: Kind(99), Threshold: 1},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("%+v should be invalid", o)
		}
	}
	good := Objective{Name: "p95", Kind: LatencyPercentile, Percentile: 95, Threshold: 40}
	if err := good.Validate(); err != nil {
		t.Errorf("valid objective rejected: %v", err)
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{Service: "B"}).Validate(); err == nil {
		t.Error("empty set should error")
	}
	dup := Set{Service: "B", Objectives: []Objective{
		{Name: "x", Kind: ErrorRate, Threshold: 1},
		{Name: "x", Kind: ErrorRate, Threshold: 2},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names should error")
	}
	if err := Typical("B", 40).Validate(); err != nil {
		t.Errorf("Typical set invalid: %v", err)
	}
}

func TestEvaluateAllMet(t *testing.T) {
	set := Typical("B", 40)
	rep, err := Evaluate(set, series(200, 31, 0.1, 1), 0.9996)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !rep.Met {
		t.Errorf("all objectives should hold: %s", rep)
	}
	if len(rep.Evaluations) != 3 {
		t.Fatalf("evaluations = %d, want 3", len(rep.Evaluations))
	}
	for _, e := range rep.Evaluations {
		if !e.Met || e.Margin <= 0 {
			t.Errorf("objective %s: met=%v margin=%v", e.Objective.Name, e.Met, e.Margin)
		}
	}
}

func TestEvaluateLatencyViolation(t *testing.T) {
	set := Typical("B", 30)
	rep, err := Evaluate(set, series(200, 33, 0.1, 2), 0.9996)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.Met {
		t.Error("latency objective should be violated")
	}
	var found bool
	for _, e := range rep.Evaluations {
		if e.Objective.Kind == LatencyPercentile {
			found = true
			if e.Met || e.Margin >= 0 {
				t.Errorf("latency evaluation = %+v, want violated with negative margin", e)
			}
		}
	}
	if !found {
		t.Fatal("latency objective missing from report")
	}
	if !strings.Contains(rep.String(), "VIOLATED") {
		t.Errorf("report should mark violations: %s", rep)
	}
}

func TestEvaluateAvailabilityViolation(t *testing.T) {
	set := Set{Service: "C", Objectives: []Objective{
		{Name: "availability", Kind: Availability, Threshold: 0.98},
	}}
	rep, err := Evaluate(set, series(50, 20, 0, 3), 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Met {
		t.Error("90% availability should violate a 98% objective")
	}
}

func TestEvaluateErrors(t *testing.T) {
	set := Typical("B", 40)
	if _, err := Evaluate(set, nil, 1); err == nil {
		t.Error("no observations should error")
	}
	offline := []metrics.TickStat{{Tick: 0, Servers: 0}}
	if _, err := Evaluate(set, offline, 1); err == nil {
		t.Error("all-offline series should error")
	}
	if _, err := Evaluate(Set{Service: "x"}, series(10, 1, 0, 4), 1); err == nil {
		t.Error("invalid set should error")
	}
}

func TestKindString(t *testing.T) {
	if LatencyPercentile.String() != "latency-percentile" {
		t.Error("LatencyPercentile string")
	}
	if Availability.String() != "availability" {
		t.Error("Availability string")
	}
	if ErrorRate.String() != "error-rate" {
		t.Error("ErrorRate string")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind should include the number")
	}
}
