// Package jobcache is capserved's keyed result cache: identical what-if
// queries (same fleet, days, seed, plan configuration) hit the cache and
// return instantly instead of re-simulating the fleet.
//
// Keys content-hash the canonicalized request (Key), values are bounded by
// LRU eviction, and concurrent identical requests are deduplicated by
// single-flight execution: the first caller computes, the rest wait for the
// same result.
package jobcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key content-hashes a request into a cache key. Parts are canonicalized
// through encoding/json — struct fields in declaration order, map keys
// sorted — so two requests that decode to the same canonical form share a
// key regardless of wire-level field order or whitespace. The endpoint name
// should be one of the parts so equal payloads to different endpoints never
// collide.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("jobcache: canonicalize key: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// entry is one cached value with its LRU list node.
type entry struct {
	key string
	val any
}

// Uncacheable wraps a computation result that must be returned to the
// caller but never stored: degraded results (partial aggregates after pool
// failures) must not short-circuit future computations as if they were
// complete. Do unwraps it, returns the inner value, and skips the store.
type Uncacheable struct{ Value any }

// call is one in-flight computation shared by duplicate requests.
type call struct {
	done chan struct{}
	val  any
	err  error
	// joined counts callers attached to this flight (written under Cache.mu
	// before they block on done). Shared is only counted after a successful
	// flight, so tests that need "everyone has attached" poll this instead.
	joined int
}

// Cache is a bounded LRU of computed results with single-flight
// deduplication. The zero value is not usable; construct with New.
type Cache struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call

	hits     atomic.Int64
	misses   atomic.Int64
	shared   atomic.Int64
	uncached atomic.Int64
}

// New returns a cache holding at most capacity results (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the cached value for key, marking it most recently used. It
// does not touch the hit/miss counters — Do owns those.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Do returns the value for key, computing it with fn on a miss. Concurrent
// calls for the same key share a single fn execution (single-flight); the
// value is cached only on success, so errors are retried by the next
// caller. hit reports whether a usable value came from the cache or from a
// shared flight rather than a fresh execution by this caller: a joined
// flight that failed is not a hit (hit is false and the flight's error is
// returned).
//
// A panicking fn does not wedge the key: the in-flight entry is removed and
// waiters receive an error, while the panic propagates to fn's caller.
func (c *Cache) Do(key string, fn func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*entry).val
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		fl.joined++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			// The shared execution failed; joining it is not a hit.
			return fl.val, false, fl.err
		}
		c.shared.Add(1)
		return fl.val, true, nil
	}
	fl := &call{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	c.misses.Add(1)
	finished := false
	defer func() {
		if !finished {
			// fn panicked: remove the wedged flight and wake waiters with an
			// error before the panic continues unwinding, so later (and
			// concurrent) calls for this key recompute instead of hanging.
			fl.err = errors.New("jobcache: computation panicked")
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
			close(fl.done)
		}
	}()
	fl.val, fl.err = fn()
	finished = true

	store := fl.err == nil
	if u, ok := fl.val.(Uncacheable); ok {
		fl.val = u.Value
		store = false
		c.uncached.Add(1)
	}
	c.mu.Lock()
	delete(c.inflight, key)
	if store {
		c.add(key, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, false, fl.err
}

// add inserts under c.mu, evicting the least recently used entry beyond
// capacity.
func (c *Cache) add(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time view of cache effectiveness.
type Stats struct {
	// Hits counts Do calls answered from the cache; Shared counts calls
	// answered with a successful value by joining another caller's in-flight
	// computation (a joined flight that failed counts as neither); Misses
	// counts calls that executed fn.
	Hits, Misses, Shared int64
	// Uncacheable counts executions whose result asked not to be stored
	// (degraded results).
	Uncacheable int64
	// Size is the number of cached results; Capacity the LRU bound.
	Size, Capacity int
}

// Stats returns cumulative counters and current size.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Shared:      c.shared.Load(),
		Uncacheable: c.uncached.Load(),
		Size:        c.Len(),
		Capacity:    c.capacity,
	}
}
