package faults_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"headroom"
	"headroom/internal/faults"
	"headroom/internal/jobs"
	"headroom/internal/leakcheck"
)

// traceOf builds a replayable record stream with one record per listed pool
// name, in order. Repeated names yield repeated records of that pool.
func traceOf(pools ...string) headroom.ShardedSource {
	recs := make([]headroom.Record, len(pools))
	for i, p := range pools {
		recs[i] = headroom.Record{Tick: i, DC: "DC 1", Pool: p, Server: "s0", Online: true, RPS: 1}
	}
	return headroom.NewReplaySource(recs)
}

// streamPools collects the pool names emitted by one stream attempt.
func streamPools(t *testing.T, src headroom.Source) ([]string, error) {
	t.Helper()
	var got []string
	err := src.Stream(context.Background(), func(r headroom.Record) error {
		got = append(got, r.Pool)
		return nil
	})
	return got, err
}

func TestFaultTransientOffsetIsOneShot(t *testing.T) {
	inj := faults.New(1, faults.Rule{Kind: faults.Transient, At: []int{2}})
	src := inj.Source(traceOf("A", "B", "C", "D"))

	got, err := streamPools(t, src)
	if !headroom.IsTransient(err) {
		t.Fatalf("first attempt err = %v, want transient", err)
	}
	if len(got) != 2 {
		t.Fatalf("records before fault = %v, want 2", got)
	}
	// The (rule, offset) trigger is consumed: a retry of the same stream
	// passes the fault point and completes.
	got, err = streamPools(t, src)
	if err != nil {
		t.Fatalf("second attempt err = %v, want nil", err)
	}
	if len(got) != 4 {
		t.Fatalf("second attempt records = %v, want all 4", got)
	}
	if n := inj.Injected(); n != 1 {
		t.Errorf("Injected() = %d, want 1", n)
	}
}

func TestFaultPermanentOffsetFiresEveryAttempt(t *testing.T) {
	inj := faults.New(1, faults.Rule{Kind: faults.Permanent, At: []int{0}, Msg: "pool is gone"})
	src := inj.Source(traceOf("A", "B"))
	for attempt := 0; attempt < 3; attempt++ {
		got, err := streamPools(t, src)
		if err == nil || headroom.IsTransient(err) {
			t.Fatalf("attempt %d: err = %v, want permanent error", attempt, err)
		}
		if !strings.Contains(err.Error(), "pool is gone") {
			t.Fatalf("attempt %d: err = %v, want custom message", attempt, err)
		}
		if len(got) != 0 {
			t.Fatalf("attempt %d: records = %v, want none", attempt, got)
		}
	}
}

func TestFaultPoolFilterCountsMatchingRecordsOnly(t *testing.T) {
	// Offset 1 of pool B is the fourth record overall: the filter must
	// count per matching pool, not globally.
	inj := faults.New(1, faults.Rule{Kind: faults.Transient, Pools: []string{"B"}, At: []int{1}})
	src := inj.Source(traceOf("A", "B", "A", "B", "A"))
	got, err := streamPools(t, src)
	if !headroom.IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	want := []string{"A", "B", "A"}
	if len(got) != len(want) {
		t.Fatalf("records = %v, want %v", got, want)
	}
}

func TestFaultProbabilityReplaysFromSeed(t *testing.T) {
	// Stalls do not abort the stream, so the per-record injection pattern is
	// observable end to end. Two fresh injectors with the same seed must
	// fire at exactly the same records.
	pattern := func(seed int64) []bool {
		inj := faults.New(seed, faults.Rule{Kind: faults.Stall, Prob: 0.3, StallFor: time.Microsecond})
		src := inj.Source(traceOf(make([]string, 64)...))
		var fires []bool
		last := int64(0)
		err := src.Stream(context.Background(), func(headroom.Record) error {
			n := inj.Injected()
			fires = append(fires, n > last)
			last = n
			return nil
		})
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		return fires
	}
	a, b := pattern(42), pattern(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("probability rule never fired in 64 records at p=0.3")
	}
}

func TestFaultStallHonoursCancellation(t *testing.T) {
	inj := faults.New(1, faults.Rule{Kind: faults.Stall, At: []int{0}, StallFor: time.Minute})
	src := inj.Source(traceOf("A"))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := src.Stream(ctx, func(headroom.Record) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored cancellation, took %s", elapsed)
	}
}

func TestFaultPanicPropagates(t *testing.T) {
	inj := faults.New(1, faults.Rule{Kind: faults.Panic, At: []int{0}, Msg: "chaos panic"})
	src := inj.Source(traceOf("A"))
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic propagated")
		}
		if s, ok := v.(string); !ok || s != "chaos panic" {
			t.Fatalf("panic = %v, want custom message", v)
		}
	}()
	src.Stream(context.Background(), func(headroom.Record) error { return nil })
}

func TestFaultShardsHaveIndependentOneShotScopes(t *testing.T) {
	// One offset rule, two shards: the trigger must fire once per shard,
	// not once globally, so each shard's retry story is self-contained.
	inj := faults.New(1, faults.Rule{Kind: faults.Transient, At: []int{0}})
	shards := inj.Source(traceOf("A", "B")).(headroom.ShardedSource).Shards(2)
	if len(shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(shards))
	}
	for i, sh := range shards {
		if _, err := streamPools(t, sh); !headroom.IsTransient(err) {
			t.Fatalf("shard %d first attempt err = %v, want transient", i, err)
		}
		if _, err := streamPools(t, sh); err != nil {
			t.Fatalf("shard %d retry err = %v, want nil", i, err)
		}
	}
	if n := inj.Injected(); n != 2 {
		t.Errorf("Injected() = %d, want one fault per shard", n)
	}
}

func TestFaultSourceForwardsPoolNames(t *testing.T) {
	inj := faults.New(1)
	src := inj.Source(traceOf("A", "B"))
	pn, ok := src.(headroom.PoolNamer)
	if !ok {
		t.Fatal("fault source does not forward PoolNamer")
	}
	names := pn.PoolNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("PoolNames = %v", names)
	}
}

func TestFaultFuncTransientMarksJobRetryable(t *testing.T) {
	inj := faults.New(1, faults.Rule{Kind: faults.Transient, At: []int{0}})
	calls := 0
	fn := inj.Func(func(ctx context.Context) (any, error) {
		calls++
		return "ok", nil
	})
	_, err := fn(context.Background())
	if !jobs.IsTransient(err) {
		t.Fatalf("first call err = %v, want jobs-transient", err)
	}
	if calls != 0 {
		t.Fatalf("wrapped fn ran despite injected fault")
	}
	// One-shot: the second call passes through.
	v, err := fn(context.Background())
	if err != nil || v != "ok" {
		t.Fatalf("second call = (%v, %v), want (ok, nil)", v, err)
	}
}

// TestFaultPanicJobLeaksNoGoroutines drives a panic-injected job through a
// real queue: the worker must recover, fail the job, and keep serving.
func TestFaultPanicJobLeaksNoGoroutines(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(1, faults.Rule{Kind: faults.Panic, At: []int{0}, Msg: "boom"})
	q := jobs.New(jobs.Config{Workers: 2})
	defer q.Close(context.Background())

	j, err := q.Submit("chaos", inj.Func(func(ctx context.Context) (any, error) {
		return nil, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("job err = %v, want recovered panic", err)
	}
	// The worker survived the panic: a follow-up job still runs.
	j2, err := q.Submit("chaos", func(ctx context.Context) (any, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v, err := j2.Wait(context.Background()); err != nil || v != 7 {
		t.Fatalf("follow-up job = (%v, %v), want (7, nil)", v, err)
	}
}
