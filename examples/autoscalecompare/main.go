// Autoscale comparison: the paper's §I argument, quantified. On the same
// pool-B-like system under a diurnal day with an unplanned 4x event, compare
// the black-box headroom plan against a naive M/M/c queueing plan, a
// calibrated M/M/c plan, and a reactive autoscaler with realistic
// provisioning lag.
//
//	go run ./examples/autoscalecompare
package main

import (
	"context"
	"log"
	"os"

	"headroom"
)

func main() {
	ctx := context.Background()

	s, err := headroom.New(ctx, headroom.WithSeed(1))
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	res, err := s.RunExperiment(ctx, "ablation-planners", false)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := res.Render(os.Stdout); err != nil {
		log.Fatalf("render: %v", err)
	}
}
