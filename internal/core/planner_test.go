package core

import (
	"context"
	"testing"

	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

// runFleet simulates a small fleet for the given days and aggregates it.
func runFleet(t *testing.T, pools []sim.PoolConfig, days int, seed int64) *metrics.Aggregator {
	t.Helper()
	cfg := sim.FleetConfig{
		DCs:               workload.NineRegions(),
		Pools:             pools,
		WorkloadNoiseFrac: 0.03,
		Seed:              seed,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	if err := s.Run(days*s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestPlanEndToEnd(t *testing.T) {
	agg := runFleet(t, []sim.PoolConfig{sim.PoolB(), sim.PoolD()}, 2, 1)
	plans, err := Plan(context.Background(), agg, PlanConfig{LatencyBudgetMs: 5, Seed: 2})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	// Pool B in DC 1 + DC 4, pool D in 6 DCs: 8 plans.
	if len(plans) != 8 {
		t.Fatalf("plans = %d, want 8", len(plans))
	}
	for _, p := range plans {
		if !p.Plannable {
			t.Errorf("pool %s@%s not plannable: %s", p.Pool, p.DC, p.Reason)
			continue
		}
		if p.SavingsFrac <= 0 || p.SavingsFrac > 1.0/3+1e-9 {
			t.Errorf("pool %s@%s savings = %v, want in (0, 1/3]", p.Pool, p.DC, p.SavingsFrac)
		}
		if p.RecommendedServers >= p.CurrentServers {
			t.Errorf("pool %s@%s recommends %d >= current %d", p.Pool, p.DC, p.RecommendedServers, p.CurrentServers)
		}
		if p.ForecastLatencyMs > p.BaselineLatencyMs+5.5 {
			t.Errorf("pool %s@%s forecast %v exceeds budget over baseline %v",
				p.Pool, p.DC, p.ForecastLatencyMs, p.BaselineLatencyMs)
		}
		if p.Groups < 1 {
			t.Errorf("pool %s@%s groups = %d", p.Pool, p.DC, p.Groups)
		}
		cpu, err := p.Validation.Counter("cpu")
		if err != nil {
			t.Fatal(err)
		}
		if !cpu.Linear {
			t.Errorf("pool %s@%s CPU metric should validate", p.Pool, p.DC)
		}
	}
	// Sorted by pool then DC.
	for i := 1; i < len(plans); i++ {
		a, b := plans[i-1], plans[i]
		if a.Pool > b.Pool || (a.Pool == b.Pool && a.DC >= b.DC) {
			t.Error("plans not sorted")
		}
	}
}

func TestPlanRefinesContaminatedPool(t *testing.T) {
	// Pool A's background log uploads contaminate its CPU metric; the
	// planner must pass it through the refinement loop and still plan it.
	agg := runFleet(t, []sim.PoolConfig{sim.PoolA()}, 2, 3)
	plans, err := Plan(context.Background(), agg, PlanConfig{Seed: 4})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	var sawRefined bool
	for _, p := range plans {
		if !p.Plannable {
			t.Errorf("pool A@%s not plannable: %s", p.DC, p.Reason)
		}
		if p.Refined {
			sawRefined = true
		}
	}
	if !sawRefined {
		t.Error("pool A should require metric refinement in at least one DC")
	}
}

func TestPlanDetectsTwoGroups(t *testing.T) {
	agg := runFleet(t, []sim.PoolConfig{sim.PoolI()}, 1, 5)
	plans, err := Plan(context.Background(), agg, PlanConfig{Seed: 6})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	for _, p := range plans {
		if p.Groups != 2 {
			t.Errorf("pool I@%s groups = %d, want 2 (mixed hardware)", p.DC, p.Groups)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(context.Background(), nil, PlanConfig{}); err == nil {
		t.Error("nil aggregator should error")
	}
	if _, err := Plan(context.Background(), metrics.NewAggregator(), PlanConfig{}); err == nil {
		t.Error("empty aggregator should error")
	}
}

func TestSimPlantObserve(t *testing.T) {
	plant := &SimPlant{
		Pool: sim.PoolB(),
		DC:   workload.Datacenter{Name: "DC 1", UTCOffset: -8 * 3600 * 1e9, Weight: 0.16},
		Seed: 7,
	}
	series, err := plant.Observe(context.Background(), 300, 100)
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if len(series) != 100 {
		t.Fatalf("windows = %d, want 100", len(series))
	}
	for _, ts := range series {
		if ts.Servers != 300 {
			t.Fatalf("servers = %d, want 300", ts.Servers)
		}
	}
	// Successive observations see fresh traffic.
	series2, err := plant.Observe(context.Background(), 300, 100)
	if err != nil {
		t.Fatal(err)
	}
	if series[0].TotalRPS == series2[0].TotalRPS {
		t.Error("successive Observe calls should differ (fresh noise)")
	}
	if _, err := plant.Observe(context.Background(), 0, 10); err == nil {
		t.Error("zero servers should error")
	}
	if _, err := plant.Observe(context.Background(), 10, 0); err == nil {
		t.Error("zero ticks should error")
	}
}
