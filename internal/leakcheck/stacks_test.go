package leakcheck

import (
	"strings"
	"testing"
	"time"
)

const sampleDump = `goroutine 1 [running]:
main.main()
	/app/main.go:10 +0x20

goroutine 22 [chan receive, 7 minutes]:
headroom/internal/jobs.(*Queue).worker(0xc000120000)
	/app/internal/jobs/jobs.go:394 +0x65
created by headroom/internal/jobs.New
	/app/internal/jobs/jobs.go:265 +0x18a

goroutine 35 [IO wait]:
net.(*netFD).Read(0xc0001a0000)
	/usr/local/go/src/net/fd_posix.go:55 +0x29

not a goroutine header
some trailing garbage
`

func TestParseStacks(t *testing.T) {
	gs := ParseStacks([]byte(sampleDump))
	if len(gs) != 3 {
		t.Fatalf("parsed %d goroutines, want 3 (garbage block skipped)", len(gs))
	}

	if gs[0].ID != 1 || gs[0].State != "running" || gs[0].Wait != 0 {
		t.Errorf("g0 = %+v", gs[0])
	}
	if len(gs[0].Frames) != 2 || gs[0].Frames[0] != "main.main()" {
		t.Errorf("g0 frames = %v", gs[0].Frames)
	}

	if gs[1].ID != 22 || gs[1].State != "chan receive" {
		t.Errorf("g1 = %+v", gs[1])
	}
	if gs[1].Wait != 7*time.Minute {
		t.Errorf("g1 wait = %s, want 7m", gs[1].Wait)
	}
	if len(gs[1].Frames) != 4 {
		t.Errorf("g1 frames = %v", gs[1].Frames)
	}
	// Tab indentation is stripped from file:line frames.
	if strings.HasPrefix(gs[1].Frames[1], "\t") {
		t.Errorf("frame still tab-indented: %q", gs[1].Frames[1])
	}

	if gs[2].ID != 35 || gs[2].State != "IO wait" || gs[2].Wait != 0 {
		t.Errorf("g2 = %+v", gs[2])
	}
}

func TestParseHeaderMalformed(t *testing.T) {
	for _, line := range []string{
		"",
		"goroutine",
		"goroutine abc [running]:",
		"goroutine 5 running",
		"random text",
		"goroutine 5 [unterminated",
	} {
		if _, ok := parseHeader(line); ok {
			t.Errorf("parseHeader(%q) should fail", line)
		}
	}
}

func TestDumpGoroutinesSeesSelf(t *testing.T) {
	gs := DumpGoroutines()
	if len(gs) == 0 {
		t.Fatal("dump parsed zero goroutines")
	}
	var found bool
	for _, g := range gs {
		for _, f := range g.Frames {
			if strings.Contains(f, "DumpGoroutines") || strings.Contains(f, "TestDumpGoroutinesSeesSelf") {
				found = true
			}
		}
	}
	if !found {
		t.Error("dump should contain the calling goroutine's stack")
	}
}

func TestSummarize(t *testing.T) {
	gs := ParseStacks([]byte(sampleDump))
	s := summarize(gs)
	if !strings.HasPrefix(s, "3 total: ") {
		t.Fatalf("summary = %q", s)
	}
	for _, want := range []string{"1 running", "1 chan receive", "1 IO wait"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
