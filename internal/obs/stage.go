package obs

// Stage metrics: process-wide histograms on prom.Default that every layer
// records into — the session pipeline (per-stage durations, per-pool
// simulate timings) and the job queue (wait-vs-run split). Registered here
// so non-HTTP packages don't need a registry handle; the server's /metrics
// renders prom.Default alongside its own registry.

import (
	"time"

	"headroom/internal/obs/prom"
)

// Stages are the pipeline stages with pre-registered duration series.
var Stages = []string{"simulate", "aggregate", "merge", "plan", "validate", "forecast"}

var (
	stageSeconds = func() map[string]*prom.Histogram {
		m := make(map[string]*prom.Histogram, len(Stages))
		for _, st := range Stages {
			m[st] = prom.Default.Histogram("headroom_stage_duration_seconds",
				"Pipeline stage duration, by stage.", prom.Labels{"stage": st}, prom.StageBuckets)
		}
		return m
	}()
	queueWaitSeconds = prom.Default.Histogram("headroom_jobs_queue_wait_seconds",
		"Time a job spent queued before a worker picked it up.", nil, prom.StageBuckets)
	jobRunSeconds = prom.Default.Histogram("headroom_jobs_run_seconds",
		"Time a job spent executing (first pickup to terminal state, spanning retries).", nil, prom.StageBuckets)
)

// ObserveStage records one completed pipeline stage. Stages outside the
// pre-registered set get a lazily-registered series rather than being
// dropped.
func ObserveStage(stage string, d time.Duration) {
	h, ok := stageSeconds[stage]
	if !ok {
		h = prom.Default.LazyHistogram("headroom_stage_duration_seconds",
			"Pipeline stage duration, by stage.", prom.Labels{"stage": stage}, prom.StageBuckets)
	}
	h.Observe(d.Seconds())
}

// ObservePool records one pool's simulate/aggregate shard duration; the
// per-pool series registers on first use.
func ObservePool(pool string, d time.Duration) {
	if pool == "" {
		pool = "unknown"
	}
	prom.Default.LazyHistogram("headroom_simulate_pool_duration_seconds",
		"Per-pool simulate/aggregate shard duration.", prom.Labels{"pool": pool},
		prom.StageBuckets).Observe(d.Seconds())
}

// ObserveQueueWait records how long a job waited in the queue.
func ObserveQueueWait(d time.Duration) { queueWaitSeconds.Observe(d.Seconds()) }

// ObserveJobRun records how long a job ran once picked up.
func ObserveJobRun(d time.Duration) { jobRunSeconds.Observe(d.Seconds()) }
