package main

import (
	"context"
	"testing"
)

func TestRejectsInvalidFlags(t *testing.T) {
	cases := [][]string{
		{"-days", "-1"},
		{"-days", "0"},
		{"-format", "xml"},
		{"-pools", "no-such-pool"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
}
