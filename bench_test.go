// Benchmark harness: one benchmark per paper table and figure (plus the
// ablations), each regenerating the artifact end to end from the simulator,
// and micro-benchmarks for the hot substrate paths.
//
// Run everything once with:
//
//	go test -bench . -benchmem -benchtime 1x
package headroom_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"headroom"
	"headroom/internal/cluster"
	"headroom/internal/experiments"
	"headroom/internal/sim"
	"headroom/internal/stats"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

// benchExperiment runs a registered experiment per iteration and reports a
// selected headline metric.
func benchExperiment(b *testing.B, id, metric string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatalf("ByID(%s): %v", id, err)
	}
	cfg := experiments.Config{Seed: 1, Fast: true}
	ctx := context.Background()
	b.ResetTimer()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err = exp.Run(ctx, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	if metric != "" {
		if v, ok := res.Metrics[metric]; ok {
			// Benchmark units must be whitespace-free; drop the paper
			// annotation suffix.
			unit := metric
			if i := strings.IndexByte(unit, ' '); i >= 0 {
				unit = unit[:i]
			}
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2", "cpu_linear_dcs (paper: all)") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3", "groups_found (paper: 2 clusters)") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4", "median_surge_frac (paper 0.56)") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5", "max_latency_ms (paper <26)") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6", "dc5_peak_rps_ratio (paper ~4x)") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7", "savings_frac") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8", "orig_slope") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9", "forecast_abs_error_ms") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", "orig_slope") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11", "forecast_abs_error_ms") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12", "frac_p95_le_15 (paper ~0.60)") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13", "frac_above_25 (paper 0.01)") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14", "mean_availability (paper 0.83)") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15", "mean_C (paper ~0.90)") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16", "latency_regression_detected") }

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", "p95_change_frac") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", "p95_change_frac") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4", "total_savings (paper 0.30)") }

func BenchmarkAblationRANSAC(b *testing.B) {
	benchExperiment(b, "ablation-ransac", "ransac_worst_err_ms")
}
func BenchmarkAblationDegree(b *testing.B) { benchExperiment(b, "ablation-degree", "deg2_err_ms") }
func BenchmarkAblationPartitions(b *testing.B) {
	benchExperiment(b, "ablation-partitions", "J4_err_ms")
}
func BenchmarkAblationPlanners(b *testing.B) {
	benchExperiment(b, "ablation-planners", "reactive_violations")
}

// BenchmarkSimulatorThroughput measures raw record generation of the full
// default fleet (records per op: one fleet-hour).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := sim.DefaultFleet(1)
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.Run(30, func(r trace.Record) error { // one hour of windows
			sink += r.CPUPct
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "records/op")
	}
	_ = sink
}

// benchSimulate aggregates half a day of the default fleet (~200K records)
// through Session.Simulate at the given shard count (0 = one per CPU).
func benchSimulate(b *testing.B, shards int) {
	b.Helper()
	ctx := context.Background()
	cfg := sim.DefaultFleet(1)
	cfg.Tick = 2 * workload.TickDuration // half a day of windows per op
	s, err := headroom.New(ctx, headroom.WithFleet(cfg), headroom.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := s.Simulate(ctx, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(agg.Pools())), "poolDCs/op")
	}
}

// BenchmarkSimulateSequential is the single-threaded simulate+aggregate
// baseline.
func BenchmarkSimulateSequential(b *testing.B) { benchSimulate(b, 1) }

// BenchmarkSimulateSharded runs the same fleet sharded per pool across all
// CPUs; the aggregate is bit-identical to the sequential pass (see
// TestSessionShardedIdentical).
func BenchmarkSimulateSharded(b *testing.B) { benchSimulate(b, 0) }

// BenchmarkPlanPipeline measures the full Steps 1-2 pipeline over a day of
// pool B observations.
func BenchmarkPlanPipeline(b *testing.B) {
	ctx := context.Background()
	s, err := headroom.New(ctx,
		headroom.WithFleet(headroom.FleetConfig{
			DCs:   headroom.NineRegions(),
			Pools: []headroom.PoolConfig{headroom.PoolB()},
			Seed:  1,
		}),
		headroom.WithPlanConfig(headroom.PlanConfig{Seed: 2}),
	)
	if err != nil {
		b.Fatal(err)
	}
	agg, err := s.Simulate(ctx, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(ctx, agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyFitQuadratic(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1221) // the paper's N for the pool B fit
	ys := make([]float64, len(xs))
	for i := range xs {
		xs[i] = 150 + 400*rng.Float64()
		ys[i] = 4.028e-5*xs[i]*xs[i] - 0.031*xs[i] + 36.68 + 0.4*rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.PolyFit(xs, ys, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRANSACQuadratic(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 600)
	ys := make([]float64, len(xs))
	for i := range xs {
		xs[i] = 150 + 400*rng.Float64()
		ys[i] = 4.028e-5*xs[i]*xs[i] - 0.031*xs[i] + 36.68 + 0.4*rng.NormFloat64()
		if i%10 == 0 {
			ys[i] += 20
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.RANSAC(xs, ys, stats.RANSACConfig{Degree: 2, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansGrouping(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	points := make([]cluster.Point, 600)
	for i := range points {
		if i%2 == 0 {
			points[i] = cluster.Point{8 + rng.NormFloat64(), 20 + rng.NormFloat64()}
		} else {
			points[i] = cluster.Point{3 + rng.NormFloat64(), 9 + rng.NormFloat64()}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(points, cluster.Config{K: 2, Seed: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentiles(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 720) // one day of windows
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Percentiles(xs, 5, 25, 50, 75, 95)
	}
}

func BenchmarkGroupingTree(b *testing.B) {
	benchExperiment(b, "grouping-tree", "cv_auc (paper 0.9804)")
}
