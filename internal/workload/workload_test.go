package workload

import (
	"math"
	"testing"
	"time"
)

func TestPatternPeakToTrough(t *testing.T) {
	p := Pattern{BaseRPS: 1000, PeakToTrough: 3, PeakHour: 14}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for i := 0; i < 24*60; i++ {
		v := p.At(float64(i) / (24 * 60))
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	ratio := hi / lo
	if math.Abs(ratio-3) > 0.01 {
		t.Errorf("peak/trough = %v, want 3", ratio)
	}
	// Peak should be near hour 14.
	peakAt := p.At(14.0 / 24)
	if math.Abs(peakAt-hi) > hi*0.001 {
		t.Errorf("value at peak hour %v != max %v", peakAt, hi)
	}
}

func TestPatternFlatWhenRatioLEQ1(t *testing.T) {
	p := Pattern{BaseRPS: 500, PeakToTrough: 1, PeakHour: 9}
	for i := 0; i < 24; i++ {
		if got := p.At(float64(i) / 24); got != 500 {
			t.Fatalf("At(%d/24) = %v, want 500", i, got)
		}
	}
}

func TestPatternMeanIsBase(t *testing.T) {
	p := Pattern{BaseRPS: 800, PeakToTrough: 4, PeakHour: 0}
	var sum float64
	n := 24 * 360
	for i := 0; i < n; i++ {
		sum += p.At(float64(i) / float64(n))
	}
	mean := sum / float64(n)
	if math.Abs(mean-800) > 1 {
		t.Errorf("daily mean = %v, want ~800", mean)
	}
}

func TestScheduleMultiplier(t *testing.T) {
	s, err := NewSchedule(
		Event{Name: "surge", StartTick: 10, EndTick: 20, Multipliers: map[string]float64{"DC 1": 2}},
		Event{Name: "overlap", StartTick: 15, EndTick: 25, Multipliers: map[string]float64{"DC 1": 1.5, "DC 2": 3}},
	)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	tests := []struct {
		dc   string
		tick int
		want float64
	}{
		{"DC 1", 5, 1},
		{"DC 1", 10, 2},
		{"DC 1", 15, 3}, // 2 * 1.5
		{"DC 1", 20, 1.5},
		{"DC 1", 25, 1},
		{"DC 2", 16, 3},
		{"DC 3", 16, 1},
	}
	for _, tt := range tests {
		if got := s.Multiplier(tt.dc, tt.tick); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Multiplier(%s, %d) = %v, want %v", tt.dc, tt.tick, got, tt.want)
		}
	}
	var nilSched *Schedule
	if got := nilSched.Multiplier("DC 1", 0); got != 1 {
		t.Errorf("nil schedule multiplier = %v, want 1", got)
	}
}

func TestNewScheduleErrors(t *testing.T) {
	if _, err := NewSchedule(Event{Name: "bad", StartTick: 5, EndTick: 5}); err == nil {
		t.Error("empty interval should error")
	}
	if _, err := NewSchedule(Event{
		Name: "neg", StartTick: 0, EndTick: 1,
		Multipliers: map[string]float64{"DC 1": -1},
	}); err == nil {
		t.Error("negative multiplier should error")
	}
}

func TestFailoverEventRedistributes(t *testing.T) {
	dcs := []Datacenter{
		{Name: "A", Weight: 0.5},
		{Name: "B", Weight: 0.3},
		{Name: "C", Weight: 0.2},
	}
	ev, err := FailoverEvent("failC", 0, 10, dcs, "C")
	if err != nil {
		t.Fatalf("FailoverEvent: %v", err)
	}
	if ev.Multipliers["C"] != 0 {
		t.Errorf("failed DC multiplier = %v, want 0", ev.Multipliers["C"])
	}
	// Survivors each absorb 0.2/0.8 = +25%.
	for _, dc := range []string{"A", "B"} {
		if got := ev.Multipliers[dc]; math.Abs(got-1.25) > 1e-12 {
			t.Errorf("%s multiplier = %v, want 1.25", dc, got)
		}
	}
	// Conservation: total traffic unchanged.
	var before, after float64
	for _, dc := range dcs {
		before += dc.Weight
		after += dc.Weight * ev.Multipliers[dc.Name]
	}
	if math.Abs(before-after) > 1e-12 {
		t.Errorf("traffic not conserved: %v -> %v", before, after)
	}
}

func TestFailoverEventErrors(t *testing.T) {
	dcs := []Datacenter{{Name: "A", Weight: 1}}
	if _, err := FailoverEvent("x", 0, 1, nil, "A"); err == nil {
		t.Error("no datacenters should error")
	}
	if _, err := FailoverEvent("x", 0, 1, dcs, "A"); err == nil {
		t.Error("failing all capacity should error")
	}
	if _, err := FailoverEvent("x", 0, 1, dcs, "Z"); err == nil {
		t.Error("unknown datacenter should error")
	}
}

func TestGeneratorDiurnalOffsets(t *testing.T) {
	dcs := []Datacenter{
		{Name: "West", UTCOffset: 0, Weight: 1},
		{Name: "East", UTCOffset: 12 * time.Hour, Weight: 1},
	}
	g, err := NewGenerator(Pattern{BaseRPS: 1000, PeakToTrough: 3, PeakHour: 12},
		dcs, nil, time.Hour, 0, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	// At UTC noon, West (offset 0) is at local peak; East is at local
	// midnight (trough).
	west, err := g.RPS(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	east, err := g.RPS(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if west <= east {
		t.Errorf("west %v should exceed east %v at west-local noon", west, east)
	}
	if math.Abs(west/east-3) > 0.05 {
		t.Errorf("west/east ratio = %v, want ~3", west/east)
	}
}

func TestGeneratorWeightsSplitTraffic(t *testing.T) {
	dcs := []Datacenter{
		{Name: "Big", Weight: 3},
		{Name: "Small", Weight: 1},
	}
	g, err := NewGenerator(Pattern{BaseRPS: 400, PeakToTrough: 1}, dcs, nil, time.Hour, 0, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	big, _ := g.RPS(0, 0)
	small, _ := g.RPS(1, 0)
	if math.Abs(big-300) > 1e-9 || math.Abs(small-100) > 1e-9 {
		t.Errorf("split = %v/%v, want 300/100", big, small)
	}
}

func TestGeneratorErrors(t *testing.T) {
	dcs := []Datacenter{{Name: "A", Weight: 1}}
	if _, err := NewGenerator(Pattern{BaseRPS: -1}, dcs, nil, 0, 0, 1); err == nil {
		t.Error("negative base RPS should error")
	}
	if _, err := NewGenerator(Pattern{}, nil, nil, 0, 0, 1); err == nil {
		t.Error("no datacenters should error")
	}
	if _, err := NewGenerator(Pattern{}, []Datacenter{{Name: "A", Weight: -1}}, nil, 0, 0, 1); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewGenerator(Pattern{}, []Datacenter{{Name: "A"}, {Name: "A", Weight: 1}}, nil, 0, 0, 1); err == nil {
		t.Error("duplicate datacenter should error")
	}
	if _, err := NewGenerator(Pattern{}, []Datacenter{{Name: "A", Weight: 0}}, nil, 0, 0, 1); err == nil {
		t.Error("zero total weight should error")
	}
	g, err := NewGenerator(Pattern{BaseRPS: 1}, dcs, nil, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RPS(5, 0); err == nil {
		t.Error("out-of-range DC index should error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	dcs := NineRegions()
	mk := func() []float64 {
		g, err := NewGenerator(Pattern{BaseRPS: 10000, PeakToTrough: 2.5, PeakHour: 13},
			dcs, nil, TickDuration, 0.05, 77)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for tick := 0; tick < 100; tick++ {
			for d := range dcs {
				v, err := g.RPS(d, tick)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, v)
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNineRegions(t *testing.T) {
	dcs := NineRegions()
	if len(dcs) != 9 {
		t.Fatalf("len = %d, want 9", len(dcs))
	}
	var tw float64
	seen := map[string]bool{}
	for _, dc := range dcs {
		if seen[dc.Name] {
			t.Errorf("duplicate name %q", dc.Name)
		}
		seen[dc.Name] = true
		tw += dc.Weight
	}
	if math.Abs(tw-1) > 1e-9 {
		t.Errorf("total weight = %v, want 1", tw)
	}
}

func TestTicksPerDay(t *testing.T) {
	if got := TicksPerDay(TickDuration); got != 720 {
		t.Errorf("TicksPerDay(120s) = %d, want 720", got)
	}
	if got := TicksPerDay(0); got != 720 {
		t.Errorf("TicksPerDay(0) should default to 720, got %d", got)
	}
	if got := TicksPerDay(time.Hour); got != 24 {
		t.Errorf("TicksPerDay(1h) = %d, want 24", got)
	}
}
