package headroom

// Resilience layer: error classification (transient vs permanent), the
// retrying ResilientSource wrapper, and the typed partial-failure errors
// surfaced by sharded aggregation (see Session.Aggregate and
// WithPartialResults).
//
// The paper's always-on collection pipeline tolerates constant partial
// failure — lossy agents, stragglers, restarts — without corrupting
// aggregates. This file is the reproduction of that property: sources can
// fail and be retried per shard, whole pools can drop out of a run without
// aborting it, and every failure is classified and reported instead of
// tearing the pipeline down.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"headroom/internal/obs"
)

// ErrTransient marks a source error as retryable. Sources (and fault
// injectors) wrap errors with Transient to tell ResilientSource the failure
// is worth retrying; unmarked errors are treated as permanent.
var ErrTransient = errors.New("headroom: transient source failure")

// Transient wraps err so resilience layers retry it. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err is marked retryable (wrapped by Transient
// or any wrapping satisfying errors.Is against ErrTransient).
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// PoolNamer is optionally implemented by sources that know which pools their
// records belong to. Sharded aggregation uses it to attribute shard failures
// to pool names in PoolError; a nil result means the pools are unknown.
type PoolNamer interface {
	PoolNames() []string
}

// poolNamesOf returns src's pool names when it implements PoolNamer.
func poolNamesOf(src Source) []string {
	if pn, ok := src.(PoolNamer); ok {
		return pn.PoolNames()
	}
	return nil
}

// PoolError describes one failed shard of a partial aggregation: which
// shard, which pools it carried (when known), and why it failed.
type PoolError struct {
	// Shard is the shard's index in the fan-out.
	Shard int
	// Pools are the pool names the shard carried, when the shard's source
	// implements PoolNamer; nil otherwise.
	Pools []string
	// Err is the shard's failure.
	Err error
}

// Error renders the shard failure.
func (e PoolError) Error() string {
	if len(e.Pools) > 0 {
		return fmt.Sprintf("shard %d (pools %s): %v", e.Shard, strings.Join(e.Pools, ", "), e.Err)
	}
	return fmt.Sprintf("shard %d: %v", e.Shard, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e PoolError) Unwrap() error { return e.Err }

// PartialError reports a sharded aggregation that lost some shards. With
// WithPartialResults enabled, Session.Aggregate returns the merged result of
// the surviving shards together with a *PartialError listing the failed
// ones; callers detect it with errors.As and decide whether a degraded
// result is acceptable. When every shard failed the aggregator is nil.
type PartialError struct {
	// Failed lists the failed shards in shard order.
	Failed []PoolError
	// Shards is the total number of shards in the fan-out.
	Shards int
}

// Error summarises the partial failure.
func (e *PartialError) Error() string {
	pools := e.FailedPools()
	if len(pools) > 0 {
		return fmt.Sprintf("headroom: %d of %d shards failed (pools %s): %v",
			len(e.Failed), e.Shards, strings.Join(pools, ", "), e.Failed[0].Err)
	}
	return fmt.Sprintf("headroom: %d of %d shards failed: %v", len(e.Failed), e.Shards, e.Failed[0].Err)
}

// Unwrap exposes every shard failure to errors.Is/As.
func (e *PartialError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f
	}
	return out
}

// FailedPools returns the sorted, deduplicated union of pool names across
// the failed shards.
func (e *PartialError) FailedPools() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range e.Failed {
		for _, p := range f.Pools {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// RetryPolicy configures ResilientSource. Zero fields take the documented
// defaults.
type RetryPolicy struct {
	// MaxAttempts bounds stream attempts (first try included); default 3.
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling per attempt
	// with seeded jitter; default 50 ms.
	Backoff time.Duration
	// MaxBackoff caps the per-retry sleep; default 2 s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each attempt. A stalled attempt is cancelled at
	// the timeout and retried as a transient failure. Zero means no
	// per-attempt deadline.
	AttemptTimeout time.Duration
	// Seed drives the backoff jitter deterministically; default 1. Sharded
	// sources derive a distinct jitter stream per shard.
	Seed int64
	// Classify overrides transient/permanent classification: return true to
	// retry err. Default: IsTransient.
	Classify func(error) bool
	// OnRetry, when set, observes every retry (attempt is the attempt that
	// just failed, starting at 1). Used for metrics.
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Classify == nil {
		p.Classify = IsTransient
	}
	return p
}

// ResilientSource wraps src with retry-on-transient-failure semantics:
// failed streams are re-run with exponential backoff and seeded jitter, and
// records already delivered are skipped on the retry so the consumer sees
// every record exactly once, in order. The wrapped source must therefore be
// deterministic across attempts — true of every source in this module (all
// are seeded).
//
// Classification: errors marked Transient are retried, as are per-attempt
// timeouts (AttemptTimeout) and panics are converted to permanent errors.
// Errors returned by the consumer's emit callback and context cancellation
// are never retried.
//
// The wrapper preserves sharding: when src implements ShardedSource, each
// shard is wrapped with the same policy (distinct jitter seed per shard), so
// a transient failure in one pool's shard retries that shard alone. It also
// forwards PoolNamer.
func ResilientSource(src Source, policy RetryPolicy) Source {
	if src == nil {
		return nil
	}
	return &resilientSource{src: src, policy: policy.withDefaults()}
}

type resilientSource struct {
	src    Source
	policy RetryPolicy
}

// errConsumer distinguishes consumer emit errors from source failures.
type errConsumer struct{ err error }

func (e errConsumer) Error() string { return e.err.Error() }

func (r *resilientSource) Stream(ctx context.Context, emit func(Record) error) error {
	p := r.policy
	rng := rand.New(rand.NewSource(p.Seed))
	delivered := 0
	backoff := p.Backoff
	for attempt := 1; ; attempt++ {
		attemptCtx := ctx
		cancel := context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		skip := delivered
		err := safeStream(attemptCtx, r.src, func(rec Record) error {
			if skip > 0 {
				// Replay of an earlier attempt's records: drop them so the
				// consumer sees each record exactly once.
				skip--
				return nil
			}
			if err := emit(rec); err != nil {
				return errConsumer{err}
			}
			delivered++
			return nil
		})
		cancel()
		if err == nil {
			return nil
		}
		var ce errConsumer
		if errors.As(err, &ce) {
			return ce.err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// An attempt-timeout expiry is a stall, retried as transient.
		stalled := p.AttemptTimeout > 0 && errors.Is(err, context.DeadlineExceeded)
		if attempt >= p.MaxAttempts || !(stalled || p.Classify(err)) {
			return err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		// Attribute the retry to the active shard span (if any), so a trace
		// shows which pool's stream was retried and how often.
		obs.ActiveSpan(ctx).AddInt("retries", 1)
		sleep := jitterBackoff(rng, backoff)
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
}

// jitterBackoff returns a half-jittered sleep in [backoff/2, backoff].
func jitterBackoff(rng *rand.Rand, backoff time.Duration) time.Duration {
	half := backoff / 2
	if half <= 0 {
		return backoff
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// safeStream runs one stream attempt, converting a panic in the source into
// a (permanent) error so one bad shard cannot take the process down.
func safeStream(ctx context.Context, src Source, emit func(Record) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("headroom: source panicked: %v", v)
		}
	}()
	return src.Stream(ctx, emit)
}

// Shards wraps each of the underlying source's shards with the same policy,
// deriving a distinct jitter seed per shard. A non-shardable underlying
// source yields a single shard.
func (r *resilientSource) Shards(n int) []Source {
	sh, ok := r.src.(ShardedSource)
	if !ok || n <= 1 {
		return []Source{r}
	}
	subs := sh.Shards(n)
	if len(subs) <= 1 {
		return []Source{r}
	}
	out := make([]Source, len(subs))
	for i, sub := range subs {
		p := r.policy
		p.Seed = deriveSeed(p.Seed, int64(i))
		out[i] = &resilientSource{src: sub, policy: p}
	}
	return out
}

// PoolNames forwards the underlying source's pool attribution.
func (r *resilientSource) PoolNames() []string { return poolNamesOf(r.src) }

// deriveSeed mixes a stream index into a base seed (splitmix64 finalizer) so
// per-shard randomness is decorrelated but reproducible.
func deriveSeed(seed, idx int64) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

var (
	_ ShardedSource = (*resilientSource)(nil)
	_ PoolNamer     = (*resilientSource)(nil)
)
