package headroom_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"headroom"
)

// poolRecords builds n in-order windows for one (pool, dc) key.
func poolRecords(pool, dc string, n int) []headroom.Record {
	recs := make([]headroom.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, headroom.Record{
			Tick: i, DC: dc, Pool: pool, Server: "s1", Online: true,
			RPS: 100 + float64(i), CPUPct: 10, LatencyMs: 20,
		})
	}
	return recs
}

func TestReplaySourceEmpty(t *testing.T) {
	ctx := context.Background()
	src := headroom.NewReplaySource(nil)

	// Streaming an empty slice emits nothing and succeeds.
	var n int
	if err := src.Stream(ctx, func(headroom.Record) error { n++; return nil }); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if n != 0 {
		t.Errorf("emitted %d records from an empty source", n)
	}

	// Sharding an empty source degenerates to the source itself.
	if shards := src.Shards(8); len(shards) != 1 {
		t.Errorf("Shards(8) on empty source = %d shards, want 1", len(shards))
	}

	// Aggregating it yields an empty (but valid) aggregator.
	s, err := headroom.New(ctx, headroom.WithSource(src))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	agg, err := s.Simulate(ctx, 0)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if pools := agg.Pools(); len(pools) != 0 {
		t.Errorf("pools = %v, want none", pools)
	}
}

func TestReplaySourceSinglePool(t *testing.T) {
	ctx := context.Background()
	recs := poolRecords("B", "DC 1", 100)
	src := headroom.NewReplaySource(recs)

	// One (pool, dc) key cannot be split further: sharding returns a
	// single shard no matter how many are requested.
	if shards := src.Shards(8); len(shards) != 1 {
		t.Fatalf("Shards(8) with one pool = %d shards, want 1", len(shards))
	}

	// Sharded session aggregation over the single-pool source must match
	// the sequential pass exactly.
	sharded, err := headroom.New(ctx, headroom.WithSource(src), headroom.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := headroom.New(ctx, headroom.WithSource(headroom.NewReplaySource(recs)), headroom.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Simulate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sequential.Simulate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := got.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := want.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs, ws) {
		t.Error("sharded single-pool aggregate differs from sequential")
	}
	if len(gs) != 100 {
		t.Errorf("windows = %d, want 100", len(gs))
	}
}

func TestReplaySourceCancellationMidStream(t *testing.T) {
	// Enough records to cross emitAll's periodic cancellation checks.
	var recs []headroom.Record
	for _, pool := range []string{"A", "B", "C"} {
		recs = append(recs, poolRecords(pool, "DC 1", 2000)...)
	}
	src := headroom.NewReplaySource(recs)

	ctx, cancel := context.WithCancel(context.Background())
	var n int
	err := src.Stream(ctx, func(headroom.Record) error {
		n++
		if n == 1500 {
			cancel() // cancel mid-stream, away from a batch boundary
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream after mid-stream cancel = %v, want context.Canceled", err)
	}
	if n >= len(recs) {
		t.Errorf("stream ran to completion (%d records) despite cancellation", n)
	}

	// A session over the cancelled context refuses to aggregate at all.
	s, err := headroom.New(context.Background(), headroom.WithSource(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate over cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestReplaySourceEmitErrorAborts(t *testing.T) {
	recs := poolRecords("B", "DC 1", 50)
	src := headroom.NewReplaySource(recs)
	boom := errors.New("boom")
	var n int
	err := src.Stream(context.Background(), func(headroom.Record) error {
		n++
		if n == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want emit error returned as-is", err)
	}
	if n != 10 {
		t.Errorf("emitted %d records after abort, want 10", n)
	}
}

func TestReplaySourceShardsPreserveAllRecords(t *testing.T) {
	// Several pools with unequal sizes: shards must union back to the
	// full stream with per-key order intact.
	var recs []headroom.Record
	for i, pool := range []string{"A", "B", "C", "D", "E"} {
		recs = append(recs, poolRecords(pool, "DC 1", 10*(i+1))...)
	}
	src := headroom.NewReplaySource(recs)
	shards := src.Shards(3)
	if len(shards) != 3 {
		t.Fatalf("Shards(3) = %d shards", len(shards))
	}
	perKey := map[string][]int{}
	var total int
	for _, sh := range shards {
		if err := sh.Stream(context.Background(), func(r headroom.Record) error {
			total++
			key := fmt.Sprintf("%s@%s", r.Pool, r.DC)
			perKey[key] = append(perKey[key], r.Tick)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total != len(recs) {
		t.Errorf("shards emitted %d records, want %d", total, len(recs))
	}
	for key, ticks := range perKey {
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Errorf("%s: per-key order broken at %d (%d after %d)", key, i, ticks[i], ticks[i-1])
				break
			}
		}
	}
}
