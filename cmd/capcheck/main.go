// Command capcheck replays differential verification cases outside the test
// harness. Its main job is triage: when TestDifferentialPaths or
// FuzzDifferential reports a diverging seed,
//
//	capcheck -seed 1234 -v
//
// reruns exactly that case through all four execution paths and prints the
// first diverging JSON field. Without -seed it sweeps a seed range, which is
// useful for soak runs longer than the test suite's default:
//
//	capcheck -start 1 -n 1000
//
// Exit status is 1 if any case diverged (or leaked goroutines), 0 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"headroom/internal/diffcheck"
)

func main() {
	seed := flag.Int64("seed", 0, "replay exactly this generator seed (overrides -start/-n)")
	start := flag.Int64("start", 1, "first seed of the sweep")
	n := flag.Int("n", 25, "number of consecutive seeds to sweep")
	verbose := flag.Bool("v", false, "print every case and each path's outcome, not just divergences")
	flag.Parse()

	seeds := make([]int64, 0, *n)
	if *seed != 0 {
		seeds = append(seeds, *seed)
	} else {
		for i := 0; i < *n; i++ {
			seeds = append(seeds, *start+int64(i))
		}
	}

	ctx := context.Background()
	diverged := 0
	for _, s := range seeds {
		c := diffcheck.Generate(s)
		if *verbose {
			fmt.Printf("case %s\n", c)
		}
		rep, err := diffcheck.RunCase(ctx, c, diffcheck.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "capcheck: case %s\n  harness error: %v\n", c, err)
			os.Exit(2)
		}
		if *verbose {
			for _, p := range rep.Paths {
				status := "ok"
				switch {
				case p.Err != "":
					status = "error: " + p.Err
				case p.Degraded:
					status = fmt.Sprintf("degraded, failed_pools=%v", p.FailedPools)
				}
				if p.CacheHit {
					status += " (cache hit)"
				}
				fmt.Printf("  %-13s %s\n", p.Name, status)
			}
		}
		if rep.Diff != "" {
			diverged++
			fmt.Fprintf(os.Stderr, "DIVERGED case %s\n  %s\n", c, rep.Diff)
		}
	}
	if diverged > 0 {
		fmt.Fprintf(os.Stderr, "capcheck: %d of %d cases diverged\n", diverged, len(seeds))
		os.Exit(1)
	}
	fmt.Printf("capcheck: %d cases, all paths agreed\n", len(seeds))
}
