package baseline

import (
	"math"
	"testing"
)

func TestErlangCKnownValues(t *testing.T) {
	// Classic check: c=1 reduces to M/M/1 where P(wait) = rho.
	m := MMc{Lambda: 0.7, Mu: 1, C: 1}
	pw, err := m.ErlangC()
	if err != nil {
		t.Fatalf("ErlangC: %v", err)
	}
	if math.Abs(pw-0.7) > 1e-12 {
		t.Errorf("M/M/1 P(wait) = %v, want rho = 0.7", pw)
	}
	// Larger pools queue less at the same utilisation (pooling effect).
	p1, err := (MMc{Lambda: 7, Mu: 1, C: 10}).ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (MMc{Lambda: 70, Mu: 1, C: 100}).ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if p2 >= p1 {
		t.Errorf("pooling effect violated: C=100 P(wait) %v >= C=10 %v", p2, p1)
	}
	// Zero load: nobody waits.
	p0, err := (MMc{Lambda: 0, Mu: 1, C: 3}).ErlangC()
	if err != nil || p0 != 0 {
		t.Errorf("zero-load P(wait) = %v, %v", p0, err)
	}
}

func TestMMcValidation(t *testing.T) {
	bad := []MMc{
		{Lambda: -1, Mu: 1, C: 1},
		{Lambda: 1, Mu: 0, C: 1},
		{Lambda: 1, Mu: 1, C: 0},
		{Lambda: 2, Mu: 1, C: 2}, // rho = 1: unstable
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v should be invalid", m)
		}
	}
}

func TestMeanWaitMatchesM_M_1(t *testing.T) {
	// M/M/1: Wq = rho / (mu - lambda).
	m := MMc{Lambda: 0.5, Mu: 1, C: 1}
	w, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 / (1 - 0.5)
	if math.Abs(w-want) > 1e-12 {
		t.Errorf("MeanWait = %v, want %v", w, want)
	}
}

func TestWaitPercentile(t *testing.T) {
	m := MMc{Lambda: 8, Mu: 1, C: 10}
	w50, err := m.WaitPercentile(50)
	if err != nil {
		t.Fatal(err)
	}
	w95, err := m.WaitPercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if w95 <= w50 {
		t.Errorf("p95 wait %v should exceed p50 %v", w95, w50)
	}
	// Lightly loaded: the p50 request does not wait at all.
	light := MMc{Lambda: 1, Mu: 1, C: 10}
	w, err := light.WaitPercentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Errorf("light-load p50 wait = %v, want 0", w)
	}
	if _, err := m.WaitPercentile(0); err == nil {
		t.Error("percentile 0 should error")
	}
	if _, err := m.WaitPercentile(100); err == nil {
		t.Error("percentile 100 should error")
	}
}

func TestPlanServers(t *testing.T) {
	cfg := PlanConfig{
		PeakLambda:    10000, // req/s
		ServiceTimeMs: 10,
		SLOMs:         15,
		Percentile:    95,
	}
	c, err := PlanServers(cfg)
	if err != nil {
		t.Fatalf("PlanServers: %v", err)
	}
	// Must at least cover the raw work: lambda/mu = 100 servers.
	if c <= 100 {
		t.Errorf("c = %d, must exceed the work-conserving bound 100", c)
	}
	// The plan must meet the SLO, and c-1 must not (minimality).
	mu := 1000.0 / cfg.ServiceTimeMs
	check := func(c int) float64 {
		w, err := (MMc{Lambda: cfg.PeakLambda, Mu: mu, C: c}).WaitPercentile(95)
		if err != nil {
			return math.Inf(1)
		}
		return cfg.ServiceTimeMs + w*1000
	}
	if got := check(c); got > cfg.SLOMs {
		t.Errorf("latency at plan = %v ms, exceeds SLO", got)
	}
	if got := check(c - 1); got <= cfg.SLOMs {
		t.Errorf("c-1 also meets SLO (%v ms): plan not minimal", got)
	}
}

func TestPlanServersErrors(t *testing.T) {
	if _, err := PlanServers(PlanConfig{PeakLambda: -1, ServiceTimeMs: 1, SLOMs: 2}); err == nil {
		t.Error("negative load should error")
	}
	if _, err := PlanServers(PlanConfig{PeakLambda: 1, ServiceTimeMs: 0, SLOMs: 2}); err == nil {
		t.Error("zero service time should error")
	}
	if _, err := PlanServers(PlanConfig{PeakLambda: 1, ServiceTimeMs: 10, SLOMs: 5}); err == nil {
		t.Error("unachievable SLO should error")
	}
}

// respond is a simple convex plant for autoscaler tests.
func respond(totalRPS float64, servers int) (float64, float64) {
	per := totalRPS / float64(servers)
	cpu := 0.05*per + 2
	lat := 20 + 0.00002*per*per
	return cpu, lat
}

func TestSimulateAutoscalerTracksDiurnalLoad(t *testing.T) {
	cfg := AutoscalerConfig{
		TargetLow: 20, TargetHigh: 50,
		MinServers: 10, MaxServers: 500,
		ProvisionDelayTicks: 5, CooldownTicks: 3,
	}
	// One diurnal day at 120 s ticks.
	offered := make([]float64, 720)
	for i := range offered {
		day := float64(i) / 720
		offered[i] = 150000 * (1 + 0.4*math.Cos(2*math.Pi*(day-0.55)))
	}
	res, err := SimulateAutoscaler(cfg, offered, 200, 60, respond)
	if err != nil {
		t.Fatalf("SimulateAutoscaler: %v", err)
	}
	if len(res.Decisions) == 0 {
		t.Error("diurnal load should force scaling decisions")
	}
	if res.PeakServers <= 10 {
		t.Errorf("peak servers = %d", res.PeakServers)
	}
	if res.ServerTicks <= 0 {
		t.Error("server ticks must accumulate")
	}
}

func TestAutoscalerLagCausesViolationsUnderSurge(t *testing.T) {
	cfg := AutoscalerConfig{
		TargetLow: 20, TargetHigh: 50,
		MinServers: 10, MaxServers: 1000,
		ProvisionDelayTicks: 15, // slow provisioning (cache priming, JIT)
		CooldownTicks:       3,
	}
	// Flat load, then a sudden 2.3x surge (the paper's natural
	// experiment).
	offered := make([]float64, 300)
	for i := range offered {
		offered[i] = 100000
		if i >= 150 {
			offered[i] = 230000
		}
	}
	// Start right-sized for the flat load.
	reactive, err := SimulateAutoscaler(cfg, offered, 120, 45, respond)
	if err != nil {
		t.Fatal(err)
	}
	// A static plan provisioned for the surge (the paper's headroom
	// approach) has zero violations.
	static, err := StaticPlanCost(380, offered, 45, respond)
	if err != nil {
		t.Fatal(err)
	}
	if reactive.SLOViolations == 0 {
		t.Error("slow reactive scaling should violate SLO during the surge")
	}
	if static.SLOViolations != 0 {
		t.Errorf("static surge-sized plan should not violate, got %d", static.SLOViolations)
	}
}

func TestSimulateAutoscalerErrors(t *testing.T) {
	good := AutoscalerConfig{TargetLow: 20, TargetHigh: 50, MinServers: 1, MaxServers: 10}
	if _, err := SimulateAutoscaler(good, nil, 5, 10, respond); err == nil {
		t.Error("empty load should error")
	}
	if _, err := SimulateAutoscaler(good, []float64{1}, 50, 10, respond); err == nil {
		t.Error("initial out of bounds should error")
	}
	if _, err := SimulateAutoscaler(good, []float64{1}, 5, 10, nil); err == nil {
		t.Error("nil respond should error")
	}
	bad := good
	bad.TargetHigh = 10
	if _, err := SimulateAutoscaler(bad, []float64{1}, 5, 10, respond); err == nil {
		t.Error("inverted band should error")
	}
	if _, err := StaticPlanCost(0, []float64{1}, 10, respond); err == nil {
		t.Error("zero static servers should error")
	}
	if _, err := StaticPlanCost(5, []float64{1}, 10, nil); err == nil {
		t.Error("nil respond should error")
	}
}
