package optimize

import (
	"context"
	"errors"
	"fmt"

	"headroom/internal/metrics"
	"headroom/internal/stats"
)

// Plant is the system under experimentation: something that can run a pool
// at a requested server count for a period and report the observed pool
// aggregates. In production this is the live service (operators removing
// servers under supervision); in this reproduction it is the simulator.
type Plant interface {
	// Observe runs the pool with the given active server count for the
	// given number of ticks and returns per-tick aggregates. Observe should
	// honour ctx and return ctx.Err() when the experiment is cancelled
	// mid-observation.
	Observe(ctx context.Context, servers, ticks int) ([]metrics.TickStat, error)
}

// RSMConfig controls the iterative reduction experiment of §II-B2
// (Figure 7).
type RSMConfig struct {
	// InitialServers is the pool's nominal server count.
	InitialServers int
	// QoSLimitMs is the latency SLO; the experiment stops when the
	// forecast for the next step would breach it (the paper's 14 ms line
	// in Figure 7).
	QoSLimitMs float64
	// StepFrac is the fractional reduction per iteration (e.g. 0.10 =
	// remove 10% of the current servers each step). Defaults to 0.10.
	StepFrac float64
	// ObserveTicks is the observation period per iteration (the paper ran
	// each reduction for roughly one week). Defaults to 504 (one week of
	// 20-minute... of 120 s windows is 5040; tests use shorter horizons).
	ObserveTicks int
	// MaxIterations bounds the loop. Defaults to 12.
	MaxIterations int
	// Seed drives the robust fits.
	Seed int64
}

func (c RSMConfig) withDefaults() RSMConfig {
	if c.StepFrac <= 0 {
		c.StepFrac = 0.10
	}
	if c.ObserveTicks <= 0 {
		c.ObserveTicks = 504
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 12
	}
	return c
}

// RSMIteration is one step of the reduction experiment.
type RSMIteration struct {
	// Servers is the active server count during this iteration.
	Servers int
	// ObservedLatencyMs is the mean observed p95 latency.
	ObservedLatencyMs float64
	// ObservedP95RPS is the 95th percentile of per-server load.
	ObservedP95RPS float64
	// ForecastNextMs is the model's latency forecast for the next
	// (further reduced) server count.
	ForecastNextMs float64
	// NextServers is the server count the forecast evaluated.
	NextServers int
}

// RSMResult is the outcome of the full experiment.
type RSMResult struct {
	Iterations []RSMIteration
	// FinalServers is the last server count whose observed and forecast
	// QoS stayed within the limit.
	FinalServers int
	// SavingsFrac is 1 - FinalServers/InitialServers.
	SavingsFrac float64
	// Model is the final fitted latency model against RPS/server, pooled
	// over all iterations.
	Model stats.Polynomial
	// Stopped explains why the loop ended ("qos-forecast", "qos-observed",
	// "max-iterations", "min-servers").
	Stopped string
}

// RunRSM executes the iterative server-reduction experiment: observe,
// model (robust quadratic of latency vs per-server load pooled across
// iterations), extrapolate along the gradient to the next candidate server
// count, and stop when the forecast breaches the QoS limit. Cancellation is
// checked before every iteration and passed down into the plant.
func RunRSM(ctx context.Context, plant Plant, cfg RSMConfig) (RSMResult, error) {
	if plant == nil {
		return RSMResult{}, errors.New("optimize: nil plant")
	}
	cfg = cfg.withDefaults()
	if cfg.InitialServers <= 1 {
		return RSMResult{}, fmt.Errorf("optimize: need > 1 initial server, got %d", cfg.InitialServers)
	}
	if cfg.QoSLimitMs <= 0 {
		return RSMResult{}, fmt.Errorf("optimize: non-positive QoS limit %v", cfg.QoSLimitMs)
	}

	var (
		res     RSMResult
		allRPS  []float64
		allLat  []float64
		servers = cfg.InitialServers
	)
	res.FinalServers = servers
	for it := 0; it < cfg.MaxIterations; it++ {
		if err := ctx.Err(); err != nil {
			return RSMResult{}, err
		}
		series, err := plant.Observe(ctx, servers, cfg.ObserveTicks)
		if err != nil {
			return RSMResult{}, fmt.Errorf("optimize: iteration %d observe: %w", it, err)
		}
		var rps, lat []float64
		for _, t := range series {
			if t.Servers == 0 {
				continue
			}
			rps = append(rps, t.RPSPerServer)
			lat = append(lat, t.LatencyMean)
		}
		if len(rps) < 6 {
			return RSMResult{}, fmt.Errorf("optimize: iteration %d produced %d usable windows", it, len(rps))
		}
		allRPS = append(allRPS, rps...)
		allLat = append(allLat, lat...)

		iter := RSMIteration{
			Servers:           servers,
			ObservedLatencyMs: stats.Mean(lat),
			ObservedP95RPS:    stats.Percentile(rps, 95),
		}
		if iter.ObservedLatencyMs > cfg.QoSLimitMs {
			// The observation itself breached QoS: roll back one step.
			res.Iterations = append(res.Iterations, iter)
			res.Stopped = "qos-observed"
			break
		}
		res.FinalServers = servers

		// Model: robust quadratic over everything observed so far.
		fit, err := stats.RANSAC(allRPS, allLat, stats.RANSACConfig{Degree: 2, Seed: cfg.Seed + int64(it), MaxIterations: 300})
		if err != nil {
			return RSMResult{}, fmt.Errorf("optimize: iteration %d fit: %w", it, err)
		}
		res.Model = fit.Model

		// Extrapolate: forecast latency at the next reduction, holding the
		// observed total load (the experimental control of §II-B2).
		next := int(float64(servers) * (1 - cfg.StepFrac))
		if next >= servers {
			next = servers - 1
		}
		if next < 1 {
			res.Iterations = append(res.Iterations, iter)
			res.Stopped = "min-servers"
			break
		}
		// p95 of per-server load scales with the count ratio.
		nextP95 := iter.ObservedP95RPS * float64(servers) / float64(next)
		iter.ForecastNextMs = fit.Model.Predict(nextP95)
		iter.NextServers = next
		res.Iterations = append(res.Iterations, iter)

		if iter.ForecastNextMs > cfg.QoSLimitMs {
			res.Stopped = "qos-forecast"
			break
		}
		servers = next
	}
	if res.Stopped == "" {
		res.Stopped = "max-iterations"
	}
	res.SavingsFrac = 1 - float64(res.FinalServers)/float64(cfg.InitialServers)
	return res, nil
}
