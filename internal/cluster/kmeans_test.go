package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// twoBlobs generates two well-separated Gaussian blobs mimicking the paper's
// Figure 3: an older hardware generation at higher CPU and a newer one at
// lower CPU.
func twoBlobs(n int, seed int64) ([]Point, []int) {
	rng := rand.New(rand.NewSource(seed))
	points := make([]Point, 0, 2*n)
	labels := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		// old generation: p5 ~ 8%, p95 ~ 20%
		points = append(points, Point{8 + rng.NormFloat64()*0.8, 20 + rng.NormFloat64()*1.2})
		labels = append(labels, 0)
		// new generation: p5 ~ 3%, p95 ~ 9%
		points = append(points, Point{3 + rng.NormFloat64()*0.5, 9 + rng.NormFloat64()*0.9})
		labels = append(labels, 1)
	}
	return points, labels
}

func TestKMeansTwoBlobs(t *testing.T) {
	points, labels := twoBlobs(100, 1)
	res, err := KMeans(points, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	// Every pair with the same true label must land in the same cluster
	// (check via purity >= 99%).
	match := 0
	for i := range points {
		if (res.Assignment[i] == res.Assignment[0]) == (labels[i] == labels[0]) {
			match++
		}
	}
	purity := float64(match) / float64(len(points))
	if purity < 0.99 {
		t.Errorf("purity = %v, want >= 0.99", purity)
	}
	sizes := res.Sizes()
	if len(sizes) != 2 || sizes[0]+sizes[1] != len(points) {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, Config{K: 2}); err == nil {
		t.Error("no data should error")
	}
	pts := []Point{{1, 2}, {3, 4}}
	if _, err := KMeans(pts, Config{K: 0}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(pts, Config{K: 5}); err == nil {
		t.Error("k > n should error")
	}
	bad := []Point{{1, 2}, {3}}
	if _, err := KMeans(bad, Config{K: 1}); err == nil {
		t.Error("ragged dimensions should error")
	}
}

func TestKMeansK1GivesCentroidMean(t *testing.T) {
	pts := []Point{{0, 0}, {2, 2}, {4, 4}}
	res, err := KMeans(pts, Config{K: 1, Seed: 3})
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	c := res.Centroids[0]
	if math.Abs(c[0]-2) > 1e-9 || math.Abs(c[1]-2) > 1e-9 {
		t.Errorf("centroid = %v, want (2,2)", c)
	}
}

func TestKMeansDeterminism(t *testing.T) {
	points, _ := twoBlobs(50, 2)
	a, err := KMeans(points, Config{K: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, Config{K: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Errorf("inertia differs across identical seeds: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("assignment differs across identical seeds")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := make([]Point, 10)
	for i := range pts {
		pts[i] = Point{5, 5}
	}
	res, err := KMeans(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatalf("KMeans on identical points: %v", err)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %v, want 0", res.Inertia)
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	points, labels := twoBlobs(60, 3)
	good, err := Silhouette(points, labels, 2)
	if err != nil {
		t.Fatalf("Silhouette: %v", err)
	}
	if good < 0.6 {
		t.Errorf("well-separated silhouette = %v, want >= 0.6", good)
	}
	// Random assignment should score much worse.
	rng := rand.New(rand.NewSource(5))
	randomAssign := make([]int, len(points))
	for i := range randomAssign {
		randomAssign[i] = rng.Intn(2)
	}
	bad, err := Silhouette(points, randomAssign, 2)
	if err != nil {
		t.Fatalf("Silhouette: %v", err)
	}
	if bad >= good {
		t.Errorf("random assignment silhouette %v should be < true %v", bad, good)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	pts := []Point{{1}, {2}}
	if _, err := Silhouette(pts, []int{0}, 2); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Silhouette(nil, nil, 2); err == nil {
		t.Error("empty should error")
	}
	if _, err := Silhouette(pts, []int{0, 1}, 1); err == nil {
		t.Error("k < 2 should error")
	}
	if _, err := Silhouette(pts, []int{0, 5}, 2); err == nil {
		t.Error("out-of-range assignment should error")
	}
}

func TestSelectKFindsTwoClusters(t *testing.T) {
	points, _ := twoBlobs(80, 4)
	res, err := SelectK(points, 5, 0.25, 9)
	if err != nil {
		t.Fatalf("SelectK: %v", err)
	}
	if res.K != 2 {
		t.Errorf("SelectK chose k=%d, want 2", res.K)
	}
}

func TestSelectKSingleBlobStaysOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points := make([]Point, 150)
	for i := range points {
		points[i] = Point{10 + rng.NormFloat64(), 20 + rng.NormFloat64()}
	}
	res, err := SelectK(points, 5, 0.5, 10)
	if err != nil {
		t.Fatalf("SelectK: %v", err)
	}
	if res.K != 1 {
		t.Errorf("SelectK chose k=%d for a single blob, want 1", res.K)
	}
}

func TestSelectKErrors(t *testing.T) {
	if _, err := SelectK(nil, 3, 0.2, 1); err == nil {
		t.Error("empty should error")
	}
	if _, err := SelectK([]Point{{1}}, 0, 0.2, 1); err == nil {
		t.Error("maxK < 1 should error")
	}
}

// Property: inertia never increases when k grows (best-of-restarts).
func TestInertiaMonotoneInK(t *testing.T) {
	points, _ := twoBlobs(40, 8)
	prev := math.Inf(1)
	for k := 1; k <= 4; k++ {
		res, err := KMeans(points, Config{K: k, Seed: 20, Restarts: 8})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Inertia > prev+1e-6 {
			t.Errorf("inertia increased from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}
