package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestJitterSeededDeterministic(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		q := New(Config{Workers: 1, Seed: seed})
		defer q.Close(context.Background())
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = q.jitter(100 * time.Millisecond)
		}
		return out
	}
	a, b := seq(5), seq(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := seq(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter sequences")
	}
}

func TestJitterStaysInHalfToFullRange(t *testing.T) {
	q := New(Config{Workers: 1, Seed: 3})
	defer q.Close(context.Background())
	backoff := 80 * time.Millisecond
	for i := 0; i < 200; i++ {
		got := q.jitter(backoff)
		if got < backoff/2 || got > backoff {
			t.Fatalf("jitter(%s) = %s, want within [%s, %s]", backoff, got, backoff/2, backoff)
		}
	}
}

func TestRetryAbandonedWhenBackoffExceedsDeadline(t *testing.T) {
	// The first retry's backoff cannot complete before the job deadline:
	// rather than burn a worker sleeping toward certain failure, the queue
	// must give up immediately with the last real error.
	q := New(Config{Workers: 1, Timeout: 50 * time.Millisecond, Backoff: 10 * time.Second, MaxAttempts: 3})
	defer q.Close(context.Background())

	cause := errors.New("flaky dependency")
	j, err := q.Submit("t", func(ctx context.Context) (any, error) {
		return nil, Transient(cause)
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, werr := j.Wait(context.Background())
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("job took %s: the doomed backoff was slept instead of abandoned", elapsed)
	}
	if werr == nil || !strings.Contains(werr.Error(), "retry abandoned") {
		t.Fatalf("err = %v, want retry-abandoned failure", werr)
	}
	if !errors.Is(werr, cause) {
		t.Fatalf("err = %v, want the last real error wrapped", werr)
	}
	if snap := j.Snapshot(); snap.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (abandoned before the second)", snap.Attempts)
	}
}

func TestRetrySucceedsWithinDeadline(t *testing.T) {
	// Sanity check against over-eager abandonment: a short backoff well
	// inside the deadline must still retry and succeed.
	q := New(Config{Workers: 1, Timeout: 5 * time.Second, Backoff: time.Millisecond, MaxAttempts: 3})
	defer q.Close(context.Background())
	calls := 0
	j, err := q.Submit("t", func(ctx context.Context) (any, error) {
		calls++
		if calls == 1 {
			return nil, Transient(errors.New("blip"))
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, werr := j.Wait(context.Background())
	if werr != nil || v != "ok" {
		t.Fatalf("job = (%v, %v), want (ok, nil)", v, werr)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}
