// Package diffcheck is the differential verification harness for the four
// execution paths of a capacity-planning request:
//
//	(a) sequential  — headroom.Session with one shard
//	(b) sharded     — the same Session fanned out over N shards
//	(c) distributed — a 3-worker in-process capserved cluster (loopback HTTP)
//	(d) cache-served — the capserved HTTP surface, cache miss then resubmit
//
// Every path must render byte-identical result JSON for the same request; a
// fault-injected run must name the identical failed_pools set on every path
// that can degrade. Cases are generated from a single int64 seed, so any
// failure replays exactly: `go run ./cmd/capcheck -seed N` reruns case N and
// prints the first diverging field.
package diffcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"headroom"
	"headroom/internal/faults"
	"headroom/internal/leakcheck"
	"headroom/internal/server"
)

// Case is one generated differential scenario. Everything that influences
// the computation is in here, so a Case replays identically from its Seed.
type Case struct {
	Seed   int64              // the generator seed that produced this case
	Kind   string             // "simulate" or "plan"
	Req    server.PlanRequest // simulate cases use only the embedded SimulateRequest
	Shards int                // shard count for the sharded/dist/served paths (>= 2)
	Fault  *FaultPlan         // nil for a fault-free case
}

// FaultPlan injects one deterministic fault rule into every path's source.
// Exactly one pool is faulted (and never all of them), so offset-based
// per-pool ordinals — and therefore the injection point — are identical
// across shard counts and worker placements.
type FaultPlan struct {
	Kind    faults.Kind
	Seed    int64
	Pool    string
	At      int
	Retries int // ResilientSource attempts on every path; >0 only for Transient
}

// Rule materializes the plan's single injector rule.
func (fp *FaultPlan) Rule() faults.Rule {
	return faults.Rule{Kind: fp.Kind, Pools: []string{fp.Pool}, At: []int{fp.At}, Msg: "diffcheck injected fault"}
}

func (fp *FaultPlan) String() string {
	if fp == nil {
		return "none"
	}
	return fmt.Sprintf("%s pool=%s at=%d retries=%d seed=%d", fp.Kind, fp.Pool, fp.At, fp.Retries, fp.Seed)
}

// cheapPools are the default-fleet pools whose one-day simulation costs
// ~16-35 ms; the expensive pools (B ~80 ms, D ~140 ms) appear rarely so a
// 100-case run stays fast.
var cheapPools = []string{"A", "C", "E", "F", "G", "H"}
var dearPools = []string{"B", "D", "I"}

// Generate derives a Case deterministically from seed. The distribution is
// biased toward cheap pools and one-day horizons so large case counts stay
// affordable, while still covering plan jobs, multi-day horizons, every
// fault kind and shard counts 2..4.
func Generate(seed int64) Case {
	rnd := rand.New(rand.NewSource(seed))
	c := Case{Seed: seed, Kind: "simulate"}
	if rnd.Intn(100) < 40 {
		c.Kind = "plan"
	}

	npools := 2 + rnd.Intn(2) // 2..3
	perm := rnd.Perm(len(cheapPools))
	pools := make([]string, 0, npools+1)
	for _, i := range perm[:npools] {
		pools = append(pools, cheapPools[i])
	}
	if rnd.Intn(100) < 10 { // occasionally include an expensive pool
		pools = append(pools, dearPools[rnd.Intn(len(dearPools))])
	}
	sort.Strings(pools)

	c.Req.Pools = pools
	c.Req.Days = 1
	if rnd.Intn(100) < 15 {
		c.Req.Days = 2
	}
	c.Req.Seed = 1 + rnd.Int63n(5)
	c.Shards = 2 + rnd.Intn(3) // 2..4
	if c.Kind == "plan" {
		c.Req.LatencyBudgetMs = float64(1 + rnd.Intn(10))
		c.Req.PlanSeed = 1 + rnd.Int63n(4)
		c.Req.MaxGroups = rnd.Intn(5) // 0 = default
		c.Req.MaxReductionFrac = 0    // default (1/3)
		if rnd.Intn(100) < 25 {
			c.Req.MaxReductionFrac = 0.25 * float64(1+rnd.Intn(3))
		}
	}

	switch p := rnd.Intn(100); {
	case p < 50: // fault-free
	case p < 75:
		c.Fault = &FaultPlan{Kind: faults.Permanent}
	case p < 90:
		c.Fault = &FaultPlan{Kind: faults.Transient, Retries: 2}
	default:
		c.Fault = &FaultPlan{Kind: faults.Panic}
	}
	if c.Fault != nil {
		c.Fault.Seed = 1 + rnd.Int63n(1000)
		c.Fault.Pool = pools[rnd.Intn(len(pools))]
		c.Fault.At = rnd.Intn(4)
	}
	return c
}

func (c Case) String() string {
	return fmt.Sprintf("seed=%d kind=%s pools=%v days=%d fleet_seed=%d shards=%d fault={%s}",
		c.Seed, c.Kind, c.Req.Pools, c.Req.Days, c.Req.Seed, c.Shards, c.Fault)
}

// body renders the HTTP request body for the served and distributed paths.
func (c Case) body() ([]byte, error) {
	if c.Kind == "plan" {
		return json.Marshal(c.Req)
	}
	return json.Marshal(c.Req.SimulateRequest)
}

// PathResult is one execution path's outcome.
type PathResult struct {
	Name        string
	JSON        json.RawMessage // result bytes; nil when the run failed
	Err         string          // whole-run failure, "" on success (degraded is a success)
	Degraded    bool
	FailedPools []string
	CacheHit    bool // served path only: resubmission answered from cache
}

// Report is the full outcome of one differential case.
type Report struct {
	Case  Case
	Paths []PathResult
	// Diff is empty when every invariant held; otherwise it names the first
	// divergence, including the first diverging JSON field where applicable.
	Diff string
}

// Options tunes RunCase.
type Options struct {
	// LeakGrace is how long teardown may take before goroutines count as
	// leaked; default 5 s.
	LeakGrace time.Duration
}

// RunCase executes one case through all four paths and cross-checks the
// results. The returned error reports harness-level failures (a server that
// would not start); divergences are reported in Report.Diff so callers can
// print the case alongside.
func RunCase(ctx context.Context, c Case, opts Options) (*Report, error) {
	if opts.LeakGrace <= 0 {
		opts.LeakGrace = 5 * time.Second
	}
	startGoroutines := runtime.NumGoroutine()
	rep := &Report{Case: c}

	if err := c.Req.SimulateRequest.Normalize(); err != nil {
		return nil, fmt.Errorf("diffcheck: case %d normalize: %w", c.Seed, err)
	}

	seq := c.runLibrary(ctx, 1)
	shd := c.runLibrary(ctx, c.Shards)
	dst, err := c.runDist(ctx)
	if err != nil {
		return nil, err
	}
	srv, again, err := c.runServed(ctx)
	if err != nil {
		return nil, err
	}
	rep.Paths = []PathResult{seq, shd, dst, srv, again}

	rep.Diff = c.compare(ctx, rep.Paths)

	// Every path has torn its servers down; nothing may survive.
	if err := leakcheck.Settle(startGoroutines, opts.LeakGrace); err != nil && rep.Diff == "" {
		rep.Diff = err.Error()
	}
	return rep, nil
}

// retryBackoff keeps injected-transient retries fast on every path.
const retryBackoff = time.Millisecond

// wrapSource mirrors (*server.Server).wrapSource exactly: faults innermost,
// then the resilience layer — the invariant is only meaningful if every
// path wraps in the same order.
func (c Case) wrapSource(src headroom.Source) headroom.Source {
	if c.Fault != nil {
		src = faults.New(c.Fault.Seed, c.Fault.Rule()).Source(src)
		if c.Fault.Retries > 0 {
			src = headroom.ResilientSource(src, headroom.RetryPolicy{
				MaxAttempts: c.Fault.Retries,
				Backoff:     retryBackoff,
				Seed:        c.Req.Seed,
			})
		}
	}
	return src
}

// runLibrary is paths (a) and (b): a Session over the request's fleet with
// the given shard count, rendered through the same result builders the
// server uses.
func (c Case) runLibrary(ctx context.Context, shards int) PathResult {
	name := "sequential"
	if shards > 1 {
		name = fmt.Sprintf("sharded(%d)", shards)
	}
	out := PathResult{Name: name}

	cfg, err := c.Req.Fleet()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	src := c.wrapSource(headroom.NewSimSource(cfg, c.Req.Days))
	opts := []headroom.Option{
		headroom.WithSource(src),
		headroom.WithShards(shards),
		headroom.WithPartialResults(c.Fault != nil),
	}
	planCfg := c.Req.PlanConfig()
	if c.Kind == "plan" {
		opts = append(opts, headroom.WithPlanConfig(planCfg))
	}
	sess, err := headroom.New(context.Background(), opts...)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	agg, err := sess.Simulate(ctx, 0)
	var pe *headroom.PartialError
	if errors.As(err, &pe) && agg != nil {
		err = nil
	} else if err != nil {
		out.Err = err.Error()
		return out
	} else {
		pe = nil
	}

	var v any
	switch c.Kind {
	case "plan":
		planSess, perr := headroom.New(context.Background(), headroom.WithPlanConfig(planCfg))
		if perr != nil {
			out.Err = perr.Error()
			return out
		}
		plans, perr := planSess.Plan(ctx, agg)
		if perr != nil {
			out.Err = perr.Error()
			return out
		}
		v = server.BuildPlanResult(c.Req, plans, pe)
	default:
		res, berr := server.BuildSimulateResult(c.Req.SimulateRequest, agg, pe)
		if berr != nil {
			out.Err = berr.Error()
			return out
		}
		v = res
	}
	raw, err := json.Marshal(v)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.JSON = raw
	out.Degraded, out.FailedPools = degradedOf(raw)
	return out
}

// serverConfig is the shared shape of every capserved instance a case
// spins up; faulted instances get their own fresh injector so one-shot
// rules behave as they would in a real per-process deployment.
func (c Case) serverConfig(withFaults bool) server.Config {
	cfg := server.Config{
		Workers: 2, QueueDepth: 16, CacheSize: 16, JobTimeout: time.Minute,
		Shards:         c.Shards,
		PartialResults: c.Fault != nil,
	}
	if c.Fault != nil && withFaults {
		cfg.Faults = faults.New(c.Fault.Seed, c.Fault.Rule())
		if c.Fault.Retries > 0 {
			cfg.RetryAttempts = c.Fault.Retries
			cfg.RetryBackoff = retryBackoff
		}
	}
	return cfg
}

const distToken = "diffcheck-dist-token"

// runDist is path (c): a coordinator distributing shards over three worker
// servers, all in-process behind httptest.
func (c Case) runDist(ctx context.Context) (PathResult, error) {
	out := PathResult{Name: "dist(3)"}

	var workers []*httptest.Server
	var servers []*server.Server
	defer func() {
		for _, ts := range workers {
			ts.Close()
		}
		for _, s := range servers {
			s.Shutdown(context.Background())
		}
	}()

	peers := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		wcfg := c.serverConfig(true)
		wcfg.DistToken = distToken
		ws := server.New(wcfg)
		ts := httptest.NewServer(ws.Handler())
		servers = append(servers, ws)
		workers = append(workers, ts)
		peers = append(peers, ts.URL)
	}

	ccfg := c.serverConfig(false)
	ccfg.Peers = peers
	ccfg.DistToken = distToken
	ccfg.HedgeAfter = -1 // deterministic: no hedges against an injector's one-shot state
	coord := server.New(ccfg)
	cts := httptest.NewServer(coord.Handler())
	servers = append(servers, coord)
	workers = append(workers, cts)

	v, err := c.submit(ctx, cts.URL)
	if err != nil {
		return out, err
	}
	fill(&out, v)
	return out, nil
}

// skippedResubmit marks a served-again path that was intentionally not run.
const skippedResubmit = "skipped: one-shot fault state consumed by first run"

// runServed is path (d): one plain capserved instance, submitted to twice —
// a cache miss, then a resubmission that must be a byte-identical hit for
// cacheable results and a byte-identical recomputation for permanently
// degraded ones. Panic faults skip the resubmission: the one-shot rule is
// consumed by the first (degraded, uncached) run, so the second run is
// legitimately a different, fault-free computation. Transient faults are
// resubmitted: the first run's retries already recovered the fault-free
// bytes, so the second serve must be a cache hit of the same bytes.
func (c Case) runServed(ctx context.Context) (PathResult, PathResult, error) {
	out := PathResult{Name: "served"}
	again := PathResult{Name: "served-again"}

	s := server.New(c.serverConfig(true))
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Shutdown(context.Background())
	}()

	v, err := c.submit(ctx, ts.URL)
	if err != nil {
		return out, again, err
	}
	fill(&out, v)

	if c.Fault != nil && c.Fault.Kind == faults.Panic {
		again.Err = skippedResubmit
		return out, again, nil
	}
	v2, err := c.submit(ctx, ts.URL)
	if err != nil {
		return out, again, err
	}
	fill(&again, v2)
	st := s.CacheStats()
	again.CacheHit = st.Hits > 0
	return out, again, nil
}

// jobView is the subset of the served job envelope the harness reads.
type jobView struct {
	State  string          `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// submit posts the case to base and returns the terminal job view.
func (c Case) submit(ctx context.Context, base string) (jobView, error) {
	var v jobView
	body, err := c.body()
	if err != nil {
		return v, fmt.Errorf("diffcheck: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/"+c.Kind+"?wait=true", bytes.NewReader(body))
	if err != nil {
		return v, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return v, fmt.Errorf("diffcheck: submit %s: %w", c.Kind, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, fmt.Errorf("diffcheck: decode job view (HTTP %d): %w", resp.StatusCode, err)
	}
	return v, nil
}

// fill maps a job view into a PathResult. The job envelope re-indents the
// embedded result, so the bytes are compacted back before comparison —
// indentation is presentation; field order and float formatting are
// preserved verbatim by json.RawMessage and stay comparable.
func fill(out *PathResult, v jobView) {
	switch v.State {
	case "done":
		var buf bytes.Buffer
		if err := json.Compact(&buf, v.Result); err != nil {
			out.Err = "compact result: " + err.Error()
			return
		}
		out.JSON = buf.Bytes()
		out.Degraded, out.FailedPools = degradedOf(out.JSON)
	default:
		out.Err = v.Error
		if out.Err == "" {
			out.Err = "job state " + string(v.State)
		}
	}
}

// degradedOf extracts the degraded flag and failed_pools list from result
// bytes.
func degradedOf(raw []byte) (bool, []string) {
	var v struct {
		Degraded    bool     `json:"degraded"`
		FailedPools []string `json:"failed_pools"`
	}
	_ = json.Unmarshal(raw, &v)
	return v.Degraded, v.FailedPools
}

// compare cross-checks the five path results and returns the first
// divergence, or "".
func (c Case) compare(ctx context.Context, paths []PathResult) string {
	seq, shd, dst, srv, again := paths[0], paths[1], paths[2], paths[3], paths[4]

	degrading := c.Fault != nil && c.Fault.Kind != faults.Transient
	if !degrading {
		// Fault-free, or transient absorbed by retries: every path must
		// succeed with byte-identical results — including the resubmission,
		// which must also be a cache hit.
		for _, p := range paths {
			if p.Err != "" {
				return fmt.Sprintf("%s failed: %s", p.Name, p.Err)
			}
		}
		for _, p := range []PathResult{shd, dst, srv, again} {
			if !bytes.Equal(seq.JSON, p.JSON) {
				return fmt.Sprintf("%s differs from sequential at %s", p.Name, FirstDiff(seq.JSON, p.JSON))
			}
		}
		if !again.CacheHit {
			return "served-again was not a cache hit for a cacheable result"
		}
		return ""
	}

	// Degrading fault (permanent or panic). The sequential path streams one
	// shard, so the fault fails its whole run — that asymmetry is the
	// documented single-stream semantics, and the path is asserted to fail
	// rather than compared byte-wise.
	if seq.Err == "" {
		return "sequential run succeeded despite a degrading fault in its only shard"
	}
	// A fault fails its whole shard, so pools sharing the faulted pool's
	// shard fail with it; the invariant is that every degrading path agrees
	// on the identical set and that the injected pool is in it.
	multi := []PathResult{shd, dst, srv}
	for _, p := range multi {
		if p.Err != "" {
			return fmt.Sprintf("%s failed outright, want degraded result: %s", p.Name, p.Err)
		}
		if !p.Degraded {
			return fmt.Sprintf("%s not marked degraded", p.Name)
		}
		if !contains(p.FailedPools, c.Fault.Pool) {
			return fmt.Sprintf("%s failed_pools = %v, missing injected pool %s", p.Name, p.FailedPools, c.Fault.Pool)
		}
		if !reflect.DeepEqual(p.FailedPools, shd.FailedPools) {
			return fmt.Sprintf("%s failed_pools = %v, sharded path says %v", p.Name, p.FailedPools, shd.FailedPools)
		}
	}
	// The three degrading paths must agree on everything except the failure
	// detail text (a dist shard error carries worker/HTTP context a local
	// goroutine error cannot).
	shdStripped, err := stripFailures(shd.JSON)
	if err != nil {
		return "strip failures: " + err.Error()
	}
	for _, p := range []PathResult{dst, srv} {
		ps, err := stripFailures(p.JSON)
		if err != nil {
			return "strip failures: " + err.Error()
		}
		if !bytes.Equal(shdStripped, ps) {
			return fmt.Sprintf("%s differs from %s (failures stripped) at %s", p.Name, shd.Name, FirstDiff(shdStripped, ps))
		}
	}
	// Permanent faults fire on every attempt, so the uncached resubmission
	// recomputes the identical degraded bytes.
	if c.Fault.Kind == faults.Permanent {
		if again.Err != "" {
			return "served-again failed: " + again.Err
		}
		if again.CacheHit {
			return "degraded result was served from cache"
		}
		if !bytes.Equal(srv.JSON, again.JSON) {
			return "served-again differs from served at " + FirstDiff(srv.JSON, again.JSON)
		}
	}
	// Survivor cross-check (simulate only): the surviving pools must be
	// byte-identical to a fault-free sequential run restricted to them —
	// per-pool seeding means degradation must not perturb survivors.
	if c.Kind == "simulate" {
		ref := c.survivorReference(shd.FailedPools)
		res := ref.runLibrary(ctx, 1)
		if res.Err != "" {
			return "survivor reference run failed: " + res.Err
		}
		var got, want struct {
			Pools json.RawMessage `json:"pools"`
		}
		if err := json.Unmarshal(shd.JSON, &got); err != nil {
			return "unmarshal degraded pools: " + err.Error()
		}
		if err := json.Unmarshal(res.JSON, &want); err != nil {
			return "unmarshal reference pools: " + err.Error()
		}
		if !bytes.Equal(got.Pools, want.Pools) {
			return "degraded survivors differ from fault-free reference at " + FirstDiff(want.Pools, got.Pools)
		}
	}
	return ""
}

// survivorReference is the same case without faults, restricted to the
// pools that survived — the fault's whole shard fails, so the failed set
// can include pools beyond the injected one.
func (c Case) survivorReference(failed []string) Case {
	ref := c
	ref.Fault = nil
	var pools []string
	for _, p := range c.Req.Pools {
		if !contains(failed, p) {
			pools = append(pools, p)
		}
	}
	ref.Req.Pools = pools
	return ref
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// stripFailures removes the failures array (whose error strings legitimately
// differ per path) and re-canonicalizes the JSON for comparison. Go's map
// marshaling sorts keys and re-encodes floats in shortest round-trip form,
// which is stable for values that were produced by encoding/json.
func stripFailures(raw []byte) ([]byte, error) {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, err
	}
	delete(m, "failures")
	return json.Marshal(m)
}

// FirstDiff walks two JSON documents and names the first differing field
// path with both values, for triage. Falls back to a byte-offset report for
// non-JSON input.
func FirstDiff(a, b []byte) string {
	var va, vb any
	ea, eb := json.Unmarshal(a, &va), json.Unmarshal(b, &vb)
	if ea != nil || eb != nil {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		return fmt.Sprintf("byte %d (%q vs %q)", i, clip(a, i), clip(b, i))
	}
	if path, l, r, ok := diffValue("$", va, vb); ok {
		return fmt.Sprintf("%s: %v != %v", path, l, r)
	}
	return "(no JSON difference; bytes differ only in formatting)"
}

func clip(b []byte, at int) string {
	end := at + 20
	if end > len(b) {
		end = len(b)
	}
	if at > len(b) {
		at = len(b)
	}
	return string(b[at:end])
}

// diffValue returns the path and both values of the first difference.
func diffValue(path string, a, b any) (string, any, any, bool) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			return path, typeName(a), typeName(b), true
		}
		keys := make([]string, 0, len(av)+len(bv))
		seen := map[string]bool{}
		for k := range av {
			keys = append(keys, k)
			seen[k] = true
		}
		for k := range bv {
			if !seen[k] {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			l, lok := av[k]
			r, rok := bv[k]
			if !lok {
				return path + "." + k, "(absent)", r, true
			}
			if !rok {
				return path + "." + k, l, "(absent)", true
			}
			if p, dl, dr, diff := diffValue(path+"."+k, l, r); diff {
				return p, dl, dr, true
			}
		}
		return "", nil, nil, false
	case []any:
		bv, ok := b.([]any)
		if !ok {
			return path, typeName(a), typeName(b), true
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			if p, dl, dr, diff := diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); diff {
				return p, dl, dr, true
			}
		}
		if len(av) != len(bv) {
			return path, fmt.Sprintf("len %d", len(av)), fmt.Sprintf("len %d", len(bv)), true
		}
		return "", nil, nil, false
	default:
		if !reflect.DeepEqual(a, b) {
			return path, a, b, true
		}
		return "", nil, nil, false
	}
}

func typeName(v any) string {
	if v == nil {
		return "null"
	}
	return strings.TrimPrefix(fmt.Sprintf("%T", v), "interface ")
}
