// Package breaker implements the per-endpoint circuit breaker capserved
// uses to fast-fail submissions against an endpoint whose jobs keep
// failing: after a run of consecutive failures the breaker opens and
// requests are rejected immediately (HTTP 503 upstream) instead of queuing
// work that is doomed, protecting the worker pool for healthy endpoints.
// After a cool-down the breaker half-opens and lets a single probe through;
// a probe success closes it, a probe failure re-opens it.
package breaker

import (
	"sync"
	"time"
)

// State is a breaker's position.
type State int32

const (
	// Closed passes every request; consecutive failures are counted.
	Closed State = iota
	// Open fast-fails every request until the open interval elapses.
	Open
	// HalfOpen lets one probe request through at a time.
	HalfOpen
)

// String renders the state for metrics labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	}
	return "unknown"
}

// Config parameterizes a Breaker. Zero values take the documented defaults.
type Config struct {
	// Threshold is the consecutive-failure count that opens the breaker;
	// default 5.
	Threshold int
	// OpenFor is how long the breaker stays open before half-opening;
	// default 10 s.
	OpenFor time.Duration
	// Probes is the number of consecutive half-open successes required to
	// close; default 1.
	Probes int
	// Now overrides the clock, for tests.
	Now func() time.Time
	// OnTransition, when set, observes every state change. It is called
	// without the breaker's lock held.
	OnTransition func(from, to State)
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 10 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker, safe for concurrent
// use. Construct with New.
type Breaker struct {
	cfg Config

	mu        sync.Mutex
	state     State
	failures  int  // consecutive failures while closed
	successes int  // consecutive probe successes while half-open
	probing   bool // a half-open probe is in flight
	openedAt  time.Time
}

// New builds a breaker in the Closed state.
func New(cfg Config) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. In the Open state it returns
// false until the open interval elapses, then transitions to HalfOpen and
// admits a single probe; in HalfOpen it admits one probe at a time. Every
// Allow that returns true must be matched by Success, Failure or Release.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var transition func()
	defer func() {
		b.mu.Unlock()
		if transition != nil {
			transition()
		}
	}()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		transition = b.setStateLocked(HalfOpen)
		b.probing = true
		b.successes = 0
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful request.
func (b *Breaker) Success() {
	b.mu.Lock()
	var transition func()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.Probes {
			transition = b.setStateLocked(Closed)
			b.failures = 0
		}
	}
	// A success landing while Open (a request admitted before the breaker
	// opened) is ignored: only probes close the breaker.
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
}

// Failure records a failed request.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var transition func()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			transition = b.setStateLocked(Open)
			b.openedAt = b.cfg.Now()
		}
	case HalfOpen:
		// The probe failed: re-open for a fresh interval.
		b.probing = false
		transition = b.setStateLocked(Open)
		b.openedAt = b.cfg.Now()
	}
	b.mu.Unlock()
	if transition != nil {
		transition()
	}
}

// Release cancels an admitted request without recording an outcome — used
// when the request never ran (queue full, server draining) so a half-open
// probe slot is not leaked.
func (b *Breaker) Release() {
	b.mu.Lock()
	if b.state == HalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// State returns the breaker's current position, advancing Open to HalfOpen
// when the open interval has elapsed is deliberately NOT done here: only
// Allow transitions, so observation never mutates.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long a rejected caller should wait before
// retrying: the time until the breaker half-opens (minimum 1 s), or zero
// when the breaker is not open.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	remain := b.cfg.OpenFor - b.cfg.Now().Sub(b.openedAt)
	if remain < time.Second {
		remain = time.Second
	}
	return remain
}

// setStateLocked transitions the breaker and returns the OnTransition
// callback to invoke after the lock is released (nil when unset).
func (b *Breaker) setStateLocked(to State) func() {
	from := b.state
	b.state = to
	if cb := b.cfg.OnTransition; cb != nil && from != to {
		return func() { cb(from, to) }
	}
	return nil
}
