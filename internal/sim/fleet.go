package sim

import (
	"fmt"

	"headroom/internal/workload"
)

// The named pools reproduce the paper's Table I micro-services plus pool H
// (Figure 15) and pool I (Figure 3). Filler pools shape the fleet-level
// utilisation and availability distributions of Figures 12-14.
//
// Ground-truth response parameters for pools B and D are tuned so that the
// black-box fits recover the paper's published models:
//
//	pool B: cpu = 0.028*rps + 1.37        lat = 4.028e-5*rps^2 - 0.031*rps + 36.68
//	pool D: cpu = 0.0916*rps + 5.006      lat = 4.66e-3*rps^2 - 0.80*rps + 86.50

// PoolB returns the paper's pool B: a query-modification micro-service
// (spelling corrections) processing ~377 RPS/server at the 95th percentile
// of load in DC 1.
func PoolB() PoolConfig {
	return PoolConfig{
		Name:        "B",
		Description: "Modifies incoming requests such as spelling corrections",
		Servers:     map[string]int{"DC 1": 300, "DC 4": 250},
		Response: ResponseParams{
			CPUSlope: 0.028, CPUIntercept: 1.37, CPUNoise: 0.35,
			LatQuad: [3]float64{36.68, -0.031, 4.028e-5}, LatNoise: 0.7,
			NetBytesPerReq: 24000, NetPktsPerReq: 22,
			MemPagesBase: 9000, DiskBytesPerPage: 2400, DiskQueueBase: 0.8,
			ErrorRate: 0.01,
		},
		Traffic: workload.Pattern{BaseRPS: 525000, PeakToTrough: 2.2, PeakHour: 13},
		Mix: workload.Mix{
			{Name: "spell-correct", Weight: 65, CostFactor: 1, DependencyLatencyMs: 3},
			{Name: "rewrite", Weight: 25, CostFactor: 1.6, DependencyLatencyMs: 6},
			{Name: "passthrough", Weight: 10, CostFactor: 0.3},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// PoolD returns the paper's pool D: the in-datacenter traffic-routing
// micro-service used in the 10% reduction experiment, present in six
// datacenters (the Figure 2 counter study).
func PoolD() PoolConfig {
	return PoolConfig{
		Name:        "D",
		Description: "Converts responses from data to formatted web pages; routes traffic within the datacenter",
		Servers: map[string]int{
			"DC 1": 200, "DC 2": 125, "DC 3": 210, "DC 4": 165, "DC 5": 150, "DC 6": 110,
		},
		Response: ResponseParams{
			CPUSlope: 0.0916, CPUIntercept: 5.006, CPUNoise: 0.4,
			LatQuad: [3]float64{86.50, -0.80, 4.66e-3}, LatNoise: 1.1,
			NetBytesPerReq: 46000, NetPktsPerReq: 46,
			MemPagesBase: 14000, DiskBytesPerPage: 2600, DiskQueueBase: 1.2,
			ErrorRate: 0.015,
		},
		DCLatencyDelta: map[string]float64{"DC 4": 7},
		Traffic:        workload.Pattern{BaseRPS: 72500, PeakToTrough: 1.9, PeakHour: 14},
		Mix: workload.Mix{
			{Name: "render", Weight: 70, CostFactor: 1, DependencyLatencyMs: 12},
			{Name: "route", Weight: 30, CostFactor: 0.5, DependencyLatencyMs: 2},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// PoolA returns the paper's pool A: an in-memory store similar to
// MemCached. Its servers run a periodic background log upload whose CPU and
// network spikes contaminate the workload metric — the metric-validation
// case study of §II-A1.
func PoolA() PoolConfig {
	return PoolConfig{
		Name:        "A",
		Description: "In-Memory Storage (similar to MemCached)",
		Servers:     map[string]int{"DC 1": 120, "DC 3": 110},
		Response: ResponseParams{
			CPUSlope: 0.012, CPUIntercept: 2.1, CPUNoise: 0.3,
			LatQuad: [3]float64{2, -0.03, 1.67e-4}, LatNoise: 0.25,
			NetBytesPerReq: 5200, NetPktsPerReq: 9,
			MemPagesBase: 3000, DiskBytesPerPage: 1500, DiskQueueBase: 0.2,
			ErrorRate: 0.004,
			// Hourly log upload (30 ticks at 120 s): +9% CPU for 2 windows.
			BackgroundPeriodTicks: 30, BackgroundDurTicks: 2,
			BackgroundCPU: 9, BackgroundNetBytes: 3.5e8,
		},
		Traffic: workload.Pattern{BaseRPS: 210000, PeakToTrough: 2.4, PeakHour: 13},
		Mix: workload.Mix{
			{Name: "table1-get", Weight: 55, CostFactor: 0.6},
			{Name: "table2-get", Weight: 35, CostFactor: 1.9},
			{Name: "set", Weight: 10, CostFactor: 1.2},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// PoolC returns the paper's pool C: a workflow orchestrator with heavy
// deployment churn (the ~90% availability pool of Figure 15).
func PoolC() PoolConfig {
	return PoolConfig{
		Name:        "C",
		Description: "Orchestrates a workflow of stateless processing modules",
		Servers:     map[string]int{"DC 1": 100, "DC 4": 100},
		Response: ResponseParams{
			CPUSlope: 0.09, CPUIntercept: 4, CPUNoise: 0.6,
			LatQuad: [3]float64{60, -0.3, 3e-3}, LatNoise: 1.4,
			NetBytesPerReq: 30000, NetPktsPerReq: 30,
			MemPagesBase: 11000, DiskBytesPerPage: 2500, DiskQueueBase: 1.0,
			ErrorRate: 0.02,
		},
		Traffic: workload.Pattern{BaseRPS: 52000, PeakToTrough: 2, PeakHour: 14},
		Mix: workload.Mix{
			{Name: "workflow", Weight: 100, CostFactor: 1, DependencyLatencyMs: 25},
		},
		Availability: AvailabilityProfile{
			PlannedDailyFrac: 0.10,
			IncidentProb:     0.04, IncidentFrac: 0.25, IncidentTicks: 40,
		},
	}
}

// PoolE returns the paper's pool E: the split-TCP proxy / CDN / load-
// balancer / authentication tier.
func PoolE() PoolConfig {
	return PoolConfig{
		Name:        "E",
		Description: "Split-TCP proxy, CDN, load balancer, and authentication service (similar to Squid)",
		Servers:     map[string]int{"DC 1": 80, "DC 5": 70},
		Response: ResponseParams{
			CPUSlope: 0.016, CPUIntercept: 3, CPUNoise: 0.5,
			LatQuad: [3]float64{8, -0.0012, 1.1e-6}, LatNoise: 0.4,
			NetBytesPerReq: 92000, NetPktsPerReq: 95,
			MemPagesBase: 2500, DiskBytesPerPage: 1200, DiskQueueBase: 0.3,
			ErrorRate: 0.01,
		},
		Traffic: workload.Pattern{BaseRPS: 700000, PeakToTrough: 2.3, PeakHour: 13},
		Mix: workload.Mix{
			{Name: "proxy", Weight: 80, CostFactor: 1},
			{Name: "auth", Weight: 20, CostFactor: 2.2, DependencyLatencyMs: 5},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// PoolF returns the paper's pool F: in-memory storage with custom
// processing logic.
func PoolF() PoolConfig {
	return PoolConfig{
		Name:        "F",
		Description: "In-Memory storage with custom processing logic",
		Servers:     map[string]int{"DC 3": 90, "DC 7": 60},
		Response: ResponseParams{
			CPUSlope: 0.03, CPUIntercept: 2.6, CPUNoise: 0.4,
			LatQuad: [3]float64{12, -0.006, 9e-6}, LatNoise: 0.5,
			NetBytesPerReq: 15000, NetPktsPerReq: 16,
			MemPagesBase: 6000, DiskBytesPerPage: 2000, DiskQueueBase: 0.5,
			ErrorRate: 0.008,
		},
		Traffic: workload.Pattern{BaseRPS: 90000, PeakToTrough: 2.1, PeakHour: 12},
		Mix: workload.Mix{
			{Name: "lookup", Weight: 75, CostFactor: 1},
			{Name: "transform", Weight: 25, CostFactor: 2.5},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// PoolG returns the paper's pool G: the high-volume, low-latency metrics
// collection system.
func PoolG() PoolConfig {
	return PoolConfig{
		Name:        "G",
		Description: "High volume, low latency, metrics collection system used for automated operational decisions",
		Servers:     map[string]int{"DC 1": 50, "DC 4": 50},
		Response: ResponseParams{
			CPUSlope: 0.004, CPUIntercept: 1.8, CPUNoise: 0.25,
			LatQuad: [3]float64{847, -1.3, 5e-4}, LatNoise: 0.12,
			NetBytesPerReq: 1800, NetPktsPerReq: 3,
			MemPagesBase: 1600, DiskBytesPerPage: 900, DiskQueueBase: 0.15,
			ErrorRate: 0.002,
		},
		Traffic: workload.Pattern{BaseRPS: 400000, PeakToTrough: 1.6, PeakHour: 13},
		Mix: workload.Mix{
			{Name: "ingest", Weight: 95, CostFactor: 1},
			{Name: "query", Weight: 5, CostFactor: 6},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// PoolH returns pool H from Figure 15: a consistently well-managed pool at
// ~98% availability.
func PoolH() PoolConfig {
	return PoolConfig{
		Name:        "H",
		Description: "Well-managed request processing pool (Figure 15 comparison pool)",
		Servers:     map[string]int{"DC 2": 80, "DC 5": 70},
		Response: ResponseParams{
			CPUSlope: 0.05, CPUIntercept: 3.2, CPUNoise: 0.4,
			LatQuad: [3]float64{25, -0.05, 4e-4}, LatNoise: 0.7,
			NetBytesPerReq: 20000, NetPktsPerReq: 21,
			MemPagesBase: 7000, DiskBytesPerPage: 2100, DiskQueueBase: 0.6,
			ErrorRate: 0.01,
		},
		Traffic: workload.Pattern{BaseRPS: 60000, PeakToTrough: 2, PeakHour: 14},
		Mix: workload.Mix{
			{Name: "process", Weight: 100, CostFactor: 1},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// PoolI returns pool I from Figure 3: a pool mixing two hardware
// generations, whose (p5, p95) CPU scatter forms two clusters because the
// newer generation runs the same workload at roughly half the utilisation.
func PoolI() PoolConfig {
	return PoolConfig{
		Name:        "I",
		Description: "Mixed-hardware-generation pool (Figure 3 case study)",
		Servers: map[string]int{
			"DC 1": 60, "DC 3": 50, "DC 4": 40, "DC 5": 40, "DC 7": 30, "DC 8": 20,
		},
		Generations: []Generation{
			{Name: "gen-old", Share: 0.5, CPUFactor: 1},
			{Name: "gen-new", Share: 0.5, CPUFactor: 0.45},
		},
		Response: ResponseParams{
			CPUSlope: 0.055, CPUIntercept: 2.8, CPUNoise: 0.35,
			LatQuad: [3]float64{18, -0.02, 1.5e-4}, LatNoise: 0.5,
			NetBytesPerReq: 18000, NetPktsPerReq: 18,
			MemPagesBase: 6000, DiskBytesPerPage: 2000, DiskQueueBase: 0.5,
			ErrorRate: 0.008,
		},
		Traffic: workload.Pattern{BaseRPS: 160000, PeakToTrough: 2.2, PeakHour: 13},
		Mix: workload.Mix{
			{Name: "serve", Weight: 100, CostFactor: 1},
		},
		Availability: AvailabilityProfile{PlannedDailyFrac: 0.02},
	}
}

// fillerPools shapes the fleet-level distributions: a large idle population
// (p95 CPU <= 15%), a moderate band, repurposed pools (offline off-peak,
// <= 80% availability), deployment-churn pools (~85% availability), and a
// small spiky/busy tail so ~15% of machines see >40% CPU at some point
// while high samples stay rare (Figures 12-14).
func fillerPools() []PoolConfig {
	mk := func(name string, servers map[string]int, slope, intercept, base float64,
		av AvailabilityProfile, spikeProb, spikeAmp float64) PoolConfig {
		return PoolConfig{
			Name:        name,
			Description: "synthetic fleet filler pool",
			Servers:     servers,
			Response: ResponseParams{
				CPUSlope: slope, CPUIntercept: intercept, CPUNoise: 0.5,
				LatQuad: [3]float64{20, -0.01, 1e-4}, LatNoise: 0.6,
				NetBytesPerReq: 12000, NetPktsPerReq: 12,
				MemPagesBase: 5000, DiskBytesPerPage: 1800, DiskQueueBase: 0.4,
				ErrorRate: 0.008, SpikeProb: spikeProb, SpikeAmp: spikeAmp,
			},
			Traffic: workload.Pattern{BaseRPS: base, PeakToTrough: 2.2, PeakHour: 13},
			Mix: workload.Mix{
				{Name: "serve", Weight: 100, CostFactor: 1},
			},
			Availability: av,
		}
	}
	std := AvailabilityProfile{PlannedDailyFrac: 0.02}
	churn := AvailabilityProfile{PlannedDailyFrac: 0.15}
	repurposed := AvailabilityProfile{PlannedDailyFrac: 0.02, RepurposedOffPeakFrac: 0.38}
	lentOut := AvailabilityProfile{PlannedDailyFrac: 0.02, RepurposedOffPeakFrac: 0.43}

	return []PoolConfig{
		// Idle population: p95 CPU ~8-13% (the bulk of Figure 12's CDF).
		mk("L1", map[string]int{"DC 1": 200, "DC 3": 210, "DC 5": 190}, 0.02, 6, 300000, churn, 0, 0),
		mk("L2", map[string]int{"DC 7": 200, "DC 8": 200, "DC 9": 180}, 0.02, 6, 200000, repurposed, 0, 0),
		mk("L3", map[string]int{"DC 6": 200, "DC 8": 200}, 0.02, 6, 130000, lentOut, 0, 0),
		// Moderate band: p95 CPU ~18-26%.
		mk("M1", map[string]int{"DC 1": 240, "DC 4": 230, "DC 6": 230}, 0.085, 8, 160000, churn, 0, 0),
		mk("M2", map[string]int{"DC 2": 220, "DC 5": 220}, 0.085, 8, 200000, lentOut, 0, 0),
		// Spiky population: usually idle but with frequent short spikes, so
		// the p95-CDF grows a 30-100% tail while high samples stay rare.
		mk("S1", map[string]int{"DC 2": 160, "DC 6": 160}, 0.02, 5, 100000, std, 0.08, 45),
		mk("S2", map[string]int{"DC 4": 140, "DC 8": 130}, 0.02, 5, 80000, std, 0.08, 85),
		mk("S3", map[string]int{"DC 3": 125, "DC 7": 125}, 0.02, 5, 80000, churn, 0.08, 65),
		mk("S4", map[string]int{"DC 5": 110, "DC 9": 110}, 0.02, 5, 60000, repurposed, 0.08, 55),
		// Genuinely busy tail (kept small so high CPU samples remain rare).
		mk("U1", map[string]int{"DC 1": 50}, 0.20, 12, 36000, std, 0.02, 25),
		mk("U2", map[string]int{"DC 5": 40}, 0.25, 15, 40000, std, 0.02, 25),
	}
}

// DefaultFleet assembles the full simulated service: the paper's named
// pools A-I plus the filler population, across the nine-region topology.
func DefaultFleet(seed int64) FleetConfig {
	pools := []PoolConfig{
		PoolA(), PoolB(), PoolC(), PoolD(), PoolE(), PoolF(), PoolG(), PoolH(), PoolI(),
	}
	pools = append(pools, fillerPools()...)
	return FleetConfig{
		DCs:               workload.NineRegions(),
		Pools:             pools,
		Tick:              workload.TickDuration,
		WorkloadNoiseFrac: 0.04,
		Seed:              seed,
	}
}

// NamedPool returns the configured pool with the given name from a fleet.
func NamedPool(cfg FleetConfig, name string) (PoolConfig, error) {
	for _, p := range cfg.Pools {
		if p.Name == name {
			return p, nil
		}
	}
	return PoolConfig{}, fmt.Errorf("sim: no pool named %q", name)
}

// TotalServers returns the number of servers in the fleet.
func TotalServers(cfg FleetConfig) int {
	var n int
	for _, p := range cfg.Pools {
		for _, c := range p.Servers {
			n += c
		}
	}
	return n
}
