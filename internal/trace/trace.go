// Package trace defines the record schema produced by the fleet simulator
// and consumed by the capacity-planning pipeline, together with CSV and
// JSON-Lines codecs.
//
// The paper's pipeline ingested 30 PB of performance-counter traces sampled
// with a 100 ns timer and averaged over 120-second windows. Each Record here
// is one such window for one server: the offered workload, the resource
// counters, the QoS observation and the availability state.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Record is one 120-second observation window for one server.
type Record struct {
	// Tick is the window index since the start of the trace.
	Tick int `json:"tick"`
	// DC is the datacenter name.
	DC string `json:"dc"`
	// Pool is the micro-service server pool name.
	Pool string `json:"pool"`
	// Server is the server identifier, unique within a pool+DC.
	Server string `json:"server"`
	// Generation is the hardware generation of the server.
	Generation string `json:"generation"`
	// Online reports whether the server was serving during this window.
	Online bool `json:"online"`

	// RPS is the request rate served by this server in the window.
	RPS float64 `json:"rps"`
	// CPUPct is the mean CPU utilisation percentage (0-100).
	CPUPct float64 `json:"cpu_pct"`
	// LatencyMs is the 95th-percentile request latency in milliseconds.
	LatencyMs float64 `json:"latency_ms"`

	// Secondary resource counters (the paper's Figure 2 set).
	NetBytes  float64 `json:"net_bytes"`
	NetPkts   float64 `json:"net_pkts"`
	MemPages  float64 `json:"mem_pages"`
	DiskQueue float64 `json:"disk_queue"`
	DiskRead  float64 `json:"disk_read"`
	Errors    float64 `json:"errors"`
}

// Header is the CSV column order used by WriteCSV/ReadCSV.
var Header = []string{
	"tick", "dc", "pool", "server", "generation", "online",
	"rps", "cpu_pct", "latency_ms",
	"net_bytes", "net_pkts", "mem_pages", "disk_queue", "disk_read", "errors",
}

// fields renders the record as CSV fields in Header order.
func (r Record) fields() []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []string{
		strconv.Itoa(r.Tick), r.DC, r.Pool, r.Server, r.Generation,
		strconv.FormatBool(r.Online),
		f(r.RPS), f(r.CPUPct), f(r.LatencyMs),
		f(r.NetBytes), f(r.NetPkts), f(r.MemPages), f(r.DiskQueue), f(r.DiskRead), f(r.Errors),
	}
}

// parseRecord decodes CSV fields in Header order.
func parseRecord(fields []string) (Record, error) {
	if len(fields) != len(Header) {
		return Record{}, fmt.Errorf("trace: %d fields, want %d", len(fields), len(Header))
	}
	var r Record
	var err error
	if r.Tick, err = strconv.Atoi(fields[0]); err != nil {
		return Record{}, fmt.Errorf("trace: bad tick %q: %w", fields[0], err)
	}
	r.DC, r.Pool, r.Server, r.Generation = fields[1], fields[2], fields[3], fields[4]
	if r.Online, err = strconv.ParseBool(fields[5]); err != nil {
		return Record{}, fmt.Errorf("trace: bad online %q: %w", fields[5], err)
	}
	nums := []*float64{
		&r.RPS, &r.CPUPct, &r.LatencyMs,
		&r.NetBytes, &r.NetPkts, &r.MemPages, &r.DiskQueue, &r.DiskRead, &r.Errors,
	}
	for i, dst := range nums {
		v, err := strconv.ParseFloat(fields[6+i], 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad %s %q: %w", Header[6+i], fields[6+i], err)
		}
		*dst = v
	}
	return r, nil
}

// CSVWriter streams records as CSV with a header row.
type CSVWriter struct {
	w           *csv.Writer
	wroteHeader bool
}

// NewCSVWriter wraps w in a CSV record writer.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{w: csv.NewWriter(w)}
}

// Write appends one record, emitting the header first if needed.
func (cw *CSVWriter) Write(r Record) error {
	if !cw.wroteHeader {
		if err := cw.w.Write(Header); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		cw.wroteHeader = true
	}
	if err := cw.w.Write(r.fields()); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush flushes buffered output and reports any deferred write error.
func (cw *CSVWriter) Flush() error {
	cw.w.Flush()
	if err := cw.w.Error(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadCSV decodes all records from a CSV stream produced by CSVWriter.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header)
	first, err := cr.Read()
	if errors.Is(err, io.EOF) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(first) == 0 || first[0] != Header[0] {
		return nil, fmt.Errorf("trace: missing header row (got %v)", first)
	}
	var out []Record
	for {
		fields, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read row %d: %w", len(out)+2, err)
		}
		rec, err := parseRecord(fields)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", len(out)+2, err)
		}
		out = append(out, rec)
	}
}

// JSONLWriter streams records as JSON Lines.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter wraps w in a JSONL record writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record as a JSON line.
func (jw *JSONLWriter) Write(r Record) error {
	if err := jw.enc.Encode(r); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// Flush flushes buffered output.
func (jw *JSONLWriter) Flush() error {
	if err := jw.bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadJSONL decodes all records from a JSON Lines stream.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		err := dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: decode line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
