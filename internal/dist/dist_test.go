package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"headroom/internal/breaker"
	"headroom/internal/leakcheck"
)

// TestDistRendezvousStability is the placement contract: removing one peer
// moves only the shards that peer owned (each to its second-ranked peer);
// every other shard keeps both its owner and its fallback order.
func TestDistRendezvousStability(t *testing.T) {
	peers := []string{"http://w1", "http://w2", "http://w3", "http://w4", "http://w5"}
	const removed = "http://w3"
	survivors := make([]string, 0, len(peers)-1)
	for _, p := range peers {
		if p != removed {
			survivors = append(survivors, p)
		}
	}

	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("pool-%02d,pool-%02d", i, i+1)
	}

	moved := 0
	for _, key := range keys {
		before := Rank(key, peers)
		after := Rank(key, survivors)
		if before[0] == removed {
			moved++
			if after[0] != before[1] {
				t.Errorf("key %q: owner %s removed, expected fallback %s, got %s",
					key, removed, before[1], after[0])
			}
			continue
		}
		if after[0] != before[0] {
			t.Errorf("key %q: owner moved %s -> %s though %s was not its owner",
				key, before[0], after[0], removed)
		}
		// The full fallback order is the old order with the removed peer
		// spliced out — nothing else reshuffles.
		want := make([]string, 0, len(before)-1)
		for _, p := range before {
			if p != removed {
				want = append(want, p)
			}
		}
		for i := range want {
			if after[i] != want[i] {
				t.Errorf("key %q: fallback order changed at %d: got %v want %v", key, i, after, want)
				break
			}
		}
	}
	if moved == 0 {
		t.Fatalf("degenerate test: %s owned no keys", removed)
	}
	if moved == len(keys) {
		t.Fatalf("degenerate test: %s owned every key", removed)
	}
	t.Logf("removing %s moved %d/%d keys", removed, moved, len(keys))
}

func TestDistRendezvousOwner(t *testing.T) {
	if got := Owner("k", nil); got != "" {
		t.Errorf("Owner with no peers = %q, want empty", got)
	}
	peers := []string{"http://a", "http://b"}
	if got, want := Owner("k", peers), Rank("k", peers)[0]; got != want {
		t.Errorf("Owner = %q, want top-ranked %q", got, want)
	}
}

// hostMux routes loopback requests by the fake host in the peer URL, so one
// handler emulates a multi-worker fleet.
type hostMux struct {
	mu       sync.Mutex
	handlers map[string]http.HandlerFunc
}

func newHostMux() *hostMux { return &hostMux{handlers: map[string]http.HandlerFunc{}} }

func (m *hostMux) set(host string, h http.HandlerFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[host] = h
}

func (m *hostMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	h := m.handlers[r.URL.Host]
	m.mu.Unlock()
	if h == nil {
		http.Error(w, "no such worker", http.StatusBadGateway)
		return
	}
	h(w, r)
}

func newTestClient(t *testing.T, mux http.Handler, cfg Config) *Client {
	t.Helper()
	if cfg.Token == "" {
		cfg.Token = "secret"
	}
	cfg.Transport = Loopback{Handler: mux}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func okWorker(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "result-from-%s", name)
	}
}

func TestDistDispatchSuccess(t *testing.T) {
	leakcheck.Check(t)
	mux := newHostMux()
	mux.set("w1", okWorker("w1"))
	mux.set("w2", okWorker("w2"))
	c := newTestClient(t, mux, Config{Peers: []string{"http://w1", "http://w2"}})

	sh := Shard{Key: "PoolA", Index: 0, Of: 2, Body: []byte(`{}`)}
	owner := Owner(sh.Key, c.Peers())
	res, err := c.Dispatch(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != owner {
		t.Errorf("worker = %s, want rendezvous owner %s", res.Worker, owner)
	}
	if res.Hedged || res.Attempts != 1 {
		t.Errorf("hedged=%v attempts=%d, want false/1", res.Hedged, res.Attempts)
	}
	wantBody := "result-from-" + owner[len("http://"):]
	if string(res.Body) != wantBody {
		t.Errorf("body = %q, want %q", res.Body, wantBody)
	}
}

func TestDistDispatchSendsHeaders(t *testing.T) {
	leakcheck.Check(t)
	mux := newHostMux()
	var gotToken, gotShard atomic.Value
	mux.set("w1", func(w http.ResponseWriter, r *http.Request) {
		gotToken.Store(r.Header.Get(TokenHeader))
		gotShard.Store(r.Header.Get(ShardHeader))
		w.WriteHeader(http.StatusOK)
	})
	c := newTestClient(t, mux, Config{Peers: []string{"http://w1"}, Token: "tok-123"})
	if _, err := c.Dispatch(context.Background(), Shard{Key: "k", Index: 2, Of: 5}); err != nil {
		t.Fatal(err)
	}
	if got := gotToken.Load(); got != "tok-123" {
		t.Errorf("token header = %v, want tok-123", got)
	}
	if got := gotShard.Load(); got != "2/5" {
		t.Errorf("shard header = %v, want 2/5", got)
	}
}

// TestDistDispatchReroutes: the owner answers 503, so the shard moves to
// the next-ranked worker and still succeeds.
func TestDistDispatchReroutes(t *testing.T) {
	leakcheck.Check(t)
	peers := []string{"http://w1", "http://w2"}
	order := Rank("PoolB", peers)
	mux := newHostMux()
	mux.set(order[0][len("http://"):], func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	})
	mux.set(order[1][len("http://"):], okWorker("backup"))

	var events []EventKind
	var mu sync.Mutex
	c := newTestClient(t, mux, Config{Peers: peers, OnEvent: func(ev Event) {
		mu.Lock()
		events = append(events, ev.Kind)
		mu.Unlock()
	}})

	res, err := c.Dispatch(context.Background(), Shard{Key: "PoolB", Index: 0, Of: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Worker != order[1] {
		t.Errorf("worker = %s, want fallback %s", res.Worker, order[1])
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	var saw bool
	for _, k := range events {
		if k == EventReroute {
			saw = true
		}
	}
	if !saw {
		t.Errorf("no reroute event in %v", events)
	}
}

// TestDistDispatchPermanentFailureNoReroute: a 4xx means the request itself
// is bad; retrying on another worker would waste its time.
func TestDistDispatchPermanentFailureNoReroute(t *testing.T) {
	leakcheck.Check(t)
	mux := newHostMux()
	var backupHits atomic.Int64
	peers := []string{"http://w1", "http://w2"}
	order := Rank("k", peers)
	mux.set(order[0][len("http://"):], func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown pool"}`, http.StatusUnprocessableEntity)
	})
	mux.set(order[1][len("http://"):], func(w http.ResponseWriter, r *http.Request) {
		backupHits.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	c := newTestClient(t, mux, Config{Peers: peers})

	_, err := c.Dispatch(context.Background(), Shard{Key: "k"})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v, want *ShardError", err)
	}
	if se.Transient {
		t.Errorf("4xx marked transient")
	}
	var we *WorkerError
	if !errors.As(err, &we) || we.Status != http.StatusUnprocessableEntity || we.Msg != "unknown pool" {
		t.Errorf("unexpected worker error: %+v", we)
	}
	if n := backupHits.Load(); n != 0 {
		t.Errorf("backup worker hit %d times after permanent failure", n)
	}
}

// TestDistDispatchExhausted: every worker fails transiently, so the shard
// errors out as transient with the last failure attached.
func TestDistDispatchExhausted(t *testing.T) {
	leakcheck.Check(t)
	mux := newHostMux()
	mux.set("w1", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	mux.set("w2", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	c := newTestClient(t, mux, Config{Peers: []string{"http://w1", "http://w2"}})

	_, err := c.Dispatch(context.Background(), Shard{Key: "k", Index: 3})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error = %v, want *ShardError", err)
	}
	if !se.Transient || se.Shard != 3 || se.Attempts != 2 {
		t.Errorf("ShardError = %+v, want transient, shard 3, 2 attempts", se)
	}
}

// TestDistDispatchHedges: the owner stalls past the hedge delay, the hedge
// goes to the fallback and wins, and the slow primary is abandoned.
func TestDistDispatchHedges(t *testing.T) {
	leakcheck.Check(t)
	peers := []string{"http://w1", "http://w2"}
	order := Rank("slow-key", peers)
	release := make(chan struct{})
	mux := newHostMux()
	mux.set(order[0][len("http://"):], func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.set(order[1][len("http://"):], okWorker("hedge"))
	defer close(release)

	var hedgeWins atomic.Int64
	c := newTestClient(t, mux, Config{
		Peers:      peers,
		HedgeAfter: 5 * time.Millisecond,
		OnEvent: func(ev Event) {
			if ev.Kind == EventHedgeWin {
				hedgeWins.Add(1)
			}
		},
	})

	res, err := c.Dispatch(context.Background(), Shard{Key: "slow-key"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || res.Worker != order[1] {
		t.Errorf("result = worker %s hedged %v, want hedge winner %s", res.Worker, res.Hedged, order[1])
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	if hedgeWins.Load() != 1 {
		t.Errorf("hedge_win events = %d, want 1", hedgeWins.Load())
	}
}

// TestDistDispatchBreakerSkips: once a worker's breaker opens, later
// dispatches skip it without spending an attempt.
func TestDistDispatchBreakerSkips(t *testing.T) {
	leakcheck.Check(t)
	peers := []string{"http://w1", "http://w2"}
	order := Rank("br-key", peers)
	badHost := order[0][len("http://"):]
	var badHits atomic.Int64
	mux := newHostMux()
	mux.set(badHost, func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	})
	mux.set(order[1][len("http://"):], okWorker("good"))

	var skips atomic.Int64
	c := newTestClient(t, mux, Config{
		Peers:            peers,
		BreakerThreshold: 1,
		BreakerOpenFor:   time.Hour,
		OnEvent: func(ev Event) {
			if ev.Kind == EventSkip {
				skips.Add(1)
			}
		},
	})

	// First dispatch fails on the owner (opening its breaker) and reroutes.
	if _, err := c.Dispatch(context.Background(), Shard{Key: "br-key"}); err != nil {
		t.Fatal(err)
	}
	if c.BreakerState(order[0]) != breaker.Open {
		t.Fatalf("owner breaker = %v, want Open", c.BreakerState(order[0]))
	}
	// Second dispatch must skip the owner entirely.
	res, err := c.Dispatch(context.Background(), Shard{Key: "br-key"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Worker != order[1] {
		t.Errorf("second dispatch: worker %s attempts %d, want %s/1", res.Worker, res.Attempts, order[1])
	}
	if badHits.Load() != 1 {
		t.Errorf("open-breaker worker was contacted %d times, want 1", badHits.Load())
	}
	if skips.Load() == 0 {
		t.Error("no breaker_skip events recorded")
	}
	open, total := c.OpenBreakers()
	if open != 1 || total != 2 {
		t.Errorf("OpenBreakers = %d/%d, want 1/2", open, total)
	}
}

// TestDistDispatchAllBreakersOpen: with every breaker open, Dispatch fails
// fast and transiently instead of hanging.
func TestDistDispatchAllBreakersOpen(t *testing.T) {
	leakcheck.Check(t)
	mux := newHostMux()
	mux.set("w1", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	})
	c := newTestClient(t, mux, Config{
		Peers:            []string{"http://w1"},
		BreakerThreshold: 1,
		BreakerOpenFor:   time.Hour,
	})
	if _, err := c.Dispatch(context.Background(), Shard{Key: "k"}); err == nil {
		t.Fatal("first dispatch succeeded, want failure")
	}
	_, err := c.Dispatch(context.Background(), Shard{Key: "k"})
	var se *ShardError
	if !errors.As(err, &se) || !se.Transient || se.Attempts != 0 {
		t.Fatalf("error = %v, want transient ShardError with 0 attempts", err)
	}
}

func TestDistDispatchDeadline(t *testing.T) {
	leakcheck.Check(t)
	block := make(chan struct{})
	defer close(block)
	mux := newHostMux()
	mux.set("w1", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	c := newTestClient(t, mux, Config{
		Peers:        []string{"http://w1"},
		ShardTimeout: 20 * time.Millisecond,
		HedgeAfter:   -1,
	})
	_, err := c.Dispatch(context.Background(), Shard{Key: "k"})
	var se *ShardError
	if !errors.As(err, &se) || !se.Transient {
		t.Fatalf("error = %v, want transient ShardError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error does not wrap DeadlineExceeded: %v", err)
	}
}

func TestDistNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"no peers", Config{Token: "t"}},
		{"no token", Config{Peers: []string{"http://w1"}}},
		{"relative peer", Config{Peers: []string{"w1:8080"}, Token: "t"}},
		{"bad scheme", Config{Peers: []string{"ftp://w1"}, Token: "t"}},
		{"blank peers", Config{Peers: []string{"", "  "}, Token: "t"}},
	} {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New succeeded, want error", tc.name)
		}
	}
	c, err := New(Config{Peers: []string{"http://w1/", "http://w1", "http://w2"}, Token: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Peers(); len(got) != 2 || got[0] != "http://w1" || got[1] != "http://w2" {
		t.Errorf("peers = %v, want deduped [http://w1 http://w2]", got)
	}
}

func TestDistEWMA(t *testing.T) {
	var e ewma
	e.observe(100 * time.Millisecond)
	if v, n := e.value(); n != 1 || v != 100*time.Millisecond {
		t.Errorf("after first observe: %v/%d", v, n)
	}
	e.observe(200 * time.Millisecond)
	v, n := e.value()
	if n != 2 {
		t.Errorf("n = %d, want 2", n)
	}
	// alpha 0.2: 0.2*200ms + 0.8*100ms = 120ms
	if v < 119*time.Millisecond || v > 121*time.Millisecond {
		t.Errorf("ewma = %v, want ~120ms", v)
	}
}

// BenchmarkDistDispatchOverhead measures pure coordination cost — placement,
// breaker admission, hedge arming, header assembly — over an in-process
// loopback transport with a trivially fast worker. CI gates on this staying
// in the low-microsecond range.
func BenchmarkDistDispatchOverhead(b *testing.B) {
	mux := newHostMux()
	for _, h := range []string{"w1", "w2", "w3"} {
		mux.set(h, func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ok"))
		})
	}
	c, err := New(Config{
		Peers:     []string{"http://w1", "http://w2", "http://w3"},
		Token:     "bench",
		Transport: Loopback{Handler: mux},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	sh := Shard{Key: "PoolA,PoolB", Index: 0, Of: 1, Body: []byte(`{"days":1}`)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Dispatch(ctx, sh); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDistDispatchSlowLoserNeutral forces a slow loser: the rendezvous
// primary streams a partial body and stalls, the hedge wins, and the
// dispatch cancels the primary mid-read. The cancelled loser must neither
// block nor leak (leakcheck) and must not be charged a breaker failure —
// with Threshold 1, a single misattributed Failure would open an innocent
// worker's breaker. Uses real HTTP servers because the stall happens while
// streaming the response body, which the loopback transport cannot model.
func TestDistDispatchSlowLoserNeutral(t *testing.T) {
	leakcheck.Check(t)

	var slowHost atomic.Value // "host:port" of the rendezvous primary
	slowHost.Store("")
	slowDone := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Host != slowHost.Load().(string) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, "fast-winner")
			return
		}
		defer close(slowDone)
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "partial-")
		w.(http.Flusher).Flush()
		<-r.Context().Done() // stall mid-body until the dispatch cancels us
	})
	s1 := httptest.NewServer(handler)
	defer s1.Close()
	s2 := httptest.NewServer(handler)
	defer s2.Close()

	peers := []string{s1.URL, s2.URL}
	order := Rank("slow-loser", peers)
	slowHost.Store(strings.TrimPrefix(order[0], "http://"))

	var failures atomic.Int64
	c, err := New(Config{
		Peers:            peers,
		Token:            "secret",
		HedgeAfter:       5 * time.Millisecond,
		BreakerThreshold: 1,
		OnEvent: func(ev Event) {
			if ev.Kind == EventFailure {
				failures.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Dispatch(context.Background(), Shard{Key: "slow-loser", Index: 0, Of: 2, Body: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged || res.Worker != order[1] {
		t.Fatalf("result = worker %s hedged %v, want hedge winner %s", res.Worker, res.Hedged, order[1])
	}

	// The loser's attempt goroutine finishes after Dispatch returns; wait for
	// the cancel to reach the stalled handler, then hold the breaker under
	// observation long enough for the loser's accounting to land.
	select {
	case <-slowDone:
	case <-time.After(5 * time.Second):
		t.Fatal("cancel never reached the stalled primary")
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		if st := c.BreakerState(order[0]); st != breaker.Closed {
			t.Fatalf("loser breaker = %v; a dispatch-cancelled attempt was charged as a failure", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := failures.Load(); n != 0 {
		t.Errorf("failure events = %d, want 0 (cancelled loser is neutral)", n)
	}
}
