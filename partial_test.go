package headroom_test

// Chaos tests for partial-failure sharded aggregation: pools drop out of a
// run (via the deterministic fault injector) and the surviving pools must
// aggregate bit-identically to a fault-free run over just those pools.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"headroom"
	"headroom/internal/faults"
	"headroom/internal/leakcheck"
)

// faultedSession builds a partial-results session over the two-pool fleet
// with the given injector wrapped around the simulator source.
func faultedSession(t *testing.T, inj *faults.Injector, shards int, partial bool) *headroom.Session {
	t.Helper()
	var src headroom.Source = headroom.NewSimSource(multiPoolFleet(9), 1)
	if inj != nil {
		src = inj.Source(src)
	}
	s, err := headroom.New(context.Background(),
		headroom.WithSource(src),
		headroom.WithShards(shards),
		headroom.WithPartialResults(partial),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFaultPartialResultsBitIdenticalSurvivors(t *testing.T) {
	// Kill pool B permanently; pool D must survive untouched.
	inj := faults.New(7, faults.Rule{Kind: faults.Permanent, Pools: []string{"B"}, At: []int{0}})
	s := faultedSession(t, inj, 2, true)
	agg, err := s.Simulate(context.Background(), 0)
	var pe *headroom.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if agg == nil {
		t.Fatal("agg = nil, want the surviving shards' aggregate")
	}
	if got := pe.FailedPools(); len(got) != 1 || got[0] != "B" {
		t.Fatalf("FailedPools = %v, want [B]", got)
	}
	if pe.Shards != 2 || len(pe.Failed) != 1 {
		t.Fatalf("partial error = %+v, want 1 of 2 shards failed", pe)
	}

	// The surviving aggregate must be bit-identical to a fault-free run of
	// a fleet containing only the surviving pool: per-pool seeding means a
	// pool's records do not depend on the fleet around it.
	cfg := multiPoolFleet(9)
	cfg.Pools = cfg.Pools[1:] // keep D only
	ref, err := headroom.New(context.Background(), headroom.WithFleet(cfg), headroom.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Simulate(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg.Pools(), want.Pools()) {
		t.Fatalf("surviving pool keys = %v, want %v", agg.Pools(), want.Pools())
	}
	for _, key := range want.Pools() {
		ws, err := want.PoolSeries(key.DC, key.Pool)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := agg.PoolSeries(key.DC, key.Pool)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gs, ws) {
			t.Errorf("%s: degraded-run series differs from fault-free run", key)
		}
	}
}

func TestFaultPartialAllShardsFailed(t *testing.T) {
	inj := faults.New(7, faults.Rule{Kind: faults.Permanent, At: []int{0}})
	s := faultedSession(t, inj, 2, true)
	agg, err := s.Simulate(context.Background(), 0)
	var pe *headroom.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if agg != nil {
		t.Fatal("agg != nil, want nil when every shard failed")
	}
	if len(pe.Failed) != 2 || pe.Shards != 2 {
		t.Fatalf("partial error = %+v, want 2 of 2 shards failed", pe)
	}
}

func TestFaultDefaultModeFailsWhole(t *testing.T) {
	inj := faults.New(7, faults.Rule{Kind: faults.Permanent, Pools: []string{"B"}, At: []int{0}})
	s := faultedSession(t, inj, 2, false)
	agg, err := s.Simulate(context.Background(), 0)
	if err == nil || agg != nil {
		t.Fatalf("Simulate = (%v, %v), want whole-run failure without WithPartialResults", agg, err)
	}
	var pe *headroom.PartialError
	if errors.As(err, &pe) {
		t.Fatalf("err = %v: default mode must not report a partial error", err)
	}
}

func TestFaultPartialPanicIsolatedToShard(t *testing.T) {
	inj := faults.New(7, faults.Rule{Kind: faults.Panic, Pools: []string{"B"}, At: []int{0}})
	s := faultedSession(t, inj, 2, true)
	agg, err := s.Simulate(context.Background(), 0)
	var pe *headroom.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if agg == nil {
		t.Fatal("agg = nil, want surviving shard despite sibling panic")
	}
	if len(pe.Failed) != 1 || !strings.Contains(pe.Failed[0].Err.Error(), "panicked") {
		t.Fatalf("partial error = %+v, want one recovered panic", pe)
	}
	if got := pe.FailedPools(); len(got) != 1 || got[0] != "B" {
		t.Fatalf("FailedPools = %v, want [B]", got)
	}
}

func TestFaultInjectorReplaysIdentically(t *testing.T) {
	// Same seed + rules + drive sequence ⇒ identical degraded outcome.
	run := func() (*headroom.PartialError, *headroom.Aggregator) {
		inj := faults.New(1234,
			faults.Rule{Kind: faults.Permanent, Pools: []string{"B"}, At: []int{3}},
			faults.Rule{Kind: faults.Stall, Prob: 0.01, StallFor: time.Microsecond},
		)
		s := faultedSession(t, inj, 2, true)
		agg, err := s.Simulate(context.Background(), 0)
		var pe *headroom.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *PartialError", err)
		}
		return pe, agg
	}
	pe1, agg1 := run()
	pe2, agg2 := run()
	if !reflect.DeepEqual(pe1.FailedPools(), pe2.FailedPools()) {
		t.Fatalf("replay diverged: %v vs %v", pe1.FailedPools(), pe2.FailedPools())
	}
	if !reflect.DeepEqual(agg1.Pools(), agg2.Pools()) {
		t.Fatal("replay diverged: surviving pool keys differ")
	}
	for _, key := range agg1.Pools() {
		s1, err := agg1.PoolSeries(key.DC, key.Pool)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := agg2.PoolSeries(key.DC, key.Pool)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: replayed series differs", key)
		}
	}
}

// TestChaosShardedCancelMidStreamNoLeak cancels a sharded, stall-injected
// run mid-stream and asserts every shard goroutine unwinds.
func TestChaosShardedCancelMidStreamNoLeak(t *testing.T) {
	leakcheck.Check(t)
	inj := faults.New(7, faults.Rule{Kind: faults.Stall, At: []int{50}, StallFor: time.Minute})
	s := faultedSession(t, inj, 2, true)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	agg, err := s.Simulate(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Simulate = (%v, %v), want context.Canceled", agg, err)
	}
}
