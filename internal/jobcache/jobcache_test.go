package jobcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyDeterministicAndDistinct(t *testing.T) {
	type req struct {
		Days int
		Seed int64
	}
	k1, err := Key("plan", req{Days: 1, Seed: 7})
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	k2, _ := Key("plan", req{Days: 1, Seed: 7})
	if k1 != k2 {
		t.Errorf("identical requests keyed differently: %s vs %s", k1, k2)
	}
	k3, _ := Key("plan", req{Days: 2, Seed: 7})
	if k1 == k3 {
		t.Error("different requests share a key")
	}
	k4, _ := Key("simulate", req{Days: 1, Seed: 7})
	if k1 == k4 {
		t.Error("different endpoints share a key for equal payloads")
	}
}

func TestKeyCanonicalizesMapOrder(t *testing.T) {
	// encoding/json sorts map keys, so insertion order must not matter.
	k1, _ := Key(map[string]int{"a": 1, "b": 2, "c": 3})
	m := map[string]int{}
	for _, kv := range []struct {
		k string
		v int
	}{{"c", 3}, {"b", 2}, {"a", 1}} {
		m[kv.k] = kv.v
	}
	k2, _ := Key(m)
	if k1 != k2 {
		t.Error("map insertion order changed the key")
	}
}

func TestKeyUnencodable(t *testing.T) {
	if _, err := Key(func() {}); err == nil {
		t.Error("Key(func) should fail")
	}
}

func TestDoCachesResult(t *testing.T) {
	c := New(4)
	var calls atomic.Int32
	fn := func() (any, error) { calls.Add(1); return "v", nil }

	v, hit, err := c.Do("k", fn)
	if err != nil || v != "v" || hit {
		t.Fatalf("first Do = %v, hit=%v, err=%v", v, hit, err)
	}
	v, hit, err = c.Do("k", fn)
	if err != nil || v != "v" || !hit {
		t.Fatalf("second Do = %v, hit=%v, err=%v; want cache hit", v, hit, err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(4)
	var calls atomic.Int32
	boom := errors.New("boom")
	fn := func() (any, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do("k", fn)
	if err != nil || v != "ok" || hit {
		t.Fatalf("retry after error = %v, hit=%v, err=%v", v, hit, err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Do("a", func() (any, error) { return 1, nil })
	c.Do("b", func() (any, error) { return 2, nil })
	c.Do("a", func() (any, error) { t.Error("a recomputed"); return nil, nil }) // touch a
	c.Do("c", func() (any, error) { return 3, nil })                            // evicts b

	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestSingleFlightDedup(t *testing.T) {
	c := New(4)
	var calls atomic.Int32
	gate := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	results := make([]any, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do("k", func() (any, error) {
				calls.Add(1)
				<-gate
				return "shared", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	// Let every goroutine reach Do before releasing the one computation.
	for c.Stats().Shared+c.Stats().Misses < n {
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under concurrency, want 1", n)
	}
	var leaders int
	for i := range results {
		if results[i] != "shared" {
			t.Errorf("result[%d] = %v", i, results[i])
		}
		if !hits[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want exactly 1", leaders)
	}
	if s := c.Stats(); s.Shared != n-1 {
		t.Errorf("shared = %d, want %d", s.Shared, n-1)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New(0) // clamped to 1
	c.Do("a", func() (any, error) { return 1, nil })
	c.Do("b", func() (any, error) { return 2, nil })
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%12)
				v, _, err := c.Do(key, func() (any, error) { return key, nil })
				if err != nil || v != key {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}
