package measure

import (
	"math"
	"math/rand"
	"testing"

	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/stats"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

// cleanSeries builds pool aggregates following a clean linear CPU response.
func cleanSeries(n int, slope, intercept, noise float64, seed int64) []metrics.TickStat {
	rng := rand.New(rand.NewSource(seed))
	out := make([]metrics.TickStat, n)
	for i := range out {
		rps := 100 + 300*rng.Float64()
		out[i] = metrics.TickStat{
			Tick:         i,
			Servers:      10,
			TotalRPS:     rps * 10,
			RPSPerServer: rps,
			CPUMean:      slope*rps + intercept + noise*rng.NormFloat64(),
			LatencyMean:  30 + 0.001*rps*rps/100,
			NetBytes:     24000 * rps * (1 + 0.08*rng.NormFloat64()),
			NetPkts:      22 * rps * (1 + 0.08*rng.NormFloat64()),
			MemPages:     9000 * rng.Float64(),
			DiskQueue:    0.8 * rng.ExpFloat64(),
			DiskRead:     9000 * rng.Float64() * 2400,
			Errors:       0,
		}
	}
	return out
}

func TestValidateWorkloadMetricCleanPool(t *testing.T) {
	series := cleanSeries(300, 0.028, 1.37, 0.3, 1)
	rep, err := ValidateWorkloadMetric(series, 0)
	if err != nil {
		t.Fatalf("ValidateWorkloadMetric: %v", err)
	}
	if !rep.Valid {
		t.Error("clean pool should validate")
	}
	if rep.LimitingResource != "cpu" {
		t.Errorf("limiting resource = %q, want cpu", rep.LimitingResource)
	}
	cpu, err := rep.Counter("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if !cpu.Linear || cpu.Fit.R2 < 0.95 {
		t.Errorf("cpu correlation = %+v, want tight linear", cpu)
	}
	// Network counters correlate too but with more variance; paging should
	// NOT be linear (it is background noise).
	mem, err := rep.Counter("mem_pages")
	if err != nil {
		t.Fatal(err)
	}
	if mem.Linear {
		t.Errorf("mem_pages should not be linear, R2 = %v", mem.Fit.R2)
	}
	if _, err := rep.Counter("nope"); err == nil {
		t.Error("unknown counter should error")
	}
	if rep.Windows != 300 {
		t.Errorf("Windows = %d, want 300", rep.Windows)
	}
}

func TestValidateWorkloadMetricErrors(t *testing.T) {
	if _, err := ValidateWorkloadMetric(nil, 0); err == nil {
		t.Error("empty series should error")
	}
	if _, err := ValidateWorkloadMetric(cleanSeries(2, 1, 0, 0, 1), 0); err == nil {
		t.Error("two windows should error")
	}
}

func TestRefineByOutlierRemoval(t *testing.T) {
	// Contaminate 20% of windows with background CPU (the log-upload
	// pattern): validation fails, refinement recovers it.
	series := cleanSeries(300, 0.028, 1.37, 0.25, 2)
	rng := rand.New(rand.NewSource(3))
	for i := range series {
		if rng.Float64() < 0.2 {
			series[i].CPUMean += 8 + 4*rng.Float64()
		}
	}
	before, err := ValidateWorkloadMetric(series, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cpuBefore, _ := before.Counter("cpu")
	if cpuBefore.Linear {
		t.Skip("contamination did not break linearity at this seed; strengthen")
	}
	res, err := RefineByOutlierRemoval(series, 0)
	if err != nil {
		t.Fatalf("RefineByOutlierRemoval: %v", err)
	}
	if res.Removed < 30 || res.Removed > 90 {
		t.Errorf("removed %d windows, want ~60", res.Removed)
	}
	if res.After <= res.Before {
		t.Errorf("R2 did not improve: %v -> %v", res.Before, res.After)
	}
	if res.After < 0.95 {
		t.Errorf("refined R2 = %v, want >= 0.95", res.After)
	}
}

func TestRefineErrors(t *testing.T) {
	if _, err := RefineByOutlierRemoval(cleanSeries(5, 1, 0, 0, 1), 0); err == nil {
		t.Error("too few windows should error")
	}
}

func TestGroupServersTwoGenerations(t *testing.T) {
	// Simulate pool I (two hardware generations) and check grouping finds
	// both clusters.
	cfg := sim.FleetConfig{
		DCs:   workload.NineRegions(),
		Pools: []sim.PoolConfig{sim.PoolI()},
		Seed:  5,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	if err := s.Run(s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	sums, err := agg.ServerSummaries("DC 1", "I")
	if err != nil {
		t.Fatal(err)
	}
	g, err := GroupServers(sums, 4, 0.6, 7)
	if err != nil {
		t.Fatalf("GroupServers: %v", err)
	}
	if len(g.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(g.Groups))
	}
	// Groups are ordered by p95 centroid: the first must be the newer
	// (cooler) generation.
	if g.Groups[0].P95Centroid >= g.Groups[1].P95Centroid {
		t.Error("groups not ordered by centroid")
	}
	if g.Silhouette < 0.6 {
		t.Errorf("silhouette = %v, want >= 0.6", g.Silhouette)
	}
	total := len(g.Groups[0].Servers) + len(g.Groups[1].Servers)
	if total != 60 {
		t.Errorf("grouped servers = %d, want 60", total)
	}
}

func TestGroupServersSingleGeneration(t *testing.T) {
	cfg := sim.FleetConfig{
		DCs:   workload.NineRegions(),
		Pools: []sim.PoolConfig{sim.PoolB()},
		Seed:  6,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	if err := s.Run(s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	sums, err := agg.ServerSummaries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	g, err := GroupServers(sums, 4, 0.6, 8)
	if err != nil {
		t.Fatalf("GroupServers: %v", err)
	}
	if len(g.Groups) != 1 {
		t.Errorf("groups = %d, want 1 for a homogeneous pool", len(g.Groups))
	}
}

func TestGroupServersErrors(t *testing.T) {
	if _, err := GroupServers(nil, 3, 0.4, 1); err == nil {
		t.Error("no summaries should error")
	}
	offline := []metrics.ServerSummary{{Server: "s1"}} // CPU.N == 0
	if _, err := GroupServers(offline, 3, 0.4, 1); err == nil {
		t.Error("all-offline pool should error")
	}
}

func TestTrainGroupClassifier(t *testing.T) {
	// Build labelled examples: predictable pools have tight CPU bands,
	// unpredictable ones have wide noisy bands.
	rng := rand.New(rand.NewSource(9))
	var examples []PoolExample
	mkSummary := func(tight bool) metrics.ServerSummary {
		base := 5 + rng.Float64()*8
		spread := 2 + rng.Float64()*3
		if !tight {
			spread = 14 + rng.Float64()*25
		}
		cpu := stats.Summary{
			N: 100, P5: base, P25: base + 0.25*spread, P50: base + 0.5*spread,
			P75: base + 0.75*spread, P95: base + spread,
		}
		return metrics.ServerSummary{
			Server: "s", CPU: cpu,
			Slope: spread / 90, Intercept: base, R2: 0.99,
		}
	}
	for i := 0; i < 250; i++ {
		examples = append(examples, BuildExamples([]metrics.ServerSummary{mkSummary(true)}, true)...)
		examples = append(examples, BuildExamples([]metrics.ServerSummary{mkSummary(false)}, false)...)
	}
	res, err := TrainGroupClassifier(examples, 5, 10, 11)
	if err != nil {
		t.Fatalf("TrainGroupClassifier: %v", err)
	}
	// In the spirit of the paper's AUC = 0.9804.
	if res.CV.AUC < 0.95 {
		t.Errorf("AUC = %v, want >= 0.95", res.CV.AUC)
	}
	if res.CV.Accuracy < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", res.CV.Accuracy)
	}
	if res.Splits < 1 {
		t.Error("tree should have splits")
	}
	if res.Examples != len(examples) {
		t.Errorf("Examples = %d, want %d", res.Examples, len(examples))
	}
	// Spot prediction.
	p, err := res.Tree.Predict(mkSummary(true).FeatureVector())
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.5 {
		t.Errorf("tight server scored %v, want >= 0.5", p)
	}
}

func TestTrainGroupClassifierErrors(t *testing.T) {
	if _, err := TrainGroupClassifier(nil, 5, 10, 1); err == nil {
		t.Error("no examples should error")
	}
}

func TestBuildExamplesSkipsOffline(t *testing.T) {
	sums := []metrics.ServerSummary{
		{Server: "on", CPU: stats.Summary{N: 5, P5: 1, P95: 2}},
		{Server: "off"}, // never online
	}
	ex := BuildExamples(sums, true)
	if len(ex) != 1 {
		t.Errorf("examples = %d, want 1", len(ex))
	}
	if !ex[0].Predictable || len(ex[0].Features) != 8 {
		t.Errorf("example = %+v", ex[0])
	}
}

func TestValidationReportPearsonSign(t *testing.T) {
	series := cleanSeries(100, 0.05, 2, 0.1, 12)
	rep, err := ValidateWorkloadMetric(series, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := rep.Counter("cpu")
	if math.IsNaN(cpu.Pearson) || cpu.Pearson < 0.9 {
		t.Errorf("cpu Pearson = %v, want strongly positive", cpu.Pearson)
	}
}
