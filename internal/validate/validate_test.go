package validate

import (
	"context"
	"testing"

	"headroom/internal/sim"
)

// memLeakFixWithLatencyBug is the paper's §III-C case study: a change that
// fixes a memory leak (paging drops) but introduces a design flaw that
// inflates latency under high workload.
func memLeakFixWithLatencyBug(rp sim.ResponseParams) sim.ResponseParams {
	rp.MemPagesBase *= 0.3 // leak fixed: far less paging
	rp.LatQuad[2] *= 2.2   // new flaw: latency blows up under load
	return rp
}

// cleanImprovement fixes the leak without side effects.
func cleanImprovement(rp sim.ResponseParams) sim.ResponseParams {
	rp.MemPagesBase *= 0.3
	return rp
}

func defaultCfg(seed int64) Config {
	return Config{
		Pool:          sim.PoolB(),
		Servers:       20,
		Loads:         []float64{100, 200, 300, 400, 500, 600},
		TicksPerLevel: 25,
		Seed:          seed,
	}
}

func TestRunCatchesLatencyRegression(t *testing.T) {
	rep, err := Run(context.Background(), defaultCfg(1), Change{Name: "fix-leak-v1", Apply: memLeakFixWithLatencyBug})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.MemoryImproved {
		t.Error("memory fix should show as improved paging")
	}
	if !rep.LatencyRegression {
		t.Error("latency regression should be detected")
	}
	if rep.Acceptable {
		t.Error("change must be rejected")
	}
	// The regression appears under HIGH load, not at the low end —
	// exactly why production monitoring at normal load missed it.
	if rep.FirstRegressionLoad < 300 {
		t.Errorf("first regression at %v RPS/server, want high-load onset", rep.FirstRegressionLoad)
	}
	if len(rep.Levels) != 6 {
		t.Fatalf("levels = %d, want 6", len(rep.Levels))
	}
	// Level curves: change latency must exceed baseline at the top level.
	top := rep.Levels[len(rep.Levels)-1]
	if top.ChangeLatency.Mean <= top.BaselineLatency.Mean+2 {
		t.Errorf("top-level latency %v vs baseline %v, want clear regression",
			top.ChangeLatency.Mean, top.BaselineLatency.Mean)
	}
}

func TestRunAcceptsCleanChange(t *testing.T) {
	rep, err := Run(context.Background(), defaultCfg(2), Change{Name: "fix-leak-v2", Apply: cleanImprovement})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.MemoryImproved {
		t.Error("paging should improve")
	}
	if rep.LatencyRegression {
		t.Error("no latency regression expected")
	}
	if !rep.Acceptable {
		t.Error("clean change should be acceptable")
	}
	if rep.CapacityImpactFrac > 0.05 || rep.CapacityImpactFrac < -0.05 {
		t.Errorf("capacity impact = %v, want ~0", rep.CapacityImpactFrac)
	}
}

func TestRunDetectsCapacityIncrease(t *testing.T) {
	costly := func(rp sim.ResponseParams) sim.ResponseParams {
		rp.CPUSlope *= 1.3 // feature needs 30% more CPU per request
		return rp
	}
	rep, err := Run(context.Background(), defaultCfg(3), Change{Name: "heavy-feature", Apply: costly})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.CapacityImpactFrac < 0.2 {
		t.Errorf("capacity impact = %v, want ~0.3", rep.CapacityImpactFrac)
	}
	if rep.Acceptable {
		t.Error("capacity-expensive change must be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	cfg := defaultCfg(4)
	if _, err := Run(context.Background(), cfg, Change{Name: "nil"}); err == nil {
		t.Error("nil Apply should error")
	}
	bad := cfg
	bad.Servers = 0
	if _, err := Run(context.Background(), bad, Change{Name: "x", Apply: cleanImprovement}); err == nil {
		t.Error("zero servers should error")
	}
	bad = cfg
	bad.Loads = []float64{100}
	if _, err := Run(context.Background(), bad, Change{Name: "x", Apply: cleanImprovement}); err == nil {
		t.Error("single load should error")
	}
	bad = cfg
	bad.Loads = []float64{200, 100}
	if _, err := Run(context.Background(), bad, Change{Name: "x", Apply: cleanImprovement}); err == nil {
		t.Error("non-ascending loads should error")
	}
	invalid := func(rp sim.ResponseParams) sim.ResponseParams {
		rp.CPUSlope = -1
		return rp
	}
	if _, err := Run(context.Background(), cfg, Change{Name: "bad", Apply: invalid}); err == nil {
		t.Error("invalid changed response should error")
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(context.Background(), defaultCfg(5), Change{Name: "v", Apply: cleanImprovement})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), defaultCfg(5), Change{Name: "v", Apply: cleanImprovement})
	if err != nil {
		t.Fatal(err)
	}
	if a.CapacityImpactFrac != b.CapacityImpactFrac {
		t.Error("same seed should reproduce identical reports")
	}
	for i := range a.Levels {
		if a.Levels[i].ChangeLatency.Mean != b.Levels[i].ChangeLatency.Mean {
			t.Fatal("level results differ across identical seeds")
		}
	}
}
