package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/signal"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServer launches run() with an ephemeral port and returns the base
// URL plus the channel run's error will arrive on.
func startServer(t *testing.T, ctx context.Context, extra ...string) (string, chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "2m"}, extra...)
	go func() { done <- run(ctx, args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), done
	case err := <-done:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never bound")
	}
	panic("unreachable")
}

type jobView struct {
	JobID  string          `json:"job_id"`
	State  string          `json:"state"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
	Self   string          `json:"self"`
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// pollJob polls the job URL until the job is terminal.
func pollJob(t *testing.T, base, self string) jobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := get(t, base+self)
		if code != http.StatusOK {
			t.Fatalf("poll %s = %d: %s", self, code, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("unmarshal job: %v", err)
		}
		if v.State == "done" || v.State == "failed" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", self, v.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in exposition", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return v
}

// TestCapservedEndToEnd is the acceptance test: ephemeral port, two
// identical plan jobs with the second a byte-identical cache hit, then
// SIGTERM drains an in-flight job and the server exits cleanly (run
// returning nil is main exiting 0).
func TestCapservedEndToEnd(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	base, done := startServer(t, ctx)

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}

	// Two identical plan jobs, submitted async and polled by ID.
	const planReq = `{"pools":["B"],"days":1,"seed":11}`
	code, body = post(t, base+"/v1/plan", planReq)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", code, body)
	}
	var env jobView
	json.Unmarshal(body, &env)
	first := pollJob(t, base, env.Self)
	if first.State != "done" {
		t.Fatalf("first job failed: %s", first.Error)
	}

	code, body = post(t, base+"/v1/plan", planReq)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d: %s", code, body)
	}
	json.Unmarshal(body, &env)
	second := pollJob(t, base, env.Self)
	if second.State != "done" {
		t.Fatalf("second job failed: %s", second.Error)
	}
	if second.JobID == first.JobID {
		t.Error("second submission reused the first job ID")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Errorf("cached result not byte-identical:\nfirst:  %s\nsecond: %s",
			first.Result, second.Result)
	}

	_, metricsBody := get(t, base+"/metrics")
	text := string(metricsBody)
	if hits := metricValue(t, text, "capserved_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}
	if misses := metricValue(t, text, "capserved_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %v, want 1", misses)
	}

	// Leave a fresh (uncached) plan job in flight, then SIGTERM: the drain
	// must finish the job and run must return nil — the exit-0 path.
	code, body = post(t, base+"/v1/plan", `{"pools":["B"],"days":1,"seed":99}`)
	if code != http.StatusAccepted {
		t.Fatalf("in-flight submit = %d: %s", code, body)
	}
	json.Unmarshal(body, &env)
	inflightID := env.JobID

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("send SIGTERM: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil (exit 0)", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	// run returning nil proves queue.Close drained the in-flight job
	// within the window rather than abandoning it.
	t.Logf("drained with job %s in flight", inflightID)
}

func TestCapservedRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-workers", "-1"},
		{"-queue", "-2"},
		{"-cache", "0"},
		{"-job-timeout", "-5s"},
		{"-drain-timeout", "0s"},
		{"-shards", "-1"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(context.Background(), args, nil); err == nil {
				t.Errorf("run(%v) succeeded, want usage error", args)
			}
		})
	}
}
