package metrics

// Wire codec for Aggregator: the serialization that lets a shard be
// aggregated on one machine and merged on another (internal/dist). The
// format is binary and exact — float64 values travel as their IEEE-754 bit
// patterns — so a decoded aggregator is indistinguishable from the original
// and distributed merges stay bit-identical to single-process runs. The
// encoding is also deterministic (pools sorted by key, ticks by index,
// servers by name), so equal aggregators encode to equal bytes.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// wireVersion guards against decoding a payload produced by an incompatible
// build; bump it whenever the accumulator layout changes.
const wireVersion = 1

// wireMagic distinguishes aggregator payloads from arbitrary bytes early.
var wireMagic = [4]byte{'H', 'A', 'G', 'G'}

// MarshalBinary serializes the aggregator's full accumulated state.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	keys := a.Pools() // sorted: deterministic encoding
	buf := make([]byte, 0, 1024)
	buf = append(buf, wireMagic[:]...)
	buf = appendUint32(buf, wireVersion)
	buf = appendUint32(buf, uint32(len(keys)))
	for _, key := range keys {
		p := a.pools[key]
		buf = appendString(buf, key.DC)
		buf = appendString(buf, key.Pool)

		ticks := make([]int, 0, len(p.ticks))
		for tick := range p.ticks {
			ticks = append(ticks, tick)
		}
		sort.Ints(ticks)
		buf = appendUint32(buf, uint32(len(ticks)))
		for _, tick := range ticks {
			t := p.ticks[tick]
			buf = appendUint32(buf, uint32(tick))
			buf = appendUint32(buf, uint32(t.servers))
			for _, v := range []float64{t.rps, t.cpu, t.latency, t.netBytes,
				t.netPkts, t.memPages, t.diskQueue, t.diskRead, t.errs} {
				buf = appendFloat(buf, v)
			}
		}

		names := make([]string, 0, len(p.servers))
		for name := range p.servers {
			names = append(names, name)
		}
		sort.Strings(names)
		buf = appendUint32(buf, uint32(len(names)))
		for _, name := range names {
			s := p.servers[name]
			buf = appendString(buf, name)
			buf = appendString(buf, s.generation)
			buf = appendUint32(buf, uint32(s.online))
			buf = appendUint32(buf, uint32(s.windows))
			// The cpu slice keeps its append order: percentile summaries are
			// computed over a sorted copy, but preserving order keeps the
			// decoded accumulator byte-for-byte equal to the original.
			buf = appendUint32(buf, uint32(len(s.cpu)))
			for _, v := range s.cpu {
				buf = appendFloat(buf, v)
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded payload.
// It works on a zero Aggregator as well as one built with NewAggregator.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	d := &wireDecoder{buf: data}
	var magic [4]byte
	copy(magic[:], d.bytes(4))
	if magic != wireMagic {
		return fmt.Errorf("metrics: not an aggregator payload (bad magic)")
	}
	if v := d.uint32(); v != wireVersion {
		return fmt.Errorf("metrics: aggregator wire version %d, want %d", v, wireVersion)
	}
	npools := int(d.uint32())
	pools := make(map[PoolKey]*poolAcc, npools)
	for i := 0; i < npools && d.err == nil; i++ {
		key := PoolKey{DC: d.string(), Pool: d.string()}
		p := &poolAcc{ticks: make(map[int]*tickAcc), servers: make(map[string]*serverAcc)}

		nticks := int(d.uint32())
		for j := 0; j < nticks && d.err == nil; j++ {
			tick := int(d.uint32())
			t := &tickAcc{servers: int(d.uint32())}
			t.rps = d.float()
			t.cpu = d.float()
			t.latency = d.float()
			t.netBytes = d.float()
			t.netPkts = d.float()
			t.memPages = d.float()
			t.diskQueue = d.float()
			t.diskRead = d.float()
			t.errs = d.float()
			p.ticks[tick] = t
		}

		nservers := int(d.uint32())
		for j := 0; j < nservers && d.err == nil; j++ {
			name := d.string()
			s := &serverAcc{generation: d.string()}
			s.online = int(d.uint32())
			s.windows = int(d.uint32())
			ncpu := int(d.uint32())
			if d.err == nil && ncpu > 0 {
				if ncpu > d.remaining()/8 {
					d.err = fmt.Errorf("metrics: truncated aggregator payload (cpu run of %d)", ncpu)
					break
				}
				s.cpu = make([]float64, ncpu)
				for k := range s.cpu {
					s.cpu[k] = d.float()
				}
			}
			p.servers[name] = s
		}
		pools[key] = p
	}
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("metrics: %d trailing bytes after aggregator payload", d.remaining())
	}
	a.pools = pools
	return nil
}

// --- primitive encoding ---------------------------------------------------

func appendUint32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendString(buf []byte, s string) []byte {
	buf = appendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// wireDecoder reads the primitives back, latching the first error so the
// decode loops stay linear instead of error-checking every field.
type wireDecoder struct {
	buf []byte
	off int
	err error
}

func (d *wireDecoder) remaining() int { return len(d.buf) - d.off }

func (d *wireDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.err = fmt.Errorf("metrics: truncated aggregator payload (want %d bytes, have %d)", n, d.remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *wireDecoder) uint32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireDecoder) float() float64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *wireDecoder) string() string {
	n := int(d.uint32())
	if d.err == nil && n > d.remaining() {
		d.err = fmt.Errorf("metrics: truncated aggregator payload (string of %d bytes, have %d)", n, d.remaining())
		return ""
	}
	return string(d.bytes(n))
}
