package leakcheck

// Goroutine-stack parsing shared by the leak checker and capserved's
// GET /debug/goroutines endpoint: runtime.Stack's all-goroutine dump is
// split into per-goroutine records with ID, state and blocked-for age, so
// stuck jobs in production can be filtered by how long they have waited.

import (
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Goroutine is one parsed goroutine from a runtime.Stack dump.
type Goroutine struct {
	// ID is the runtime goroutine number.
	ID int64 `json:"id"`
	// State is the scheduler state from the stack header ("running",
	// "chan receive", "IO wait", ...).
	State string `json:"state"`
	// Wait is how long the goroutine has been blocked, when the runtime
	// reports it (minute granularity; zero for < 1 minute or running).
	Wait time.Duration `json:"wait_ns"`
	// Frames are the stack lines (alternating function and file:line), top
	// of stack first.
	Frames []string `json:"frames"`
}

// ParseStacks parses the output of runtime.Stack(buf, true) into one record
// per goroutine. Malformed blocks are skipped rather than failing the dump.
func ParseStacks(buf []byte) []Goroutine {
	var out []Goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		lines := strings.Split(block, "\n")
		g, ok := parseHeader(lines[0])
		if !ok {
			continue
		}
		for _, l := range lines[1:] {
			if l = strings.TrimRight(l, "\r"); l != "" {
				g.Frames = append(g.Frames, strings.TrimPrefix(l, "\t"))
			}
		}
		out = append(out, g)
	}
	return out
}

// parseHeader parses "goroutine 123 [chan receive, 5 minutes]:".
func parseHeader(line string) (Goroutine, bool) {
	rest, ok := strings.CutPrefix(line, "goroutine ")
	if !ok {
		return Goroutine{}, false
	}
	idStr, rest, ok := strings.Cut(rest, " [")
	if !ok {
		return Goroutine{}, false
	}
	id, err := strconv.ParseInt(strings.TrimSpace(idStr), 10, 64)
	if err != nil {
		return Goroutine{}, false
	}
	state, _, ok := strings.Cut(rest, "]")
	if !ok {
		return Goroutine{}, false
	}
	g := Goroutine{ID: id, State: state}
	if st, age, ok := strings.Cut(state, ", "); ok {
		g.State = st
		if mins, ok := strings.CutSuffix(age, " minutes"); ok {
			if m, err := strconv.Atoi(strings.TrimSpace(mins)); err == nil {
				g.Wait = time.Duration(m) * time.Minute
			}
		}
	}
	return g, true
}

// DumpGoroutines captures and parses the current all-goroutine stack dump.
func DumpGoroutines() []Goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return ParseStacks(buf[:n])
		}
		if len(buf) >= 64<<20 {
			return ParseStacks(buf) // give up growing; parse what fits
		}
		buf = make([]byte, 2*len(buf))
	}
}

// summarize renders a by-state count of goroutines, for leak reports:
// "12 total: 8 chan receive, 2 select, 2 running".
func summarize(gs []Goroutine) string {
	counts := map[string]int{}
	var order []string
	for _, g := range gs {
		if counts[g.State] == 0 {
			order = append(order, g.State)
		}
		counts[g.State]++
	}
	var b strings.Builder
	b.WriteString(strconv.Itoa(len(gs)))
	b.WriteString(" total")
	for i, st := range order {
		if i == 0 {
			b.WriteString(": ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(counts[st]))
		b.WriteByte(' ')
		b.WriteString(st)
	}
	return b.String()
}
