package experiments

import (
	"context"
	"fmt"

	"headroom/internal/measure"
	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/stats"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

func nineRegions() []workload.Datacenter { return workload.NineRegions() }

// fleetServerSummaries collects every server summary in the fleet-day.
func fleetServerSummaries(agg *metrics.Aggregator) ([]metrics.ServerSummary, error) {
	var all []metrics.ServerSummary
	for _, key := range agg.Pools() {
		sums, err := agg.ServerSummaries(key.DC, key.Pool)
		if err != nil {
			return nil, err
		}
		all = append(all, sums...)
	}
	return all, nil
}

// Fig12 reproduces the CDF of per-server 95th-percentile CPU over a day.
// Paper: ~60% of servers at p95 <= 15%, ~80% below 30%, global mean ~23%.
func Fig12(ctx context.Context, cfg Config) (*Result, error) {
	agg, err := fleetAggregator(ctx, cfg.Seed, 1)
	if err != nil {
		return nil, err
	}
	sums, err := fleetServerSummaries(agg)
	if err != nil {
		return nil, err
	}
	var p95s, means []float64
	for _, s := range sums {
		if s.CPU.N == 0 {
			continue
		}
		p95s = append(p95s, s.CPU.P95)
		means = append(means, s.CPU.Mean)
	}
	ecdf, err := stats.NewECDF(p95s)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig12",
		Title:  "CDF of per-server p95 CPU utilisation (one day)",
		Header: []string{"p95_cpu_pct", "fraction_of_servers"},
	}
	for _, x := range []float64{5, 10, 15, 20, 25, 30, 40, 50, 60, 70, 80, 90, 100} {
		res.Rows = append(res.Rows, []string{f1(x), f3(ecdf.At(x))})
	}
	res.Metric("servers", float64(len(p95s)))
	res.Metric("frac_p95_le_15 (paper ~0.60)", ecdf.At(15))
	res.Metric("frac_p95_lt_30 (paper ~0.80)", ecdf.At(30))
	res.Metric("global_mean_util_pct (paper 23)", stats.Mean(means))
	res.Notes = append(res.Notes,
		"global mean utilisation runs below the paper's 23% because the paper's own Figures 12/13 bound it; see EXPERIMENTS.md")
	return res, nil
}

// Fig13 reproduces the distribution of individual 120 s CPU samples.
// Paper: only 1% of samples above 25%, fewer than 0.1% above 40%.
func Fig13(ctx context.Context, cfg Config) (*Result, error) {
	// Per-server summaries cannot reconstruct the raw sample distribution,
	// so stream a fleet-day at the sample level with the same seed.
	s, err := sim.New(sim.DefaultFleet(cfg.Seed))
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(nil, 20, 0, 100)
	if err != nil {
		return nil, err
	}
	var total, above25, above40 int
	if err := s.RunContext(ctx, s.TicksPerDay(), func(r trace.Record) error {
		if !r.Online {
			return nil
		}
		total++
		if r.CPUPct > 25 {
			above25++
		}
		if r.CPUPct > 40 {
			above40++
		}
		i := int(r.CPUPct / 5)
		if i >= 20 {
			i = 19
		}
		hist.Bins[i].Count++
		hist.Total++
		return nil
	}); err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig13",
		Title:  "Share of 120 s CPU samples per utilisation bucket (one day)",
		Header: []string{"cpu_bucket", "fraction_of_samples"},
	}
	for _, b := range hist.Bins {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("[%.0f%%,%.0f%%)", b.Lo, b.Hi),
			f3(float64(b.Count) / float64(hist.Total)),
		})
	}
	res.Metric("samples", float64(total))
	res.Metric("frac_above_25 (paper 0.01)", float64(above25)/float64(total))
	res.Metric("frac_above_40 (paper <0.001)", float64(above40)/float64(total))
	res.Notes = append(res.Notes,
		"high samples stay rare and spike-driven; the absolute 1% is not reachable while also matching Figure 12's 20% tail — see EXPERIMENTS.md")
	return res, nil
}

// Fig14 reproduces the distribution of daily server availability.
// Paper: average 83%, most servers >= 80%, modes at 85% and 98%.
func Fig14(ctx context.Context, cfg Config) (*Result, error) {
	agg, err := fleetAggregator(ctx, cfg.Seed, 1)
	if err != nil {
		return nil, err
	}
	sums, err := fleetServerSummaries(agg)
	if err != nil {
		return nil, err
	}
	var avs []float64
	for _, s := range sums {
		avs = append(avs, s.Availability)
	}
	hist, err := stats.NewHistogram(avs, 20, 0, 1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig14",
		Title:  "Share of servers per daily-availability bucket",
		Header: []string{"availability_bucket", "fraction_of_servers"},
	}
	for _, b := range hist.Bins {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("[%.0f%%,%.0f%%)", b.Lo*100, b.Hi*100),
			f3(float64(b.Count) / float64(hist.Total)),
		})
	}
	res.Metric("mean_availability (paper 0.83)", stats.Mean(avs))
	above80 := 0
	for _, a := range avs {
		if a >= 0.80 {
			above80++
		}
	}
	res.Metric("frac_at_least_80pct_online", float64(above80)/float64(len(avs)))
	return res, nil
}

// Fig15 reproduces the daily availability time series of pools C, D and H
// over 14 days. Paper: D and H consistently ~98%, C ~90%, with occasional
// pool-wide incident days.
func Fig15(ctx context.Context, cfg Config) (*Result, error) {
	days := 14
	if cfg.Fast {
		days = 4
	}
	pools := []sim.PoolConfig{sim.PoolC(), sim.PoolD(), sim.PoolH()}
	fleet := sim.FleetConfig{
		DCs:               nineRegions(),
		Pools:             pools,
		WorkloadNoiseFrac: 0.03,
		Seed:              cfg.Seed,
	}
	s, err := sim.New(fleet)
	if err != nil {
		return nil, err
	}
	agg := metrics.NewAggregator()
	if err := s.RunContext(ctx, days*s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		return nil, err
	}
	series := map[string][]float64{}
	for _, pc := range pools {
		// Aggregate the pool's availability across its datacenters
		// (server-weighted mean of per-DC daily availability).
		var combined []float64
		var weight float64
		for dc, n := range pc.Servers {
			av, err := agg.PoolAvailability(dc, pc.Name, s.TicksPerDay())
			if err != nil {
				return nil, err
			}
			if combined == nil {
				combined = make([]float64, len(av))
			}
			for d := range av {
				combined[d] += av[d] * float64(n)
			}
			weight += float64(n)
		}
		for d := range combined {
			combined[d] /= weight
		}
		series[pc.Name] = combined
	}
	res := &Result{
		ID:     "fig15",
		Title:  "Daily pool availability (percent online)",
		Header: []string{"day", "pool_C", "pool_D", "pool_H"},
	}
	for d := 0; d < days; d++ {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", d),
			pct(series["C"][d]), pct(series["D"][d]), pct(series["H"][d]),
		})
	}
	res.Metric("mean_C (paper ~0.90)", stats.Mean(series["C"]))
	res.Metric("mean_D (paper ~0.98)", stats.Mean(series["D"]))
	res.Metric("mean_H (paper ~0.98)", stats.Mean(series["H"]))
	return res, nil
}

// Fig3 reproduces the (p5, p95) CPU scatter of pool I whose servers span
// two hardware generations, and the automated grouping that separates them.
func Fig3(ctx context.Context, cfg Config) (*Result, error) {
	agg, err := poolAggregator(ctx, sim.PoolI(), cfg.Seed, 720)
	if err != nil {
		return nil, err
	}
	perDC, err := agg.MergedServerSummaries("I")
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig3",
		Title:  "Per-server p5 vs p95 CPU, pool I (shapes are datacenters)",
		Header: []string{"dc", "server", "generation", "p5_cpu", "p95_cpu"},
	}
	var all []metrics.ServerSummary
	for dc, sums := range perDC {
		for i, s := range sums {
			all = append(all, s)
			if i < 8 { // sample rows per DC keep the figure readable
				res.Rows = append(res.Rows, []string{dc, s.Server, s.Generation, f1(s.CPU.P5), f1(s.CPU.P95)})
			}
		}
	}
	grouping, err := measure.GroupServers(all, 4, 0.6, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res.Metric("servers", float64(len(all)))
	res.Metric("groups_found (paper: 2 clusters)", float64(len(grouping.Groups)))
	res.Metric("silhouette", grouping.Silhouette)
	if len(grouping.Groups) == 2 {
		res.Metric("cool_cluster_p95_centroid", grouping.Groups[0].P95Centroid)
		res.Metric("hot_cluster_p95_centroid", grouping.Groups[1].P95Centroid)
	}
	res.Notes = append(res.Notes,
		"the lower cluster is the newer, more powerful hardware generation, as the paper's investigation found")
	return res, nil
}

// Fig2 reproduces the six resource-counter-vs-workload panels for
// micro-service D across six datacenters over one day.
func Fig2(ctx context.Context, cfg Config) (*Result, error) {
	agg, err := poolAggregator(ctx, sim.PoolD(), cfg.Seed, 720)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig2",
		Title:  "Counter vs workload linearity per datacenter (micro-service D)",
		Header: []string{"counter", "dc", "slope", "intercept", "R2", "linear"},
	}
	counters := []string{"cpu", "net_bytes", "net_pkts", "mem_pages", "disk_queue", "disk_read"}
	linearByCounter := map[string]int{}
	dcs := 0
	for _, key := range agg.Pools() {
		dcs++
		series, err := agg.PoolSeries(key.DC, key.Pool)
		if err != nil {
			return nil, err
		}
		rep, err := measure.ValidateWorkloadMetric(series, 0)
		if err != nil {
			return nil, err
		}
		for _, name := range counters {
			cc, err := rep.Counter(name)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				name, key.DC, g4(cc.Fit.Slope), g4(cc.Fit.Intercept), f3(cc.Fit.R2),
				fmt.Sprintf("%v", cc.Linear),
			})
			if cc.Linear {
				linearByCounter[name]++
			}
		}
	}
	res.Metric("datacenters", float64(dcs))
	res.Metric("cpu_linear_dcs (paper: all)", float64(linearByCounter["cpu"]))
	res.Metric("net_bytes_linear_dcs (paper: linear, more variance)", float64(linearByCounter["net_bytes"]))
	res.Metric("mem_pages_linear_dcs (paper: vertical noise, 0)", float64(linearByCounter["mem_pages"]))
	res.Metric("disk_queue_linear_dcs (paper: static, 0)", float64(linearByCounter["disk_queue"]))
	res.Notes = append(res.Notes,
		"CPU shows the tight linear relationship that validates RPS as the workload metric; paging and disk queues are background noise")
	return res, nil
}
