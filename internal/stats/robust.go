package stats

import (
	"fmt"
	"math"
	"sort"
)

// Spearman returns the Spearman rank correlation coefficient of the paired
// samples: the Pearson correlation of mid-ranked values. The measurement
// step uses it as a monotonicity check that is insensitive to the curvature
// of a relationship — a counter can be strongly monotone in workload without
// being linear.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("spearman: %w (%d vs %d)", ErrBadLength, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("spearman: %w", ErrEmptyInput)
	}
	rx := midRanks(xs)
	ry := midRanks(ys)
	return Pearson(rx, ry)
}

// midRanks assigns 1-based mid-ranks with tie averaging.
func midRanks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	return ranks
}

// TheilSen fits a robust line by the Theil-Sen estimator: the slope is the
// median of all pairwise slopes and the intercept the median of
// y_i - slope*x_i. It tolerates up to ~29% arbitrary outliers and serves as
// a cross-check on the RANSAC line during metric refinement.
//
// Complexity is O(n²) pairwise slopes; callers should subsample histories
// beyond a few thousand points.
func TheilSen(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("theil-sen: %w (%d vs %d)", ErrBadLength, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("theil-sen: %w", ErrEmptyInput)
	}
	slopes := make([]float64, 0, len(xs)*(len(xs)-1)/2)
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			dx := xs[j] - xs[i]
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (ys[j]-ys[i])/dx)
		}
	}
	if len(slopes) == 0 {
		return LinearFit{}, fmt.Errorf("theil-sen: zero variance in x")
	}
	slope := Median(slopes)
	resid := make([]float64, len(xs))
	for i := range xs {
		resid[i] = ys[i] - slope*xs[i]
	}
	fit := LinearFit{Slope: slope, Intercept: Median(resid), N: len(xs)}
	preds := make([]float64, len(xs))
	for i, x := range xs {
		preds[i] = fit.Predict(x)
	}
	r2, err := RSquared(ys, preds)
	if err != nil {
		return LinearFit{}, err
	}
	fit.R2 = r2
	return fit, nil
}

// MAD returns the median absolute deviation from the median, a robust scale
// estimate. Multiply by 1.4826 for consistency with the standard deviation
// under normality.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// WinsorizedMean returns the mean after clamping the lowest and highest
// frac of the sorted sample to the surviving extremes — the measurement
// pipeline uses it for counters with rare hardware-anomaly spikes.
func WinsorizedMean(xs []float64, frac float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("winsorized mean: %w", ErrEmptyInput)
	}
	if frac < 0 || frac >= 0.5 {
		return 0, fmt.Errorf("winsorized mean: fraction %v outside [0, 0.5)", frac)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	k := int(frac * float64(len(sorted)))
	lo, hi := sorted[k], sorted[len(sorted)-1-k]
	var sum float64
	for _, x := range sorted {
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		sum += x
	}
	return sum / float64(len(sorted)), nil
}
