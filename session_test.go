package headroom_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"headroom"
	"headroom/internal/metrics"
)

// multiPoolFleet is a fleet with enough pools to exercise real sharding,
// plus availability churn and a mid-run action so every simulator code path
// contributes to the compared aggregates.
func multiPoolFleet(seed int64) headroom.FleetConfig {
	return headroom.FleetConfig{
		DCs:               headroom.NineRegions(),
		Pools:             []headroom.PoolConfig{headroom.PoolB(), headroom.PoolD()},
		WorkloadNoiseFrac: 0.03,
		Seed:              seed,
	}
}

// TestSessionShardedIdentical is the acceptance property of the sharded
// path: for the same seed, Simulate must produce byte-identical aggregates
// at any shard count, including with scheduled actions.
func TestSessionShardedIdentical(t *testing.T) {
	ctx := context.Background()
	action := headroom.Action{Pool: "B", DC: "DC 1", Tick: 120, SetServers: 200}

	aggAt := func(shards int) *headroom.Aggregator {
		t.Helper()
		s, err := headroom.New(ctx,
			headroom.WithFleet(multiPoolFleet(9)),
			headroom.WithShards(shards),
		)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := s.Simulate(ctx, 1, action)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}

	want := aggAt(1)
	for _, shards := range []int{2, 3, 8} {
		got := aggAt(shards)
		if !reflect.DeepEqual(got.Pools(), want.Pools()) {
			t.Fatalf("shards=%d: pool keys differ", shards)
		}
		for _, key := range want.Pools() {
			ws, err := want.PoolSeries(key.DC, key.Pool)
			if err != nil {
				t.Fatal(err)
			}
			gs, err := got.PoolSeries(key.DC, key.Pool)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gs, ws) {
				t.Errorf("shards=%d: %s pool series differs from sequential", shards, key)
			}
			wsum, err := want.ServerSummaries(key.DC, key.Pool)
			if err != nil {
				t.Fatal(err)
			}
			gsum, err := got.ServerSummaries(key.DC, key.Pool)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gsum, wsum) {
				t.Errorf("shards=%d: %s server summaries differ from sequential", shards, key)
			}
		}
	}
}

// TestSessionSimulateCancelled checks that cancelling the per-call context
// mid-simulation returns ctx.Err() promptly and leaks no goroutines, on
// both the sequential and the sharded path.
func TestSessionSimulateCancelled(t *testing.T) {
	for _, shards := range []int{1, 4} {
		before := runtime.NumGoroutine()
		s, err := headroom.New(context.Background(),
			headroom.WithFleet(multiPoolFleet(11)),
			headroom.WithShards(shards),
		)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		start := time.Now()
		// 365 simulated days would run for minutes; cancellation must cut
		// it short almost immediately.
		_, err = s.Simulate(ctx, 365)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("shards=%d: err = %v, want context.DeadlineExceeded", shards, err)
		}
		if elapsed > 5*time.Second {
			t.Errorf("shards=%d: cancellation took %v", shards, elapsed)
		}
		waitForGoroutines(t, before)
	}
}

// TestSessionBaseContextCancelsOperations checks the session-lifetime
// context from New: cancelling it aborts in-flight calls made with an
// otherwise-live per-call context.
func TestSessionBaseContextCancelsOperations(t *testing.T) {
	before := runtime.NumGoroutine()
	base, cancelBase := context.WithCancel(context.Background())
	s, err := headroom.New(base, headroom.WithFleet(multiPoolFleet(12)))
	if err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(30*time.Millisecond, cancelBase)
	start := time.Now()
	_, err = s.Simulate(context.Background(), 365)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("base cancellation took %v", elapsed)
	}
	waitForGoroutines(t, before)
}

// blockingPlant parks every observation until the context dies, proving
// RunRSM propagates cancellation into the plant.
type blockingPlant struct{}

func (blockingPlant) Observe(ctx context.Context, servers, ticks int) ([]metrics.TickStat, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestSessionRunRSMCancelled checks that a context cancelled mid-RunRSM
// unblocks the plant and surfaces ctx.Err().
func TestSessionRunRSMCancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := headroom.New(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	_, err = s.RunRSM(ctx, blockingPlant{}, headroom.RSMConfig{
		InitialServers: 100,
		QoSLimitMs:     10,
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	waitForGoroutines(t, before)
}

// TestSessionCustomSource checks the WithSource path: Simulate streams the
// configured source, and simulator-only parameters are rejected.
func TestSessionCustomSource(t *testing.T) {
	ctx := context.Background()

	// Build a small trace to replay.
	fleet := headroom.FleetConfig{
		DCs:   headroom.NineRegions(),
		Pools: []headroom.PoolConfig{headroom.PoolB()},
		Seed:  13,
	}
	sim, err := headroom.New(ctx, headroom.WithFleet(fleet))
	if err != nil {
		t.Fatal(err)
	}
	var recs []headroom.Record
	if err := sim.Stream(ctx, headroom.NewSimSource(fleet, 1), func(r headroom.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want, err := sim.Simulate(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}

	replay, err := headroom.New(ctx, headroom.WithSource(headroom.NewReplaySource(recs)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := replay.Simulate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range want.Pools() {
		ws, _ := want.PoolSeries(key.DC, key.Pool)
		gs, err := got.PoolSeries(key.DC, key.Pool)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gs, ws) {
			t.Errorf("%s: replayed aggregates differ from direct simulation", key)
		}
	}

	if _, err := replay.Simulate(ctx, 1); err == nil {
		t.Error("days > 0 with a custom source should error")
	}
	if _, err := replay.Simulate(ctx, 0, headroom.Action{Pool: "B", DC: "DC 1", SetServers: 1}); err == nil {
		t.Error("actions with a custom source should error")
	}

	empty, err := headroom.New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Simulate(ctx, 1); err == nil {
		t.Error("session without fleet or source should error")
	}
	if _, err := empty.Aggregate(ctx, nil); err == nil {
		t.Error("Aggregate without a source should error")
	}
}

// TestSessionInvalidFleetShardedError checks that an invalid fleet smuggled
// past New via WithSource fails identically whether aggregation shards or
// not: splitting a config whose error spans pools (a duplicate name) must
// not yield individually-valid shards that double-count the pool.
func TestSessionInvalidFleetShardedError(t *testing.T) {
	ctx := context.Background()
	dup := headroom.FleetConfig{
		DCs:   headroom.NineRegions(),
		Pools: []headroom.PoolConfig{headroom.PoolB(), headroom.PoolB()},
		Seed:  1,
	}
	for _, shards := range []int{1, 4} {
		s, err := headroom.New(ctx,
			headroom.WithSource(headroom.NewSimSource(dup, 1)),
			headroom.WithShards(shards),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Aggregate(ctx, nil); err == nil {
			t.Errorf("shards=%d: duplicate-pool fleet aggregated without error", shards)
		}
	}
}

// TestSessionOptionValidation covers option errors surfaced by New.
func TestSessionOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := headroom.New(ctx, headroom.WithShards(-1)); err == nil {
		t.Error("negative shard count should error")
	}
	if _, err := headroom.New(ctx, headroom.WithSource(nil)); err == nil {
		t.Error("nil source should error")
	}
	if _, err := headroom.New(ctx, headroom.WithFleet(headroom.FleetConfig{})); err == nil {
		t.Error("invalid fleet should error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := headroom.New(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("New on a cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestExperimentRegistry checks the experiment surface of the facade.
func TestExperimentRegistry(t *testing.T) {
	ctx := context.Background()
	infos := headroom.Experiments()
	if len(infos) == 0 {
		t.Fatal("no experiments registered")
	}
	s, err := headroom.New(ctx, headroom.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunExperiment(ctx, "no-such-artifact", true); err == nil {
		t.Error("unknown experiment ID should error")
	}
	res, err := s.RunExperiment(ctx, "ablation-degree", true)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if res.ID != "ablation-degree" {
		t.Errorf("result ID = %q", res.ID)
	}
}

// waitForGoroutines waits for the goroutine count to return to the level
// observed before the operation, failing the test if it does not settle.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
