// Package metrics aggregates raw trace records into the pool-level and
// server-level statistics the capacity-planning methodology consumes:
// per-tick pool aggregates (workload, CPU, latency, secondary counters),
// per-server utilisation summaries (the 5th..95th percentile feature set),
// and availability accounting.
//
// This corresponds to the paper's measurement substrate: performance
// counters averaged over 120-second windows, partitioned per workload and
// per pool (§II-A, §III).
package metrics

import (
	"errors"
	"fmt"
	"sort"

	"headroom/internal/stats"
	"headroom/internal/trace"
)

// PoolKey identifies a server pool in one datacenter.
type PoolKey struct {
	DC   string
	Pool string
}

// String renders the key as "pool@dc".
func (k PoolKey) String() string { return k.Pool + "@" + k.DC }

// TickStat is a pool-level aggregate over one 120-second window: the mean
// across the pool's online servers, as plotted in the paper's Figure 2.
type TickStat struct {
	Tick         int
	Servers      int // online servers contributing to the window
	TotalRPS     float64
	RPSPerServer float64
	CPUMean      float64
	LatencyMean  float64 // mean of per-server p95 latency
	NetBytes     float64
	NetPkts      float64
	MemPages     float64
	DiskQueue    float64
	DiskRead     float64
	Errors       float64
}

// ServerSummary is the per-server daily feature set used for capacity-
// planning group identification (§II-A2): CPU percentile features plus the
// slope/intercept/R² of a regression across the percentile curve, and the
// availability fraction.
type ServerSummary struct {
	Server       string
	Generation   string
	CPU          stats.Summary
	Availability float64 // fraction of windows online
	Windows      int
	// Slope, Intercept and R2 are the linear-regression coefficients over
	// the (percentile rank, CPU value) pairs, exactly the feature the
	// paper adds to its decision-tree feature vector.
	Slope     float64
	Intercept float64
	R2        float64
}

// FeatureVector renders the summary as the decision-tree input used by the
// grouping step.
func (s ServerSummary) FeatureVector() []float64 {
	return []float64{s.CPU.P5, s.CPU.P25, s.CPU.P50, s.CPU.P75, s.CPU.P95, s.Slope, s.Intercept, s.R2}
}

// serverAcc accumulates one server's observations.
type serverAcc struct {
	generation string
	cpu        []float64
	online     int
	windows    int
}

// tickAcc accumulates one pool-tick's online-server sums.
type tickAcc struct {
	servers   int
	rps       float64
	cpu       float64
	latency   float64
	netBytes  float64
	netPkts   float64
	memPages  float64
	diskQueue float64
	diskRead  float64
	errs      float64
}

// poolAcc accumulates one pool's observations.
type poolAcc struct {
	ticks   map[int]*tickAcc
	servers map[string]*serverAcc
}

// Aggregator consumes trace records and produces pool and server
// aggregates. The zero value is not usable; construct with NewAggregator.
type Aggregator struct {
	pools map[PoolKey]*poolAcc
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{pools: make(map[PoolKey]*poolAcc)}
}

// Add ingests one record. Offline windows count toward availability but not
// toward resource aggregates (an offline server serves no traffic).
func (a *Aggregator) Add(r trace.Record) {
	key := PoolKey{DC: r.DC, Pool: r.Pool}
	p := a.pools[key]
	if p == nil {
		p = &poolAcc{ticks: make(map[int]*tickAcc), servers: make(map[string]*serverAcc)}
		a.pools[key] = p
	}
	s := p.servers[r.Server]
	if s == nil {
		s = &serverAcc{generation: r.Generation}
		p.servers[r.Server] = s
	}
	s.windows++
	if !r.Online {
		return
	}
	s.online++
	s.cpu = append(s.cpu, r.CPUPct)

	t := p.ticks[r.Tick]
	if t == nil {
		t = &tickAcc{}
		p.ticks[r.Tick] = t
	}
	t.servers++
	t.rps += r.RPS
	t.cpu += r.CPUPct
	t.latency += r.LatencyMs
	t.netBytes += r.NetBytes
	t.netPkts += r.NetPkts
	t.memPages += r.MemPages
	t.diskQueue += r.DiskQueue
	t.diskRead += r.DiskRead
	t.errs += r.Errors
}

// AddAll ingests a batch of records.
func (a *Aggregator) AddAll(rs []trace.Record) {
	for _, r := range rs {
		a.Add(r)
	}
}

// Merge folds b's accumulated state into a, so record streams can be
// aggregated in parallel shards and combined afterwards. b must not be used
// after the call: a adopts b's internal accumulators where possible.
//
// When the shards partition the stream by (pool, datacenter) — each key's
// records all land in one shard, in stream order — the merged aggregator is
// identical to single-pass aggregation, bit for bit. Shards that split a
// key across aggregators still merge correctly (sums of sums), but
// floating-point addition order then differs from the single-pass result.
func (a *Aggregator) Merge(b *Aggregator) {
	if b == nil {
		return
	}
	for key, pb := range b.pools {
		pa, ok := a.pools[key]
		if !ok {
			a.pools[key] = pb
			continue
		}
		for tick, tb := range pb.ticks {
			ta, ok := pa.ticks[tick]
			if !ok {
				pa.ticks[tick] = tb
				continue
			}
			ta.servers += tb.servers
			ta.rps += tb.rps
			ta.cpu += tb.cpu
			ta.latency += tb.latency
			ta.netBytes += tb.netBytes
			ta.netPkts += tb.netPkts
			ta.memPages += tb.memPages
			ta.diskQueue += tb.diskQueue
			ta.diskRead += tb.diskRead
			ta.errs += tb.errs
		}
		for name, sb := range pb.servers {
			sa, ok := pa.servers[name]
			if !ok {
				pa.servers[name] = sb
				continue
			}
			sa.online += sb.online
			sa.windows += sb.windows
			sa.cpu = append(sa.cpu, sb.cpu...)
		}
	}
}

// Pools lists the observed pool keys in deterministic order.
func (a *Aggregator) Pools() []PoolKey {
	keys := make([]PoolKey, 0, len(a.pools))
	for k := range a.pools {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pool != keys[j].Pool {
			return keys[i].Pool < keys[j].Pool
		}
		return keys[i].DC < keys[j].DC
	})
	return keys
}

// PoolSeries returns the pool's per-tick aggregates sorted by tick.
func (a *Aggregator) PoolSeries(dc, pool string) ([]TickStat, error) {
	p, ok := a.pools[PoolKey{DC: dc, Pool: pool}]
	if !ok {
		return nil, fmt.Errorf("metrics: no data for pool %s@%s", pool, dc)
	}
	out := make([]TickStat, 0, len(p.ticks))
	for tick, t := range p.ticks {
		n := float64(t.servers)
		ts := TickStat{
			Tick:     tick,
			Servers:  t.servers,
			TotalRPS: t.rps,
		}
		if t.servers > 0 {
			ts.RPSPerServer = t.rps / n
			ts.CPUMean = t.cpu / n
			ts.LatencyMean = t.latency / n
			ts.NetBytes = t.netBytes / n
			ts.NetPkts = t.netPkts / n
			ts.MemPages = t.memPages / n
			ts.DiskQueue = t.diskQueue / n
			ts.DiskRead = t.diskRead / n
			ts.Errors = t.errs / n
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tick < out[j].Tick })
	return out, nil
}

// ServerSummaries returns per-server summaries for a pool, sorted by server
// name. Servers that were never online have a zero CPU summary.
func (a *Aggregator) ServerSummaries(dc, pool string) ([]ServerSummary, error) {
	p, ok := a.pools[PoolKey{DC: dc, Pool: pool}]
	if !ok {
		return nil, fmt.Errorf("metrics: no data for pool %s@%s", pool, dc)
	}
	out := make([]ServerSummary, 0, len(p.servers))
	for name, s := range p.servers {
		sum := ServerSummary{
			Server:     name,
			Generation: s.generation,
			Windows:    s.windows,
		}
		if s.windows > 0 {
			sum.Availability = float64(s.online) / float64(s.windows)
		}
		if len(s.cpu) > 0 {
			sum.CPU = stats.Summarize(s.cpu)
			ranks := []float64{5, 25, 50, 75, 95}
			vals := []float64{sum.CPU.P5, sum.CPU.P25, sum.CPU.P50, sum.CPU.P75, sum.CPU.P95}
			if fit, err := stats.LinearRegression(ranks, vals); err == nil {
				sum.Slope = fit.Slope
				sum.Intercept = fit.Intercept
				sum.R2 = fit.R2
			}
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Server < out[j].Server })
	return out, nil
}

// PoolAvailability returns, for each day, the pool's mean online fraction
// (the paper's Figure 15 series). ticksPerDay must be positive.
func (a *Aggregator) PoolAvailability(dc, pool string, ticksPerDay int) ([]float64, error) {
	if ticksPerDay <= 0 {
		return nil, errors.New("metrics: ticksPerDay must be positive")
	}
	p, ok := a.pools[PoolKey{DC: dc, Pool: pool}]
	if !ok {
		return nil, fmt.Errorf("metrics: no data for pool %s@%s", pool, dc)
	}
	total := len(p.servers)
	if total == 0 {
		return nil, fmt.Errorf("metrics: pool %s@%s has no servers", pool, dc)
	}
	maxTick := -1
	for tick := range p.ticks {
		if tick > maxTick {
			maxTick = tick
		}
	}
	days := maxTick/ticksPerDay + 1
	online := make([]float64, days)
	counts := make([]int, days)
	for tick, t := range p.ticks {
		d := tick / ticksPerDay
		online[d] += float64(t.servers) / float64(total)
		counts[d]++
	}
	for d := range online {
		if counts[d] > 0 {
			online[d] /= float64(counts[d])
		}
	}
	return online, nil
}

// MergedServerSummaries concatenates the server summaries of a pool across
// every datacenter it runs in, which is how the paper's Figure 3 scatter
// (shapes are datacenters) is assembled.
func (a *Aggregator) MergedServerSummaries(pool string) (map[string][]ServerSummary, error) {
	out := make(map[string][]ServerSummary)
	for _, key := range a.Pools() {
		if key.Pool != pool {
			continue
		}
		ss, err := a.ServerSummaries(key.DC, key.Pool)
		if err != nil {
			return nil, err
		}
		out[key.DC] = ss
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("metrics: no data for pool %s", pool)
	}
	return out, nil
}
