package dtree

import (
	"math"
	"math/rand"
	"testing"
)

// groupedServers builds a labelled dataset in the paper's feature-vector
// shape: percentile CPU features plus regression slope/intercept/R2, where
// label 1 means "single predictable group" (tight CPU band) and label 0
// means "noisy / multi-workload" (wide band).
func groupedServers(n int, seed int64) (xs [][]float64, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		tight := rng.Intn(2) == 0
		base := 5 + rng.Float64()*10
		var spread float64
		if tight {
			spread = 2 + rng.Float64()*2
		} else {
			spread = 15 + rng.Float64()*25
		}
		p5 := base
		p25 := base + spread*0.25
		p50 := base + spread*0.5
		p75 := base + spread*0.75
		p95 := base + spread
		slope := spread / 90
		intercept := base - slope*5
		r2 := 0.95 - spread*0.01 + rng.NormFloat64()*0.01
		xs = append(xs, []float64{p5, p25, p50, p75, p95, slope, intercept, r2})
		if tight {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}
	return xs, ys
}

func TestFitClassificationSeparable(t *testing.T) {
	xs, ys := groupedServers(400, 1)
	tree, err := Fit(xs, ys, Config{Task: Classification, MaxDepth: 6, MinLeafSize: 5})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	correct := 0
	for i := range xs {
		c, err := tree.PredictClass(xs[i])
		if err != nil {
			t.Fatalf("PredictClass: %v", err)
		}
		if c == ys[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(xs))
	if acc < 0.98 {
		t.Errorf("training accuracy = %v, want >= 0.98", acc)
	}
	if tree.Splits() == 0 {
		t.Error("tree should have at least one split")
	}
	if tree.Depth() < 1 {
		t.Error("tree should have depth >= 1")
	}
}

func TestFitRegression(t *testing.T) {
	// Piecewise-constant target: regression tree should recover it well.
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 10
		y := 1.0
		if x > 3 {
			y = 5
		}
		if x > 7 {
			y = 2
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y+0.05*rng.NormFloat64())
	}
	tree, err := Fit(xs, ys, Config{Task: Regression, MaxDepth: 4, MinLeafSize: 10})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	checks := []struct {
		x, want float64
	}{
		{1, 1}, {5, 5}, {9, 2},
	}
	for _, c := range checks {
		got, err := tree.Predict([]float64{c.x})
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if math.Abs(got-c.want) > 0.3 {
			t.Errorf("Predict(%v) = %v, want ~%v", c.x, got, c.want)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Config{}); err == nil {
		t.Error("no data should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Config{}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, Config{}); err == nil {
		t.Error("zero-width features should error")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 0}, Config{}); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{0.5, 1}, Config{Task: Classification}); err == nil {
		t.Error("non-binary classification target should error")
	}
}

func TestPredictValidatesWidth(t *testing.T) {
	xs, ys := groupedServers(50, 3)
	tree, err := Fit(xs, ys, Config{Task: Classification})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, err := tree.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong-width input should error")
	}
}

func TestMinLeafSizeRespected(t *testing.T) {
	xs, ys := groupedServers(200, 4)
	tree, err := Fit(xs, ys, Config{Task: Classification, MinLeafSize: 40, MaxDepth: 10})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			if n.N < 40 {
				t.Errorf("leaf with %d samples violates MinLeafSize=40", n.N)
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

func TestPureNodeStopsSplitting(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	ys := []float64{1, 1, 1, 1, 1, 1}
	tree, err := Fit(xs, ys, Config{Task: Classification, MinLeafSize: 1})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("pure target should produce a single leaf")
	}
	if tree.Root.Value != 1 {
		t.Errorf("leaf value = %v, want 1", tree.Root.Value)
	}
}

func TestCrossValidateClassification(t *testing.T) {
	xs, ys := groupedServers(600, 5)
	folds := makeFolds(len(xs), 5, 7)
	res, err := CrossValidate(xs, ys, Config{Task: Classification, MaxDepth: 6, MinLeafSize: 5}, folds)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if res.Folds != 5 {
		t.Errorf("Folds = %d, want 5", res.Folds)
	}
	// Separable data: out-of-fold metrics should be strong, in the spirit
	// of the paper's R2=0.746 / AUC=0.9804 report.
	if res.AUC < 0.95 {
		t.Errorf("AUC = %v, want >= 0.95", res.AUC)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("Accuracy = %v, want >= 0.95", res.Accuracy)
	}
	if res.R2 < 0.5 {
		t.Errorf("R2 = %v, want >= 0.5", res.R2)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	xs, ys := groupedServers(20, 6)
	if _, err := CrossValidate(xs, ys, Config{}, nil); err == nil {
		t.Error("no folds should error")
	}
	// A fold that never holds out sample 0.
	folds := makeFolds(len(xs), 4, 8)
	folds[0].Test = folds[0].Test[:0]
	if _, err := CrossValidate(xs, ys, Config{}, folds); err == nil {
		t.Error("missing held-out samples should error")
	}
}

// makeFolds builds deterministic k-fold splits without importing stats
// (dtree stays dependency-free).
func makeFolds(n, k int, seed int64) []struct{ Train, Test []int } {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)
	folds := make([]struct{ Train, Test []int }, k)
	for f := 0; f < k; f++ {
		lo, hi := f*n/k, (f+1)*n/k
		folds[f].Test = append([]int(nil), idx[lo:hi]...)
		folds[f].Train = append(append([]int(nil), idx[:lo]...), idx[hi:]...)
	}
	return folds
}

// Property: classification leaf probabilities are valid probabilities and
// regression predictions stay within the target range.
func TestPredictionBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(100)
		var xs [][]float64
		var ys []float64
		for i := 0; i < n; i++ {
			xs = append(xs, []float64{rng.Float64() * 100, rng.Float64() * 10})
			ys = append(ys, rng.Float64()*50)
		}
		tree, err := Fit(xs, ys, Config{Task: Regression, MaxDepth: 5, MinLeafSize: 3})
		if err != nil {
			t.Fatalf("Fit: %v", err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, y := range ys {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		for i := 0; i < 50; i++ {
			p, err := tree.Predict([]float64{rng.Float64() * 100, rng.Float64() * 10})
			if err != nil {
				t.Fatalf("Predict: %v", err)
			}
			if p < lo-1e-9 || p > hi+1e-9 {
				t.Fatalf("prediction %v outside target range [%v, %v]", p, lo, hi)
			}
		}
	}
}
