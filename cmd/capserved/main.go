// Command capserved is the long-running capacity-planning service: it
// exposes the pipeline the one-shot CLIs (capsim, capplan) drive — fleet
// simulation, planning, offline A/B validation and workload forecasting —
// as an HTTP/JSON job API with a bounded worker pool and a keyed result
// cache, so operators can submit what-if plans against a shared deployment
// and identical queries cost one simulation.
//
// Usage:
//
//	capserved -addr :8080
//	capserved -addr :8080 -workers 8 -cache 256 -job-timeout 10m
//	capserved -addr :8080 -dist-token s3cret \
//	    -peers http://10.0.0.2:8080,http://10.0.0.3:8080
//
// With -peers, simulate/plan jobs are split into shards and dispatched to
// the named workers (each a capserved started with the same -dist-token),
// merged back byte-identical to a single-node run; see the README's
// "Scale-out" section.
//
// Endpoints: POST /v1/{simulate,plan,validate,forecast}, GET /v1/jobs/{id},
// GET /healthz, GET /readyz, GET /metrics (Prometheus text format). See the
// README's "Running the server" and "Failure semantics" sections for request
// examples and degraded-mode behaviour.
//
// SIGTERM or SIGINT drains gracefully: the listener closes, in-flight
// requests and queued jobs finish (bounded by -drain-timeout), then the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"headroom/internal/obs"
	"headroom/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "capserved:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is cancelled and the drain
// completes. When ready is non-nil it receives the bound address once the
// listener is up (used by the e2e test to learn the ephemeral port).
func run(ctx context.Context, args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("capserved", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		workers      = fs.Int("workers", 0, "job worker-pool size (0 = one per CPU)")
		queueDepth   = fs.Int("queue", 0, "pending job queue depth (0 = 4x workers)")
		cacheSize    = fs.Int("cache", 128, "result cache capacity (number of results)")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "per-job deadline")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown window")
		shards       = fs.Int("shards", 0, "aggregation shards per job (0 = one per CPU)")

		peers        = fs.String("peers", "", "comma-separated worker base URLs enabling distributed scale-out (e.g. http://10.0.0.2:8080,http://10.0.0.3:8080)")
		distToken    = fs.String("dist-token", "", "shared secret for internal shard traffic; required with -peers, and serves POST /v1/internal/shard when set")
		hedgeAfter   = fs.Duration("hedge-after", 0, "hedge a shard dispatch still unanswered after this delay (0 = adaptive 2x worker EWMA, negative = disabled)")
		shardTimeout = fs.Duration("shard-timeout", time.Minute, "end-to-end deadline for one distributed shard (reroutes and hedges included)")

		partial       = fs.Bool("partial-results", false, "serve degraded results when some pools fail instead of failing the whole job")
		retryAttempts = fs.Int("source-retries", 0, "max source stream attempts per shard (0 = default 3, 1 = no retries)")
		retryBackoff  = fs.Duration("source-retry-backoff", 0, "initial backoff between source retries (0 = default 50ms)")
		brThreshold   = fs.Int("breaker-threshold", 0, "consecutive job failures before an endpoint's circuit opens (0 = default 5, negative = disabled)")
		brOpenFor     = fs.Duration("breaker-open-for", 0, "how long an open circuit fast-fails before probing (0 = default 10s)")
		readyHWM      = fs.Int("ready-watermark", 0, "queue depth at which /readyz reports overloaded (0 = 3/4 of queue depth)")

		logFormat = fs.String("log-format", "text", "log output format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		debugAddr = fs.String("debug-addr", "", "optional second listener serving /debug/pprof, /debug/traces and /debug/goroutines")
		traceRing = fs.Int("trace-ring", 128, "recent traces retained for /debug/traces")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fail := func(format string, v ...any) error {
		fmt.Fprintf(fs.Output(), format+"\n\n", v...)
		fs.Usage()
		return fmt.Errorf(format, v...)
	}
	if *workers < 0 {
		return fail("workers must be >= 0, got %d", *workers)
	}
	if *queueDepth < 0 {
		return fail("queue must be >= 0, got %d", *queueDepth)
	}
	if *cacheSize < 1 {
		return fail("cache must be >= 1, got %d", *cacheSize)
	}
	if *jobTimeout <= 0 {
		return fail("job-timeout must be positive, got %s", *jobTimeout)
	}
	if *drainTimeout <= 0 {
		return fail("drain-timeout must be positive, got %s", *drainTimeout)
	}
	if *shards < 0 {
		return fail("shards must be >= 0, got %d", *shards)
	}
	if *retryAttempts < 0 {
		return fail("source-retries must be >= 0, got %d", *retryAttempts)
	}
	if *retryBackoff < 0 {
		return fail("source-retry-backoff must be >= 0, got %s", *retryBackoff)
	}
	if *brOpenFor < 0 {
		return fail("breaker-open-for must be >= 0, got %s", *brOpenFor)
	}
	if *readyHWM < 0 {
		return fail("ready-watermark must be >= 0, got %d", *readyHWM)
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 && *distToken == "" {
		return fail("-peers requires -dist-token (the shared secret workers authenticate with)")
	}
	if *shardTimeout <= 0 {
		return fail("shard-timeout must be positive, got %s", *shardTimeout)
	}
	if !obs.ValidFormat(*logFormat) {
		return fail("log-format must be text or json, got %q", *logFormat)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return fail("%v", err)
	}
	if *traceRing < 1 {
		return fail("trace-ring must be >= 1, got %d", *traceRing)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)
	tracer := obs.NewTracer(*traceRing)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", *addr, err)
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	// The optional debug listener carries the profiling and tracing surface
	// on a separate port so it can stay firewalled off from the API.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("listen on debug addr %s: %w", *debugAddr, err)
		}
		dsrv := &http.Server{Handler: obs.DebugMux(tracer), ReadHeaderTimeout: 10 * time.Second}
		go dsrv.Serve(dln)
		defer dsrv.Close()
		logger.Info("debug listening", "addr", dln.Addr().String())
	}

	srv := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		CacheSize:          *cacheSize,
		JobTimeout:         *jobTimeout,
		DrainTimeout:       *drainTimeout,
		Shards:             *shards,
		Peers:              peerList,
		DistToken:          *distToken,
		HedgeAfter:         *hedgeAfter,
		ShardTimeout:       *shardTimeout,
		PartialResults:     *partial,
		RetryAttempts:      *retryAttempts,
		RetryBackoff:       *retryBackoff,
		BreakerThreshold:   *brThreshold,
		BreakerOpenFor:     *brOpenFor,
		ReadyHighWatermark: *readyHWM,
		Logger:             logger,
		Tracer:             tracer,
	})
	return srv.Serve(ctx, ln)
}
