// Package headroom is a reproduction of "Right-sizing Server Capacity
// Headroom for Global Online Services" (Verbowski et al., ICDCS 2018): a
// black-box capacity-planning methodology for large, low-latency,
// geo-distributed online services, together with the fleet simulator,
// statistics substrate, baselines and benchmark harness needed to reproduce
// the paper's evaluation.
//
// The entry point is a Session (see New), configured with functional
// options, whose methods expose the four-step pipeline:
//
//  1. Measure  — validate workload metrics, group servers (Simulate + Plan)
//  2. Optimize — fit workload→QoS models and right-size pools (Plan, RunRSM)
//  3. Model    — build and verify synthetic workloads (BuildProfile,
//     NewSynthSource)
//  4. Validate — gate changes offline before deployment (Validate)
//
// Every pipeline step consumes a Source — a stream of trace records — so
// the simulator, synthetic replays and recorded traces are interchangeable
// inputs. Aggregation shards across goroutines (per pool) with results
// bit-identical to a sequential pass.
//
// Paper tables and figures are regenerated through Session.RunExperiment /
// Experiments; `go test -bench .` runs one benchmark per artifact.
//
// cmd/capserved serves the same pipeline as a long-running HTTP/JSON job
// API with a bounded worker pool and a keyed result cache.
package headroom

import (
	"headroom/internal/core"
	"headroom/internal/forecast"
	"headroom/internal/metrics"
	"headroom/internal/optimize"
	"headroom/internal/sim"
	"headroom/internal/slo"
	"headroom/internal/synth"
	"headroom/internal/trace"
	"headroom/internal/validate"
	"headroom/internal/workload"
)

// Re-exported types: the facade aliases the internal implementation so a
// downstream user needs a single import.
type (
	// FleetConfig describes a simulated service (datacenters + pools).
	FleetConfig = sim.FleetConfig
	// PoolConfig describes one micro-service server pool.
	PoolConfig = sim.PoolConfig
	// ResponseParams is a pool's ground-truth response model.
	ResponseParams = sim.ResponseParams
	// Action is a scheduled operational change (reduction, deployment).
	Action = sim.Action
	// Record is one 120-second observation window for one server.
	Record = trace.Record
	// Aggregator turns records into pool/server statistics. Aggregators
	// built from disjoint shards of a stream merge losslessly (Merge).
	Aggregator = metrics.Aggregator
	// PlanConfig controls a planning pass.
	PlanConfig = core.PlanConfig
	// PoolPlan is the planning outcome for one pool in one datacenter.
	PoolPlan = core.PoolPlan
	// RSMConfig controls an iterative reduction experiment.
	RSMConfig = optimize.RSMConfig
	// RSMResult is the outcome of a reduction experiment.
	RSMResult = optimize.RSMResult
	// Plant is a system that can run a pool at a server count and report
	// observations (the simulator, in this reproduction).
	Plant = optimize.Plant
	// SimPlant adapts the simulator to the Plant interface.
	SimPlant = core.SimPlant
	// ValidateConfig controls an offline A/B validation run.
	ValidateConfig = validate.Config
	// Change is a candidate modification under offline validation.
	Change = validate.Change
	// ValidateReport is the outcome of an offline validation run.
	ValidateReport = validate.Report
	// Datacenter is one region of the simulated topology.
	Datacenter = workload.Datacenter
	// Pattern is a diurnal traffic pattern.
	Pattern = workload.Pattern
	// SLOSet is a micro-service's QoS requirement as a set of objectives.
	SLOSet = slo.Set
	// SLOReport is the evaluation of an SLO set against observations.
	SLOReport = slo.Report
	// ForecastModel is a fitted workload trend + daily-seasonality model.
	ForecastModel = forecast.Model
	// PoolModel is the fitted workload→resource/QoS model of a pool.
	PoolModel = optimize.PoolModel
	// Profile is a reproducible synthetic workload (Step 3), replayable
	// through NewSynthSource.
	Profile = synth.Profile
	// DCCapacity and DRPlan drive disaster-recovery sizing.
	DCCapacity = optimize.DCCapacity
	DRPlan     = optimize.DRPlan
)

// DefaultFleet returns the paper-shaped fleet: pools A-I (Table I and the
// figure case studies) plus a filler population shaping the fleet-wide
// utilisation and availability distributions of Figures 12-14.
func DefaultFleet(seed int64) FleetConfig { return sim.DefaultFleet(seed) }

// PoolB returns the paper's pool B (the 30% reduction experiment subject).
func PoolB() PoolConfig { return sim.PoolB() }

// PoolD returns the paper's pool D (the 10% reduction experiment subject).
func PoolD() PoolConfig { return sim.PoolD() }

// NineRegions returns the nine-datacenter global topology.
func NineRegions() []Datacenter { return workload.NineRegions() }

// NamedPool returns the configured pool with the given name from a fleet,
// or an error naming the missing pool. Services that accept pool names on
// the wire (cmd/capserved) resolve them through this lookup.
func NamedPool(cfg FleetConfig, name string) (PoolConfig, error) {
	return sim.NamedPool(cfg, name)
}

// BuildProfile derives a synthetic workload profile from production pool
// history: a load sweep covering the observed per-server range (plus
// extendFrac stretch beyond the p99 for stress testing) at a controlled
// offline pool size. Replay it with NewSynthSource.
func BuildProfile(series []metrics.TickStat, mix workload.Mix, servers, levels int, extendFrac float64) (Profile, error) {
	return synth.BuildProfile(series, mix, servers, levels, extendFrac)
}

// TypicalSLO returns the SLO set the paper describes as typical for large
// online services (p95 latency bound, 99.95% availability, low errors).
func TypicalSLO(service string, latencyMs float64) SLOSet {
	return slo.Typical(service, latencyMs)
}

// EvaluateSLO checks a pool's observation series and availability against
// its QoS requirement.
func EvaluateSLO(set SLOSet, series []metrics.TickStat, meanAvailability float64) (SLOReport, error) {
	return slo.Evaluate(set, series, meanAvailability)
}

// FitPoolModel fits the workload models (linear CPU, quadratic latency)
// from pool history — the building block behind Plan.
func FitPoolModel(series []metrics.TickStat) (PoolModel, error) {
	return optimize.FitPoolModel(series)
}
