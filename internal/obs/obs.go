// Package obs is the dependency-free observability core of the repository:
// spans (nanosecond pipeline tracing with a bounded in-memory ring of
// recent traces), structured logging (slog with trace/span/job correlation
// pulled from context), and stage metrics (process-wide Prometheus
// families on prom.Default).
//
// Spans ride the context. A root span starts when a Tracer is installed on
// the context (WithTracer) and StartSpan is called with no active span;
// child spans nest by calling StartSpan with the returned context. When no
// tracer is installed, StartSpan returns a shared no-op span and the
// context unchanged — the disabled path costs at most the variadic attr
// slice (≤ 2 allocations, see BenchmarkSpanDisabled).
//
//	ctx = obs.WithTracer(ctx, tracer)
//	ctx, sp := obs.StartSpan(ctx, "simulate.pool", obs.Str("pool", "B"))
//	defer sp.End()
//
// Completed traces are exportable as JSON (/debug/traces) or as Chrome
// trace_event JSON for chrome://tracing (WriteChrome, FileTrace).
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// --- attributes ----------------------------------------------------------

type attrKind uint8

const (
	kindString attrKind = iota
	kindInt64
	kindBool
	kindFloat64
)

// Attr is one key/value span annotation. Values are stored unboxed so
// building an Attr never allocates.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, kind: kindString, s: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, kind: kindInt64, i: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(k string, v int64) Attr { return Attr{Key: k, kind: kindInt64, i: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, kind: kindBool}
	if v {
		a.i = 1
	}
	return a
}

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, kind: kindFloat64, f: v} }

// Value returns the attribute's value as an any.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt64:
		return a.i
	case kindBool:
		return a.i != 0
	case kindFloat64:
		return a.f
	default:
		return a.s
	}
}

// AttrList renders a span's attributes as one JSON object, in order.
type AttrList []Attr

// MarshalJSON renders {"key": value, ...} preserving attribute order.
func (l AttrList) MarshalJSON() ([]byte, error) {
	if len(l) == 0 {
		return []byte("{}"), nil
	}
	buf := make([]byte, 0, 16*len(l))
	buf = append(buf, '{')
	for i, a := range l {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(a.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(a.Value())
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// Map returns the attributes as a plain map (last writer wins on duplicate
// keys), for the Chrome exporter.
func (l AttrList) Map() map[string]any {
	if len(l) == 0 {
		return nil
	}
	m := make(map[string]any, len(l))
	for _, a := range l {
		m[a.Key] = a.Value()
	}
	return m
}

// --- IDs -----------------------------------------------------------------

// idBase randomizes trace IDs across process restarts so traces from
// different runs don't collide in downstream tooling.
var idBase = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	return uint64(time.Now().UnixNano())
}()

var idSeq atomic.Uint64

// NewID returns a 16-hex-digit process-unique identifier, used for trace
// IDs and request IDs.
func NewID() string {
	v := idBase ^ (idSeq.Add(1) * 0x9E3779B97F4A7C15)
	return fmt.Sprintf("%016x", v)
}

// --- spans and traces ----------------------------------------------------

// SpanData is one finished span of a trace.
type SpanData struct {
	SpanID   uint64        `json:"span_id"`
	ParentID uint64        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    AttrList      `json:"attrs,omitempty"`
}

// maxSpansPerTrace bounds a single trace's memory: a runaway loop of spans
// cannot grow a trace without bound. Further spans are counted but dropped.
const maxSpansPerTrace = 4096

// Trace accumulates the finished spans of one trace tree.
type Trace struct {
	id    string
	start time.Time

	seq atomic.Uint64 // span-ID allocator; 1 is the root

	mu      sync.Mutex
	spans   []SpanData
	dropped int
}

func (tr *Trace) record(sd SpanData) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= maxSpansPerTrace {
		tr.dropped++
		return
	}
	tr.spans = append(tr.spans, sd)
}

// TraceData is an exportable snapshot of one trace.
type TraceData struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	// Spans are the finished spans, in completion order. A span still open
	// when the snapshot is taken is absent.
	Spans []SpanData `json:"spans"`
	// Dropped counts spans discarded after the per-trace bound.
	Dropped int `json:"dropped_spans,omitempty"`
}

func (tr *Trace) snapshot() TraceData {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	spans := make([]SpanData, len(tr.spans))
	copy(spans, tr.spans)
	return TraceData{TraceID: tr.id, Start: tr.start, Spans: spans, Dropped: tr.dropped}
}

// Span is one timed operation of a trace. The zero Span (and nil) is a
// no-op: every method returns immediately, so instrumented code never
// checks whether tracing is enabled.
type Span struct {
	trace  *Trace
	name   string
	id     uint64
	parent uint64
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// noopSpan is the shared disabled span returned when no tracer is
// installed.
var noopSpan = &Span{}

// Enabled reports whether the span records anything.
func (s *Span) Enabled() bool { return s != nil && s.trace != nil }

// TraceID returns the owning trace's ID, or "" for a disabled span.
func (s *Span) TraceID() string {
	if !s.Enabled() {
		return ""
	}
	return s.trace.id
}

// SpanID returns the span's ID within its trace (root is 1), or 0 for a
// disabled span.
func (s *Span) SpanID() uint64 {
	if !s.Enabled() {
		return 0
	}
	return s.id
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if !s.Enabled() || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// AddInt adds delta to the integer attribute key, creating it at delta when
// absent — retry counters accumulate across attempts this way.
func (s *Span) AddInt(key string, delta int64) {
	if !s.Enabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key && s.attrs[i].kind == kindInt64 {
			s.attrs[i].i += delta
			return
		}
	}
	s.attrs = append(s.attrs, Int64(key, delta))
}

// RecordError annotates the span with a non-nil error.
func (s *Span) RecordError(err error) {
	if err == nil {
		return
	}
	s.SetAttr(Str("error", err.Error()))
}

// End finishes the span and records it on its trace. End is idempotent.
func (s *Span) End() {
	if !s.Enabled() {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.trace.record(SpanData{
		SpanID: s.id, ParentID: s.parent, Name: s.name,
		Start: s.start, Duration: d, Attrs: attrs,
	})
}

// Event records an already-completed child span with explicit timing —
// used for intervals measured elsewhere, like a job's queue wait.
func (s *Span) Event(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if !s.Enabled() {
		return
	}
	s.trace.record(SpanData{
		SpanID: s.trace.seq.Add(1), ParentID: s.id, Name: name,
		Start: start, Duration: d, Attrs: attrs,
	})
}

// --- tracer --------------------------------------------------------------

// Tracer owns a bounded ring of recent traces. Starting a root span
// registers its trace in the ring immediately, so in-flight traces are
// visible to /debug/traces; once the ring is full the oldest trace is
// overwritten.
type Tracer struct {
	mu   sync.Mutex
	ring []*Trace
	head int
	n    int
}

// NewTracer builds a tracer retaining the last capacity traces (default
// 64 when capacity is not positive).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

func (t *Tracer) newTrace() *Trace {
	tr := &Trace{id: NewID(), start: time.Now()}
	t.mu.Lock()
	t.ring[t.head] = tr
	t.head = (t.head + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	return tr
}

// Traces snapshots the retained traces, newest first.
func (t *Tracer) Traces() []TraceData {
	t.mu.Lock()
	trs := make([]*Trace, 0, t.n)
	for i := 0; i < t.n; i++ {
		idx := (t.head - 1 - i + len(t.ring)) % len(t.ring)
		trs = append(trs, t.ring[idx])
	}
	t.mu.Unlock()
	out := make([]TraceData, len(trs))
	for i, tr := range trs {
		out[i] = tr.snapshot()
	}
	return out
}

// Trace returns the snapshot of one retained trace by ID.
func (t *Tracer) Trace(id string) (TraceData, bool) {
	t.mu.Lock()
	var found *Trace
	for i := 0; i < t.n; i++ {
		idx := (t.head - 1 - i + len(t.ring)) % len(t.ring)
		if t.ring[idx].id == id {
			found = t.ring[idx]
			break
		}
	}
	t.mu.Unlock()
	if found == nil {
		return TraceData{}, false
	}
	return found.snapshot(), true
}

// --- context plumbing ----------------------------------------------------

type tracerKey struct{}
type spanKey struct{}
type jobIDKey struct{}

// WithTracer installs a tracer on the context; StartSpan calls downstream
// of it record spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ActiveSpan returns the context's current span. The result is never nil:
// with no active span a shared no-op span is returned, so callers annotate
// unconditionally.
func ActiveSpan(ctx context.Context) *Span {
	if s, ok := ctx.Value(spanKey{}).(*Span); ok {
		return s
	}
	return noopSpan
}

// TraceIDFrom returns the active span's trace ID, or "".
func TraceIDFrom(ctx context.Context) string {
	return ActiveSpan(ctx).TraceID()
}

// WithJobID tags the context with a job identifier; the context log handler
// emits it as job_id on every record.
func WithJobID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobIDFrom returns the context's job ID, or "".
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// StartSpan starts a span named name. With an active span on the context
// the new span is its child; otherwise a new root span (and trace) starts
// on the context's tracer. With no tracer installed it returns ctx
// unchanged and a shared no-op span — this disabled path performs no
// locking and at most the attrs slice allocation.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var tr *Trace
	var parentID uint64
	if parent != nil && parent.trace != nil {
		tr = parent.trace
		parentID = parent.id
	} else {
		t, _ := ctx.Value(tracerKey{}).(*Tracer)
		if t == nil {
			return ctx, noopSpan
		}
		tr = t.newTrace()
	}
	s := &Span{trace: tr, name: name, id: tr.seq.Add(1), parent: parentID, start: time.Now()}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}
