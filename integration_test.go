package headroom_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"headroom"
	"headroom/internal/optimize"
	"headroom/internal/sim"
	"headroom/internal/slo"
	"headroom/internal/synth"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

// TestFullMethodologyPipeline walks the paper's complete loop on pool B
// through the Session API: measure production, plan a reduction, verify a
// synthetic workload, gate a change offline, run the reduction, and confirm
// the forecast QoS held.
func TestFullMethodologyPipeline(t *testing.T) {
	ctx := context.Background()
	pool := sim.PoolB()
	fleet := headroom.FleetConfig{
		DCs:               headroom.NineRegions(),
		Pools:             []headroom.PoolConfig{pool},
		WorkloadNoiseFrac: 0.03,
		Seed:              42,
	}
	s, err := headroom.New(ctx,
		headroom.WithFleet(fleet),
		headroom.WithPlanConfig(headroom.PlanConfig{LatencyBudgetMs: 5, Seed: 43}),
	)
	if err != nil {
		t.Fatalf("session: %v", err)
	}

	// --- Step 1-2: measure production and plan. ---
	agg, err := s.Simulate(ctx, 2)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	plans, err := s.Plan(ctx, agg)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	var dc1 headroom.PoolPlan
	for _, p := range plans {
		if p.DC == "DC 1" {
			dc1 = p
		}
	}
	if !dc1.Plannable || dc1.SavingsFrac <= 0.2 {
		t.Fatalf("DC 1 plan unusable: %+v", dc1)
	}

	// --- Step 3: build and verify a synthetic workload, replayed through
	// the same Source interface production records stream through. ---
	prodSeries, err := agg.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	profile, err := headroom.BuildProfile(prodSeries, pool.Mix, 20, 12, 0.25)
	if err != nil {
		t.Fatalf("build profile: %v", err)
	}
	sagg, err := s.Aggregate(ctx, headroom.NewSynthSource(pool, profile, 20, 44))
	if err != nil {
		t.Fatalf("aggregate synth source: %v", err)
	}
	synthSeries, err := sagg.PoolSeries("offline", "B")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := synth.Verify(prodSeries, synthSeries, pool.Mix, profile.Mix, synth.Tolerance{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !eq.Equivalent {
		t.Fatalf("synthetic workload failed verification: %+v", eq)
	}

	// --- Step 4: offline-gate a benign change before the reduction. ---
	rep, err := s.Validate(ctx, headroom.ValidateConfig{
		Pool: pool, Servers: 20,
		Loads:         []float64{150, 300, 450, 600},
		TicksPerLevel: 20, Seed: 45,
	}, headroom.Change{Name: "config-tune", Apply: func(rp headroom.ResponseParams) headroom.ResponseParams {
		rp.CPUIntercept *= 0.95
		return rp
	}})
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !rep.Acceptable {
		t.Fatal("benign change should pass the gate")
	}

	// --- Execute the planned reduction and check the forecast held. ---
	redAgg, err := s.Simulate(ctx, 2, headroom.Action{
		Pool: "B", DC: "DC 1", Tick: 0, SetServers: dc1.RecommendedServers,
	})
	if err != nil {
		t.Fatalf("reduced simulate: %v", err)
	}
	redSeries, err := redAgg.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	var lat []float64
	for _, ts := range redSeries {
		if ts.Servers > 0 {
			lat = append(lat, ts.LatencyMean)
		}
	}
	observedP95 := percentileOf(lat, 95)
	if math.Abs(observedP95-dc1.ForecastLatencyMs) > 2 {
		t.Errorf("observed p95 latency %v vs forecast %v: gap too large",
			observedP95, dc1.ForecastLatencyMs)
	}

	// --- SLO check on the reduced pool. ---
	sums, err := redAgg.ServerSummaries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	var avail float64
	for _, sum := range sums {
		avail += sum.Availability
	}
	avail /= float64(len(sums))
	sloRep, err := slo.Evaluate(slo.Set{
		Service: "B",
		Objectives: []slo.Objective{
			{Name: "p95 latency", Kind: slo.LatencyPercentile, Percentile: 95, Threshold: dc1.BaselineLatencyMs + 5},
		},
	}, redSeries, avail)
	if err != nil {
		t.Fatalf("slo: %v", err)
	}
	if !sloRep.Met {
		t.Errorf("reduced pool violates its SLO: %s", sloRep)
	}
}

// TestForecastDrivenDisasterRecovery chains the workload forecaster into
// the DR planner: predict next-day peaks per DC, then size every DC to
// survive any single-region failure.
func TestForecastDrivenDisasterRecovery(t *testing.T) {
	ctx := context.Background()
	pool := sim.PoolB()
	fleet := headroom.FleetConfig{
		DCs:               headroom.NineRegions(),
		Pools:             []headroom.PoolConfig{pool},
		WorkloadNoiseFrac: 0.03,
		Seed:              50,
	}
	s, err := headroom.New(ctx, headroom.WithFleet(fleet))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := s.Simulate(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	tpd := workload.TicksPerDay(workload.TickDuration)

	var caps []optimize.DCCapacity
	var model optimize.PoolModel
	for dcName, servers := range pool.Servers {
		series, err := agg.PoolSeries(dcName, "B")
		if err != nil {
			t.Fatal(err)
		}
		loads := make([]float64, 3*tpd)
		for _, ts := range series {
			if ts.Tick < len(loads) {
				loads[ts.Tick] = ts.TotalRPS
			}
		}
		fm, err := s.Forecast(ctx, loads, tpd)
		if err != nil {
			t.Fatalf("forecast %s: %v", dcName, err)
		}
		peak, err := fm.PeakOverHorizon(3*tpd, tpd, 2)
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, optimize.DCCapacity{
			DC: dcName, Servers: servers, PeakRPS: peak,
			Weight: regionWeight(dcName),
		})
		if model.Windows == 0 {
			model, err = optimize.FitPoolModel(series)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	plan, err := model.PlanDisasterRecovery(caps, 40)
	if err != nil {
		t.Fatalf("dr plan: %v", err)
	}
	if plan.TotalServers <= 0 {
		t.Fatal("empty DR plan")
	}
	// With only two DCs, each must be able to carry everything: required
	// counts well above the single-DC peak share.
	for _, r := range plan.PerDC {
		if r.Required <= 0 {
			t.Errorf("%s requires %d servers", r.DC, r.Required)
		}
	}
}

// TestTraceRoundTripThroughPipeline checks the capsim->capplan file path:
// records survive serialisation, and replaying the decoded trace through a
// ReplaySource-backed session gives the planner identical data.
func TestTraceRoundTripThroughPipeline(t *testing.T) {
	ctx := context.Background()
	fleet := headroom.FleetConfig{
		DCs:   headroom.NineRegions(),
		Pools: []headroom.PoolConfig{headroom.PoolB()},
		Seed:  60,
	}
	writer, err := headroom.New(ctx, headroom.WithFleet(fleet))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewCSVWriter(&buf)
	if err := writer.Stream(ctx, headroom.NewSimSource(fleet, 1), func(r headroom.Record) error {
		return w.Write(r)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := headroom.New(ctx,
		headroom.WithSource(headroom.NewReplaySource(recs)),
		headroom.WithPlanConfig(headroom.PlanConfig{Seed: 61}),
	)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := reader.Simulate(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := reader.Plan(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d, want 2", len(plans))
	}
	for _, p := range plans {
		if !p.Plannable {
			t.Errorf("pool %s@%s not plannable after round trip: %s", p.Pool, p.DC, p.Reason)
		}
	}
}

func percentileOf(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	if len(cp) == 0 {
		return math.NaN()
	}
	// simple nearest-rank percentile for test use
	n := len(cp)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	idx := int(p / 100 * float64(n-1))
	return cp[idx]
}

func regionWeight(dc string) float64 {
	for _, d := range workload.NineRegions() {
		if d.Name == dc {
			return d.Weight
		}
	}
	return 0
}
