package obs

// Structured logging: a slog handler that decorates every record with the
// trace_id/span_id of the context's active span and the context's job_id,
// so one grep on a trace ID yields every log line the request produced.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ContextHandler wraps a slog.Handler and injects trace_id, span_id and
// job_id attributes from the record's context.
type ContextHandler struct {
	Inner slog.Handler
}

// Enabled defers to the inner handler.
func (h ContextHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.Inner.Enabled(ctx, lvl)
}

// Handle adds the context's correlation attributes and delegates.
func (h ContextHandler) Handle(ctx context.Context, r slog.Record) error {
	if ctx != nil {
		if sp := ActiveSpan(ctx); sp.Enabled() {
			r.AddAttrs(
				slog.String("trace_id", sp.TraceID()),
				slog.Uint64("span_id", sp.SpanID()),
			)
		}
		if id := JobIDFrom(ctx); id != "" {
			r.AddAttrs(slog.String("job_id", id))
		}
	}
	return h.Inner.Handle(ctx, r)
}

// WithAttrs wraps the inner handler's WithAttrs.
func (h ContextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ContextHandler{Inner: h.Inner.WithAttrs(attrs)}
}

// WithGroup wraps the inner handler's WithGroup.
func (h ContextHandler) WithGroup(name string) slog.Handler {
	return ContextHandler{Inner: h.Inner.WithGroup(name)}
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a context-aware logger writing to w. format is "text"
// or "json"; NewLogger panics on anything else (validate flags first with
// ValidFormat).
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	switch format {
	case "json":
		inner = slog.NewJSONHandler(w, opts)
	case "text", "":
		inner = slog.NewTextHandler(w, opts)
	default:
		panic(fmt.Sprintf("obs: unknown log format %q", format))
	}
	return slog.New(ContextHandler{Inner: inner})
}

// ValidFormat reports whether format is an accepted -log-format value.
func ValidFormat(format string) bool {
	return format == "text" || format == "json" || format == ""
}

// NopLogger returns a logger that discards everything — the default for
// embedded servers in tests.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
