package optimize

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"headroom/internal/metrics"
	"headroom/internal/stats"
)

// quadPlant is a synthetic plant whose latency follows a known quadratic of
// per-server load, like the paper's Figure 7 pool with a 14 ms QoS limit.
type quadPlant struct {
	totalRPS float64
	lat      stats.Polynomial
	noise    float64
	rng      *rand.Rand
	observes int
}

func (p *quadPlant) Observe(_ context.Context, servers, ticks int) ([]metrics.TickStat, error) {
	p.observes++
	out := make([]metrics.TickStat, ticks)
	for i := range out {
		load := p.totalRPS * (1 + 0.05*p.rng.NormFloat64())
		per := load / float64(servers)
		out[i] = metrics.TickStat{
			Tick:         i,
			Servers:      servers,
			TotalRPS:     load,
			RPSPerServer: per,
			CPUMean:      0.03*per + 2,
			LatencyMean:  p.lat.Predict(per) + p.noise*p.rng.NormFloat64(),
		}
	}
	return out, nil
}

func TestRunRSMStopsAtQoSLimit(t *testing.T) {
	// Truth: latency 8 ms at the initial operating point, rising
	// quadratically; QoS limit 14 ms (the paper's Figure 7 line).
	plant := &quadPlant{
		totalRPS: 50000,
		lat:      stats.Polynomial{Coeffs: []float64{7, 0.001, 2e-5}},
		noise:    0.15,
		rng:      rand.New(rand.NewSource(1)),
	}
	res, err := RunRSM(context.Background(), plant, RSMConfig{
		InitialServers: 200,
		QoSLimitMs:     14,
		StepFrac:       0.10,
		ObserveTicks:   120,
		MaxIterations:  15,
		Seed:           2,
	})
	if err != nil {
		t.Fatalf("RunRSM: %v", err)
	}
	if res.Stopped != "qos-forecast" && res.Stopped != "qos-observed" {
		t.Errorf("stopped = %q, want a QoS stop", res.Stopped)
	}
	if res.FinalServers >= 200 {
		t.Errorf("no reduction achieved: %d", res.FinalServers)
	}
	if res.SavingsFrac <= 0.1 {
		t.Errorf("savings = %v, want > 0.1", res.SavingsFrac)
	}
	// The final configuration must actually satisfy the QoS limit under
	// the truth model.
	per := plant.totalRPS / float64(res.FinalServers)
	if truth := plant.lat.Predict(per); truth > 14 {
		t.Errorf("final config violates QoS: %v ms at %d servers", truth, res.FinalServers)
	}
	// Latency must be monotonically non-decreasing across iterations
	// (successive reductions increase per-server load), as in Figure 7.
	for i := 1; i < len(res.Iterations); i++ {
		if res.Iterations[i].ObservedLatencyMs < res.Iterations[i-1].ObservedLatencyMs-0.5 {
			t.Errorf("iteration %d latency %v dropped below previous %v",
				i, res.Iterations[i].ObservedLatencyMs, res.Iterations[i-1].ObservedLatencyMs)
		}
	}
}

func TestRunRSMMaxIterations(t *testing.T) {
	// Flat latency far below the limit: the loop exhausts MaxIterations.
	plant := &quadPlant{
		totalRPS: 1000,
		lat:      stats.Polynomial{Coeffs: []float64{5, 0, 1e-9}},
		noise:    0.05,
		rng:      rand.New(rand.NewSource(3)),
	}
	res, err := RunRSM(context.Background(), plant, RSMConfig{
		InitialServers: 100,
		QoSLimitMs:     100,
		StepFrac:       0.10,
		ObserveTicks:   60,
		MaxIterations:  5,
		Seed:           4,
	})
	if err != nil {
		t.Fatalf("RunRSM: %v", err)
	}
	if res.Stopped != "max-iterations" {
		t.Errorf("stopped = %q, want max-iterations", res.Stopped)
	}
	if len(res.Iterations) != 5 {
		t.Errorf("iterations = %d, want 5", len(res.Iterations))
	}
	if plant.observes != 5 {
		t.Errorf("observes = %d, want 5", plant.observes)
	}
}

type errPlant struct{}

func (errPlant) Observe(context.Context, int, int) ([]metrics.TickStat, error) {
	return nil, errors.New("boom")
}

func TestRunRSMErrors(t *testing.T) {
	if _, err := RunRSM(context.Background(), nil, RSMConfig{InitialServers: 10, QoSLimitMs: 10}); err == nil {
		t.Error("nil plant should error")
	}
	if _, err := RunRSM(context.Background(), errPlant{}, RSMConfig{InitialServers: 10, QoSLimitMs: 10}); err == nil {
		t.Error("plant failure should propagate")
	}
	p := &quadPlant{totalRPS: 100, lat: stats.Polynomial{Coeffs: []float64{1}}, rng: rand.New(rand.NewSource(1))}
	if _, err := RunRSM(context.Background(), p, RSMConfig{InitialServers: 1, QoSLimitMs: 10}); err == nil {
		t.Error("single server should error")
	}
	if _, err := RunRSM(context.Background(), p, RSMConfig{InitialServers: 10, QoSLimitMs: 0}); err == nil {
		t.Error("zero QoS limit should error")
	}
}

func TestRunRSMCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &quadPlant{totalRPS: 1000, lat: stats.Polynomial{Coeffs: []float64{5}}, rng: rand.New(rand.NewSource(1))}
	if _, err := RunRSM(ctx, p, RSMConfig{InitialServers: 10, QoSLimitMs: 10}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if p.observes != 0 {
		t.Errorf("cancelled run still observed %d times", p.observes)
	}
}
