package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, math.NaN()},
		{"single", []float64{42}, 42},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-1, -2, -3}, -2},
		{"mixed", []float64{-5, 5, 10, -10}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	tests := []struct {
		name    string
		in      []float64
		wantVar float64
	}{
		{"empty", nil, math.NaN()},
		{"single", []float64{3}, math.NaN()},
		{"constant", []float64{4, 4, 4, 4}, 0},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 32.0 / 7.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Variance(tt.in); !almostEqual(got, tt.wantVar, 1e-12) {
				t.Errorf("Variance(%v) = %v, want %v", tt.in, got, tt.wantVar)
			}
			wantSD := math.Sqrt(tt.wantVar)
			if got := StdDev(tt.in); !almostEqual(got, wantSD, 1e-12) {
				t.Errorf("StdDev(%v) = %v, want %v", tt.in, got, wantSD)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	in := []float64{3, -1, 7, 0, 7, -1}
	if got := Min(in); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(in); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty slice should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, math.NaN()},
		{"out of range low", []float64{1}, -1, math.NaN()},
		{"out of range high", []float64{1}, 101, math.NaN()},
		{"single any p", []float64{9}, 75, 9},
		{"median even", []float64{1, 2, 3, 4}, 50, 2.5},
		{"median odd", []float64{5, 1, 3}, 50, 3},
		{"p0 is min", []float64{4, 2, 8}, 0, 2},
		{"p100 is max", []float64{4, 2, 8}, 100, 8},
		{"interpolated", []float64{10, 20, 30, 40}, 25, 17.5},
		{"p95 of 1..100", seq(1, 100), 95, 95.05},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Percentile(tt.in, tt.p); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("Percentile(%v, %v) = %v, want %v", tt.in, tt.p, got, tt.want)
			}
		})
	}
}

func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, float64(i))
	}
	return out
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	want := []float64{5, 1, 4, 2, 3}
	Percentile(in, 50)
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("input mutated: %v", in)
		}
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	in := []float64{9, 3, 7, 1, 5, 8, 2}
	ps := []float64{5, 25, 50, 75, 95}
	got := Percentiles(in, ps...)
	for i, p := range ps {
		want := Percentile(in, p)
		if !almostEqual(got[i], want, 1e-12) {
			t.Errorf("Percentiles[%v] = %v, want %v", p, got[i], want)
		}
	}
}

func TestCovariancePearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10} // perfectly correlated
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatalf("Pearson: %v", err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
	if _, err := Pearson(xs, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Error("Pearson with zero-variance input should error")
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Error("Pearson with mismatched lengths should error")
	}
	if _, err := Covariance(nil, nil); err == nil {
		t.Error("Covariance of empty inputs should error")
	}
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	perfect := []float64{1, 2, 3, 4}
	r2, err := RSquared(ys, perfect)
	if err != nil || !almostEqual(r2, 1, 1e-12) {
		t.Errorf("RSquared perfect = %v, %v; want 1, nil", r2, err)
	}
	meanOnly := []float64{2.5, 2.5, 2.5, 2.5}
	r2, err = RSquared(ys, meanOnly)
	if err != nil || !almostEqual(r2, 0, 1e-12) {
		t.Errorf("RSquared mean predictor = %v, %v; want 0, nil", r2, err)
	}
	if _, err := RSquared(ys, perfect[:2]); err == nil {
		t.Error("RSquared mismatched lengths should error")
	}
	if _, err := RSquared(nil, nil); err == nil {
		t.Error("RSquared empty should error")
	}
	// Zero-variance observations.
	flat := []float64{5, 5, 5}
	r2, err = RSquared(flat, []float64{5, 5, 5})
	if err != nil || r2 != 1 {
		t.Errorf("RSquared flat perfect = %v, want 1", r2)
	}
	r2, err = RSquared(flat, []float64{4, 5, 6})
	if err != nil || r2 != 0 {
		t.Errorf("RSquared flat imperfect = %v, want 0", r2)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(seq(1, 100))
	if s.N != 100 {
		t.Errorf("N = %d, want 100", s.N)
	}
	if !almostEqual(s.Mean, 50.5, 1e-12) {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("Min/Max = %v/%v, want 1/100", s.Min, s.Max)
	}
	if !(s.P5 < s.P25 && s.P25 < s.P50 && s.P50 < s.P75 && s.P75 < s.P95) {
		t.Errorf("percentiles not monotone: %+v", s)
	}

	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("Summarize(nil) = %+v, want N=0 and NaN mean", empty)
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1 := Percentile(xs, p1)
		v2 := Percentile(xs, p2)
		return v1 <= v2 && v1 >= Min(xs) && v2 <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max] for any non-empty finite sample.
func TestMeanBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			t.Fatalf("mean %v outside [%v, %v]", m, Min(xs), Max(xs))
		}
	}
}

// Property: Summarize percentiles agree with a direct sort.
func TestSummarizeConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		s := Summarize(xs)
		sorted := make([]float64, n)
		copy(sorted, xs)
		sort.Float64s(sorted)
		if !almostEqual(s.P50, PercentileSorted(sorted, 50), 1e-9) {
			t.Fatalf("P50 mismatch: %v vs %v", s.P50, PercentileSorted(sorted, 50))
		}
		if s.Min != sorted[0] || s.Max != sorted[n-1] {
			t.Fatalf("min/max mismatch")
		}
	}
}
