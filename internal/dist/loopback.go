package dist

import (
	"net/http"
	"net/http/httptest"
)

// Loopback is an in-process http.RoundTripper that serves every request
// from a handler, bypassing sockets entirely. Tests and benchmarks use it
// to stand up a "cluster" of workers inside one process, and the dispatch
// benchmark uses it to measure pure coordination overhead (placement,
// hedging machinery, breaker accounting) without network noise.
//
// Cancellation is honoured: if the request context ends before the handler
// returns, RoundTrip reports the context error — exactly what a hedged or
// rerouted dispatch needs to abandon a slow attempt.
type Loopback struct {
	// Handler serves every request. Route by req.URL.Host inside the
	// handler to emulate multiple distinct workers.
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper.
func (l Loopback) RoundTrip(req *http.Request) (*http.Response, error) {
	done := make(chan *http.Response, 1)
	go func() {
		rec := httptest.NewRecorder()
		l.Handler.ServeHTTP(rec, req)
		resp := rec.Result()
		resp.Request = req
		done <- resp
	}()
	select {
	case resp := <-done:
		return resp, nil
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
}
