package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpearmanMonotone(t *testing.T) {
	// Perfectly monotone but non-linear: Spearman 1, Pearson < 1.
	xs := seq(1, 50)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x * x
	}
	rs, err := Spearman(xs, ys)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	if !almostEqual(rs, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", rs)
	}
	rp, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if rp >= 1-1e-9 {
		t.Errorf("Pearson = %v, expected < 1 for cubic", rp)
	}
}

func TestSpearmanInverseAndErrors(t *testing.T) {
	xs := seq(1, 20)
	ys := make([]float64, len(xs))
	for i := range xs {
		ys[i] = -xs[i]
	}
	rs, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rs, -1, 1e-12) {
		t.Errorf("Spearman = %v, want -1", rs)
	}
	if _, err := Spearman(xs, ys[:3]); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Spearman(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3}
	ys := []float64{1, 1, 2, 2, 3, 3}
	rs, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rs, 1, 1e-12) {
		t.Errorf("tied identical ranks = %v, want 1", rs)
	}
}

func TestTheilSenCleanLine(t *testing.T) {
	xs := seq(0, 40)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.028*x + 1.37
	}
	fit, err := TheilSen(xs, ys)
	if err != nil {
		t.Fatalf("TheilSen: %v", err)
	}
	if !almostEqual(fit.Slope, 0.028, 1e-9) || !almostEqual(fit.Intercept, 1.37, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 1-1e-9 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestTheilSenOutlierResistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := seq(0, 99)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 5 + 0.2*rng.NormFloat64()
	}
	// 25% gross outliers.
	for i := 0; i < 25; i++ {
		ys[rng.Intn(len(ys))] += 200
	}
	robust, err := TheilSen(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust.Slope-2) > 0.05 {
		t.Errorf("Theil-Sen slope = %v, want ~2", robust.Slope)
	}
	if math.Abs(robust.Slope-2) >= math.Abs(ols.Slope-2) {
		t.Errorf("Theil-Sen (%v) should beat OLS (%v) under outliers", robust.Slope, ols.Slope)
	}
}

func TestTheilSenErrors(t *testing.T) {
	if _, err := TheilSen([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := TheilSen([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := TheilSen([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance should error")
	}
}

func TestMAD(t *testing.T) {
	if got := MAD([]float64{1, 2, 3, 4, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD([]float64{7, 7, 7}); got != 0 {
		t.Errorf("constant MAD = %v, want 0", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("empty MAD should be NaN")
	}
	// Robustness: one huge outlier barely moves it.
	clean := MAD(seq(1, 101))
	dirty := MAD(append(seq(1, 100), 1e9))
	if math.Abs(clean-dirty) > 1.0 {
		t.Errorf("MAD moved from %v to %v under one outlier", clean, dirty)
	}
}

func TestWinsorizedMean(t *testing.T) {
	xs := append(seq(1, 99), 1e6) // one wild spike
	plain := Mean(xs)
	w, err := WinsorizedMean(xs, 0.05)
	if err != nil {
		t.Fatalf("WinsorizedMean: %v", err)
	}
	if w >= plain {
		t.Errorf("winsorized %v should be below contaminated mean %v", w, plain)
	}
	if w < 45 || w > 60 {
		t.Errorf("winsorized mean = %v, want ~50", w)
	}
	// frac 0 is the plain mean.
	w0, err := WinsorizedMean(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w0, plain, 1e-6) {
		t.Errorf("frac-0 winsorized = %v, want %v", w0, plain)
	}
	if _, err := WinsorizedMean(nil, 0.1); err == nil {
		t.Error("empty should error")
	}
	if _, err := WinsorizedMean(xs, 0.5); err == nil {
		t.Error("frac >= 0.5 should error")
	}
}
