package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistogramBasics(t *testing.T) {
	xs := []float64{0, 10, 20, 30, 99, 100, 150, -5}
	h, err := NewHistogram(xs, 10, 0, 100)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if h.Total != len(xs) {
		t.Errorf("Total = %d, want %d", h.Total, len(xs))
	}
	// -5 clamps into bin 0; 150 and 100 clamp into bin 9.
	if h.Bins[0].Count != 2 { // 0 and -5
		t.Errorf("bin 0 count = %d, want 2", h.Bins[0].Count)
	}
	if h.Bins[9].Count != 3 { // 99, 100, 150
		t.Errorf("bin 9 count = %d, want 3", h.Bins[9].Count)
	}
	var sum int
	for _, b := range h.Bins {
		sum += b.Count
	}
	if sum != h.Total {
		t.Errorf("bin counts sum %d != total %d", sum, h.Total)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(nil, 5, 1, 1); err == nil {
		t.Error("empty range should error")
	}
}

func TestHistogramFractions(t *testing.T) {
	xs := []float64{5, 15, 15, 25}
	h, err := NewHistogram(xs, 3, 0, 30)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	fr := h.Fractions()
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if !almostEqual(fr[i], want[i], 1e-12) {
			t.Errorf("fraction[%d] = %v, want %v", i, fr[i], want[i])
		}
	}
	if got := h.FractionAbove(10); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("FractionAbove(10) = %v, want 0.75", got)
	}
	empty, _ := NewHistogram(nil, 3, 0, 30)
	if got := empty.FractionAbove(0); got != 0 {
		t.Errorf("empty FractionAbove = %v, want 0", got)
	}
	for _, f := range empty.Fractions() {
		if f != 0 {
			t.Error("empty Fractions should be zero")
		}
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty ECDF should error")
	}
}

func TestECDFQuantile(t *testing.T) {
	e, err := NewECDF([]float64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {1, 50}, {2, 50}, {-1, 10},
	}
	for _, tt := range tests {
		if got := e.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestSampleCDFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	curve := e.SampleCDF(50)
	if len(curve) != 50 {
		t.Fatalf("len = %d, want 50", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Frac < curve[i-1].Frac {
			t.Fatalf("CDF not monotone at %d", i)
		}
		if curve[i].X <= curve[i-1].X {
			t.Fatalf("xs not increasing at %d", i)
		}
	}
	if curve[len(curve)-1].Frac != 1 {
		t.Errorf("last CDF value = %v, want 1", curve[len(curve)-1].Frac)
	}
	// SampleCDF with n < 2 clamps to 2 points.
	if got := e.SampleCDF(1); len(got) != 2 {
		t.Errorf("SampleCDF(1) len = %d, want 2", len(got))
	}
}

// Property: ECDF.At is monotone and bounded in [0, 1], and
// At(Quantile(q)) >= q.
func TestECDFProperties(t *testing.T) {
	f := func(raw []float64, q8 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		q := float64(q8) / 255
		v := e.Quantile(q)
		return e.At(v) >= q-1e-12 && e.At(v) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
