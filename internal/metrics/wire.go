package metrics

// Wire codec for Aggregator: the serialization that lets a shard be
// aggregated on one machine and merged on another (internal/dist). The
// format is binary and exact — float64 values travel as their IEEE-754 bit
// patterns — so a decoded aggregator is indistinguishable from the original
// and distributed merges stay bit-identical to single-process runs. The
// encoding is also deterministic (pools sorted by key, ticks by index,
// servers by name), so equal aggregators encode to equal bytes.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// wireVersion guards against decoding a payload produced by an incompatible
// build; bump it whenever the accumulator layout changes.
const wireVersion = 1

// wireMagic distinguishes aggregator payloads from arbitrary bytes early.
var wireMagic = [4]byte{'H', 'A', 'G', 'G'}

// MarshalBinary serializes the aggregator's full accumulated state.
func (a *Aggregator) MarshalBinary() ([]byte, error) {
	keys := a.Pools() // sorted: deterministic encoding
	buf := make([]byte, 0, 1024)
	buf = append(buf, wireMagic[:]...)
	buf = appendUint32(buf, wireVersion)
	buf = appendUint32(buf, uint32(len(keys)))
	for _, key := range keys {
		p := a.pools[key]
		buf = appendString(buf, key.DC)
		buf = appendString(buf, key.Pool)

		ticks := make([]int, 0, len(p.ticks))
		for tick := range p.ticks {
			ticks = append(ticks, tick)
		}
		sort.Ints(ticks)
		buf = appendUint32(buf, uint32(len(ticks)))
		for _, tick := range ticks {
			t := p.ticks[tick]
			buf = appendUint32(buf, uint32(tick))
			buf = appendUint32(buf, uint32(t.servers))
			for _, v := range []float64{t.rps, t.cpu, t.latency, t.netBytes,
				t.netPkts, t.memPages, t.diskQueue, t.diskRead, t.errs} {
				buf = appendFloat(buf, v)
			}
		}

		names := make([]string, 0, len(p.servers))
		for name := range p.servers {
			names = append(names, name)
		}
		sort.Strings(names)
		buf = appendUint32(buf, uint32(len(names)))
		for _, name := range names {
			s := p.servers[name]
			buf = appendString(buf, name)
			buf = appendString(buf, s.generation)
			buf = appendUint32(buf, uint32(s.online))
			buf = appendUint32(buf, uint32(s.windows))
			// The cpu slice keeps its append order: percentile summaries are
			// computed over a sorted copy, but preserving order keeps the
			// decoded accumulator byte-for-byte equal to the original.
			buf = appendUint32(buf, uint32(len(s.cpu)))
			for _, v := range s.cpu {
				buf = appendFloat(buf, v)
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary replaces the aggregator's state with the decoded payload.
// It works on a zero Aggregator as well as one built with NewAggregator.
func (a *Aggregator) UnmarshalBinary(data []byte) error {
	d := &wireDecoder{buf: data}
	var magic [4]byte
	copy(magic[:], d.bytes(4))
	if magic != wireMagic {
		return fmt.Errorf("metrics: not an aggregator payload (bad magic)")
	}
	if v := d.uint32(); v != wireVersion {
		return fmt.Errorf("metrics: aggregator wire version %d, want %d", v, wireVersion)
	}
	// Count prefixes come off the wire before the data they describe, so each
	// is bounded by the bytes actually present (divided by the smallest
	// possible encoding of one element) before it sizes an allocation or a
	// loop — a forged prefix must fail fast, not reserve gigabytes or panic.
	npools := d.count(16) // ≥ 2 string lengths + tick and server counts
	pools := make(map[PoolKey]*poolAcc, npools)
	for i := 0; i < npools && d.err == nil; i++ {
		key := PoolKey{DC: d.string(), Pool: d.string()}
		p := &poolAcc{ticks: make(map[int]*tickAcc), servers: make(map[string]*serverAcc)}

		nticks := d.count(80) // 2 uint32s + 9 float64s
		for j := 0; j < nticks && d.err == nil; j++ {
			tick := int(d.uint32())
			t := &tickAcc{servers: int(d.uint32())}
			t.rps = d.float()
			t.cpu = d.float()
			t.latency = d.float()
			t.netBytes = d.float()
			t.netPkts = d.float()
			t.memPages = d.float()
			t.diskQueue = d.float()
			t.diskRead = d.float()
			t.errs = d.float()
			p.ticks[tick] = t
		}

		nservers := d.count(20) // ≥ 2 string lengths + 3 uint32s
		for j := 0; j < nservers && d.err == nil; j++ {
			name := d.string()
			s := &serverAcc{generation: d.string()}
			s.online = int(d.uint32())
			s.windows = int(d.uint32())
			ncpu := d.count(8)
			if d.err == nil && ncpu > 0 {
				s.cpu = make([]float64, ncpu)
				for k := range s.cpu {
					s.cpu[k] = d.float()
				}
			}
			p.servers[name] = s
		}
		pools[key] = p
	}
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("metrics: %d trailing bytes after aggregator payload", d.remaining())
	}
	a.pools = pools
	return nil
}

// --- primitive encoding ---------------------------------------------------

func appendUint32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendString(buf []byte, s string) []byte {
	buf = appendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// wireDecoder reads the primitives back, latching the first error so the
// decode loops stay linear instead of error-checking every field.
type wireDecoder struct {
	buf []byte
	off int
	err error
}

func (d *wireDecoder) remaining() int { return len(d.buf) - d.off }

func (d *wireDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.remaining() < n {
		d.err = fmt.Errorf("metrics: truncated aggregator payload (want %d bytes, have %d)", n, d.remaining())
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *wireDecoder) uint32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// count reads an element-count prefix and validates it against the bytes
// still in the buffer, where min is the smallest possible encoded size of
// one element. Oversized or wrapped-negative counts latch an error instead
// of sizing an allocation.
func (d *wireDecoder) count(min int) int {
	n := int(int32(d.uint32()))
	if d.err != nil {
		return 0
	}
	if n < 0 || n > d.remaining()/min {
		d.err = fmt.Errorf("metrics: corrupt aggregator payload (count %d needs %d+ bytes, have %d)", n, n*min, d.remaining())
		return 0
	}
	return n
}

// float rejects NaN and ±Inf: accumulated simulation state is always
// finite, so a non-finite value marks a corrupt payload. Letting it through
// would poison every aggregate it is merged into.
func (d *wireDecoder) float() float64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(b))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		d.err = fmt.Errorf("metrics: non-finite value in aggregator payload")
		return 0
	}
	return v
}

func (d *wireDecoder) string() string {
	n := int(d.uint32())
	if d.err == nil && n > d.remaining() {
		d.err = fmt.Errorf("metrics: truncated aggregator payload (string of %d bytes, have %d)", n, d.remaining())
		return ""
	}
	return string(d.bytes(n))
}
