package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tracer := NewTracer(4)
	ctx := WithTracer(context.Background(), tracer)

	ctx, root := StartSpan(ctx, "root", Str("kind", "plan"))
	if !root.Enabled() {
		t.Fatal("root span should be enabled under a tracer")
	}
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild", Int("shard", 3))
	grand.End()
	child.End()
	root.SetAttr(Bool("degraded", false))
	root.End()

	td, ok := tracer.Trace(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not retained", root.TraceID())
	}
	if len(td.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	if byName["root"].ParentID != 0 {
		t.Errorf("root should have no parent, got %d", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Errorf("child parent = %d, want root id %d", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Errorf("grandchild parent = %d, want child id %d", byName["grandchild"].ParentID, byName["child"].SpanID)
	}
	if got := byName["grandchild"].Attrs.Map()["shard"]; got != int64(3) {
		t.Errorf("grandchild shard attr = %v, want 3", got)
	}
}

func TestSpanSiblingsShareTrace(t *testing.T) {
	tracer := NewTracer(4)
	ctx := WithTracer(context.Background(), tracer)
	ctx, root := StartSpan(ctx, "root")
	_, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx, "b")
	if a.TraceID() != root.TraceID() || b.TraceID() != root.TraceID() {
		t.Fatal("siblings must share the root's trace")
	}
	if a.SpanID() == b.SpanID() {
		t.Fatal("sibling span IDs must differ")
	}
	a.End()
	b.End()
	root.End()
}

func TestDisabledSpanIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "nothing", Str("k", "v"))
	if sp.Enabled() {
		t.Fatal("span without a tracer must be disabled")
	}
	if sp.TraceID() != "" || sp.SpanID() != 0 {
		t.Fatal("disabled span must have empty IDs")
	}
	// All methods must be safe no-ops.
	sp.SetAttr(Int("n", 1))
	sp.AddInt("n", 1)
	sp.RecordError(errors.New("x"))
	sp.Event("e", time.Now(), time.Second)
	sp.End()
	sp.End()
	if got := ActiveSpan(ctx); got.Enabled() {
		t.Fatal("context must not carry an enabled span")
	}
	var nilSpan *Span
	if nilSpan.Enabled() {
		t.Fatal("nil span must be disabled")
	}
	nilSpan.End() // must not panic
}

func TestDisabledStartSpanAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "x", Str("pool", "B"), Int("shard", 1))
		sp.End()
	})
	if allocs > 2 {
		t.Fatalf("disabled StartSpan allocates %v times, budget is 2", allocs)
	}
}

func TestEndIdempotent(t *testing.T) {
	tracer := NewTracer(2)
	ctx := WithTracer(context.Background(), tracer)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	sp.End()
	sp.End()
	td, _ := tracer.Trace(sp.TraceID())
	if len(td.Spans) != 1 {
		t.Fatalf("idempotent End recorded %d spans, want 1", len(td.Spans))
	}
}

func TestAddIntAccumulates(t *testing.T) {
	tracer := NewTracer(2)
	ctx := WithTracer(context.Background(), tracer)
	_, sp := StartSpan(ctx, "retries")
	sp.AddInt("retries", 1)
	sp.AddInt("retries", 1)
	sp.AddInt("retries", 2)
	sp.End()
	td, _ := tracer.Trace(sp.TraceID())
	if got := td.Spans[0].Attrs.Map()["retries"]; got != int64(4) {
		t.Fatalf("retries attr = %v, want 4", got)
	}
}

func TestEventRecordsCompletedChild(t *testing.T) {
	tracer := NewTracer(2)
	ctx := WithTracer(context.Background(), tracer)
	_, sp := StartSpan(ctx, "job")
	start := time.Now().Add(-50 * time.Millisecond)
	sp.Event("queued", start, 50*time.Millisecond, Int64("queue_wait_ns", 50e6))
	sp.End()
	td, _ := tracer.Trace(sp.TraceID())
	if len(td.Spans) != 2 {
		t.Fatalf("want 2 spans (event + job), got %d", len(td.Spans))
	}
	var ev SpanData
	for _, sd := range td.Spans {
		if sd.Name == "queued" {
			ev = sd
		}
	}
	if ev.ParentID != sp.SpanID() {
		t.Errorf("event parent = %d, want %d", ev.ParentID, sp.SpanID())
	}
	if ev.Duration != 50*time.Millisecond {
		t.Errorf("event duration = %s, want 50ms", ev.Duration)
	}
}

func TestTracerRingBound(t *testing.T) {
	tracer := NewTracer(3)
	ctx := WithTracer(context.Background(), tracer)
	var ids []string
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("t%d", i))
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	got := tracer.Traces()
	if len(got) != 3 {
		t.Fatalf("ring should retain 3 traces, got %d", len(got))
	}
	// Newest first: t4, t3, t2.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if got[i].TraceID != want {
			t.Errorf("traces[%d] = %s, want %s", i, got[i].TraceID, want)
		}
	}
	if _, ok := tracer.Trace(ids[0]); ok {
		t.Error("oldest trace should have been evicted")
	}
}

func TestMaxSpansPerTraceBound(t *testing.T) {
	tracer := NewTracer(1)
	ctx := WithTracer(context.Background(), tracer)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "leaf")
		sp.End()
	}
	root.End()
	td, _ := tracer.Trace(root.TraceID())
	if len(td.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want bound %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.Dropped != 11 { // 10 extra leaves + the root
		t.Fatalf("dropped = %d, want 11", td.Dropped)
	}
}

func TestAttrListJSON(t *testing.T) {
	l := AttrList{Str("pool", "B"), Int("shard", 2), Bool("degraded", true), Float("frac", 0.5)}
	b, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"pool":"B","shard":2,"degraded":true,"frac":0.5}`
	if string(b) != want {
		t.Fatalf("AttrList JSON = %s, want %s", b, want)
	}
	var empty AttrList
	if b, _ := json.Marshal(empty); string(b) != "{}" {
		t.Fatalf("empty AttrList JSON = %s, want {}", b)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q is not 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestWriteChrome(t *testing.T) {
	tracer := NewTracer(2)
	ctx := WithTracer(context.Background(), tracer)
	ctx, root := StartSpan(ctx, "session.aggregate", Int("shards", 2))
	_, child := StartSpan(ctx, "simulate.pool", Str("pool", "B"))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tracer.Traces()...); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  uint64         `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var sawMeta, sawPool, sawRoot bool
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			sawMeta = true
		case ev.Name == "simulate.pool":
			sawPool = true
			if ev.Ph != "X" {
				t.Errorf("span event ph = %q, want X", ev.Ph)
			}
			if ev.Args["pool"] != "B" {
				t.Errorf("pool arg = %v, want B", ev.Args["pool"])
			}
			if ev.Args["parent_span"] == nil {
				t.Error("child span should carry parent_span arg")
			}
		case ev.Name == "session.aggregate":
			sawRoot = true
		}
	}
	if !sawMeta || !sawPool || !sawRoot {
		t.Fatalf("missing events: meta=%v pool=%v root=%v", sawMeta, sawPool, sawRoot)
	}
}

func TestJobIDContext(t *testing.T) {
	ctx := WithJobID(context.Background(), "j-000001")
	if got := JobIDFrom(ctx); got != "j-000001" {
		t.Fatalf("JobIDFrom = %q", got)
	}
	if got := JobIDFrom(context.Background()); got != "" {
		t.Fatalf("JobIDFrom(empty) = %q, want empty", got)
	}
}

func TestContextLogger(t *testing.T) {
	tracer := NewTracer(2)
	ctx := WithTracer(context.Background(), tracer)
	ctx, sp := StartSpan(ctx, "op")
	ctx = WithJobID(ctx, "j-000042")

	var buf bytes.Buffer
	logger := NewLogger(&buf, "json", 0)
	logger.InfoContext(ctx, "hello", "k", "v")
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%s)", err, buf.String())
	}
	if rec["trace_id"] != sp.TraceID() {
		t.Errorf("trace_id = %v, want %s", rec["trace_id"], sp.TraceID())
	}
	if rec["job_id"] != "j-000042" {
		t.Errorf("job_id = %v", rec["job_id"])
	}
	if rec["span_id"] == nil {
		t.Error("span_id missing from log record")
	}
}

func TestTextLoggerOmitsIDsWithoutTrace(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "text", 0)
	logger.Info("plain")
	if s := buf.String(); strings.Contains(s, "trace_id") {
		t.Fatalf("untraced log line should not carry trace_id: %s", s)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR", "": "INFO",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %s, want %s", in, lvl, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
}

// BenchmarkSpanDisabled is the CI allocation/latency gate for instrumented
// hot paths running without a tracer.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench")
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tracer := NewTracer(8)
	ctx := WithTracer(context.Background(), tracer)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench", Str("pool", "B"))
		sp.End()
	}
}
