package baseline

import (
	"fmt"
	"math"
)

// AutoscalerConfig is a reactive utilisation-band autoscaler of the kind the
// paper's §I argues cannot serve large low-latency services: it reacts after
// the fact, and real capacity changes take minutes (service start-up, JIT,
// cache priming) to weeks (procurement), so during diurnal swings it either
// lags demand or holds excess.
type AutoscalerConfig struct {
	// TargetLow and TargetHigh bound the desired CPU utilisation band
	// (percent).
	TargetLow  float64
	TargetHigh float64
	// MinServers and MaxServers clamp the fleet size.
	MinServers int
	MaxServers int
	// ProvisionDelayTicks is how many ticks a scale-out takes to become
	// effective (start-up, JIT, cache priming).
	ProvisionDelayTicks int
	// CooldownTicks is the minimum spacing between scaling decisions.
	CooldownTicks int
	// StepFrac is the relative size of each scaling step (default 0.1).
	StepFrac float64
}

func (c AutoscalerConfig) validate() error {
	if c.TargetLow <= 0 || c.TargetHigh <= c.TargetLow || c.TargetHigh >= 100 {
		return fmt.Errorf("baseline: invalid utilisation band [%v, %v]", c.TargetLow, c.TargetHigh)
	}
	if c.MinServers <= 0 || c.MaxServers < c.MinServers {
		return fmt.Errorf("baseline: invalid server bounds [%d, %d]", c.MinServers, c.MaxServers)
	}
	if c.ProvisionDelayTicks < 0 || c.CooldownTicks < 0 {
		return fmt.Errorf("baseline: negative delays")
	}
	return nil
}

// ScaleDecision records one autoscaler action.
type ScaleDecision struct {
	Tick       int
	From, To   int
	Triggering float64 // observed CPU that triggered the action
}

// AutoscaleResult summarises a simulated autoscaler run.
type AutoscaleResult struct {
	Decisions []ScaleDecision
	// ServerTicks is the integral of provisioned servers over time (the
	// cost measure).
	ServerTicks int
	// SLOViolations counts ticks whose latency exceeded the SLO.
	SLOViolations int
	// PeakServers is the maximum fleet size reached.
	PeakServers int
}

// ResponseFunc maps (offered total RPS, active servers) to the pool's
// (cpu%, latency ms) — the plant the autoscaler steers. It abstracts the
// simulator for unit testing.
type ResponseFunc func(totalRPS float64, servers int) (cpuPct, latencyMs float64)

// SimulateAutoscaler runs the reactive loop over an offered-load series and
// scores cost and SLO compliance. Scale-outs only take effect after the
// provisioning delay; scale-ins are immediate (draining is fast).
func SimulateAutoscaler(cfg AutoscalerConfig, offered []float64, initial int, sloMs float64, respond ResponseFunc) (AutoscaleResult, error) {
	if err := cfg.validate(); err != nil {
		return AutoscaleResult{}, err
	}
	if respond == nil {
		return AutoscaleResult{}, fmt.Errorf("baseline: nil response function")
	}
	if len(offered) == 0 {
		return AutoscaleResult{}, fmt.Errorf("baseline: empty load series")
	}
	if initial < cfg.MinServers || initial > cfg.MaxServers {
		return AutoscaleResult{}, fmt.Errorf("baseline: initial %d outside [%d, %d]", initial, cfg.MinServers, cfg.MaxServers)
	}
	stepFrac := cfg.StepFrac
	if stepFrac <= 0 {
		stepFrac = 0.1
	}

	var res AutoscaleResult
	servers := initial
	pendingServers := 0 // scale-out in flight
	pendingUntil := -1
	lastDecision := -1 << 30

	for tick, load := range offered {
		if pendingServers > 0 && tick >= pendingUntil {
			servers += pendingServers
			pendingServers = 0
		}
		cpu, lat := respond(load, servers)
		res.ServerTicks += servers + pendingServers // in-flight capacity is paid for
		if servers > res.PeakServers {
			res.PeakServers = servers
		}
		if lat > sloMs {
			res.SLOViolations++
		}
		if tick-lastDecision < cfg.CooldownTicks {
			continue
		}
		step := int(math.Max(1, float64(servers)*stepFrac))
		switch {
		case cpu > cfg.TargetHigh && servers+pendingServers < cfg.MaxServers:
			add := step
			if servers+pendingServers+add > cfg.MaxServers {
				add = cfg.MaxServers - servers - pendingServers
			}
			if add > 0 {
				res.Decisions = append(res.Decisions, ScaleDecision{Tick: tick, From: servers, To: servers + add, Triggering: cpu})
				pendingServers += add
				pendingUntil = tick + cfg.ProvisionDelayTicks
				lastDecision = tick
			}
		case cpu < cfg.TargetLow && servers > cfg.MinServers && pendingServers == 0:
			remove := step
			if servers-remove < cfg.MinServers {
				remove = servers - cfg.MinServers
			}
			if remove > 0 {
				res.Decisions = append(res.Decisions, ScaleDecision{Tick: tick, From: servers, To: servers - remove, Triggering: cpu})
				servers -= remove
				lastDecision = tick
			}
		}
	}
	return res, nil
}

// StaticPlanCost returns the cost (server-ticks) and SLO violations of a
// fixed allocation over the same load series, for comparison with the
// autoscaler and with the black-box plan.
func StaticPlanCost(servers int, offered []float64, sloMs float64, respond ResponseFunc) (AutoscaleResult, error) {
	if servers <= 0 {
		return AutoscaleResult{}, fmt.Errorf("baseline: non-positive server count %d", servers)
	}
	if respond == nil {
		return AutoscaleResult{}, fmt.Errorf("baseline: nil response function")
	}
	var res AutoscaleResult
	res.PeakServers = servers
	for _, load := range offered {
		_, lat := respond(load, servers)
		res.ServerTicks += servers
		if lat > sloMs {
			res.SLOViolations++
		}
	}
	return res, nil
}
