package headroom

// Ordering edge cases of mergePartial, the merge step distributed
// degradation rests on: failed shards must be reported in shard order with
// their pool attribution regardless of how failures interleave with
// survivors, and the survivors must merge in shard order (what keeps
// degraded distributed results byte-identical to degraded local results).

import (
	"context"
	"errors"
	"testing"

	"headroom/internal/metrics"
)

// namedShard is a no-op Source carrying pool names, standing in for one
// shard of a fan-out.
type namedShard struct{ pools []string }

func (n namedShard) Stream(context.Context, func(Record) error) error { return nil }
func (n namedShard) PoolNames() []string                              { return n.pools }

// poolAgg builds an aggregator holding one record of the named pool, so
// merged aggregators are distinguishable by their pool keys.
func poolAgg(pool string) *Aggregator {
	a := metrics.NewAggregator()
	a.Add(Record{Tick: 0, DC: "dc1", Pool: pool, Server: "s1", Online: true, RPS: 1})
	return a
}

func mergeFixture(n int) ([]Source, []*Aggregator) {
	subs := make([]Source, n)
	aggs := make([]*Aggregator, n)
	names := []string{"A", "B", "C", "D", "E", "F"}
	for i := 0; i < n; i++ {
		subs[i] = namedShard{pools: []string{names[i]}}
		aggs[i] = poolAgg(names[i])
	}
	return subs, aggs
}

func TestMergePartialAllShardsFailed(t *testing.T) {
	subs, _ := mergeFixture(3)
	errs := []error{errors.New("e0"), errors.New("e1"), errors.New("e2")}
	// A failed shard's aggregator slot is nil in the real fan-out.
	out, err := mergePartial(context.Background(), subs, []*Aggregator{nil, nil, nil}, errs)
	if out != nil {
		t.Errorf("all-failed merge returned an aggregator with pools %v", out.Pools())
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if pe.Shards != 3 || len(pe.Failed) != 3 {
		t.Fatalf("PartialError = %d failed of %d shards, want 3 of 3", len(pe.Failed), pe.Shards)
	}
	for i, f := range pe.Failed {
		if f.Shard != i {
			t.Errorf("Failed[%d].Shard = %d, want shard order preserved", i, f.Shard)
		}
		if f.Err != errs[i] {
			t.Errorf("Failed[%d] carries %v, want %v", i, f.Err, errs[i])
		}
	}
	if got := pe.FailedPools(); len(got) != 3 || got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Errorf("FailedPools = %v, want [A B C]", got)
	}
}

func TestMergePartialSingleSurvivor(t *testing.T) {
	subs, aggs := mergeFixture(3)
	errs := []error{errors.New("e0"), nil, errors.New("e2")}
	aggs[0], aggs[2] = nil, nil
	out, err := mergePartial(context.Background(), subs, aggs, errs)
	if out != aggs[1] {
		t.Errorf("survivor merge did not return the sole surviving aggregator")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Failed) != 2 || pe.Failed[0].Shard != 0 || pe.Failed[1].Shard != 2 {
		t.Errorf("Failed = %+v, want shards [0 2] in order", pe.Failed)
	}
	if got := pe.FailedPools(); len(got) != 2 || got[0] != "A" || got[1] != "C" {
		t.Errorf("FailedPools = %v, want [A C]", got)
	}
}

func TestMergePartialInterleavedFailures(t *testing.T) {
	subs, aggs := mergeFixture(6)
	errs := make([]error, 6)
	for _, i := range []int{0, 2, 4} {
		errs[i] = errors.New("boom")
		aggs[i] = nil
	}
	first := aggs[1] // first survivor anchors the merge
	out, err := mergePartial(context.Background(), subs, aggs, errs)
	if out != first {
		t.Errorf("merge did not anchor on the first surviving shard")
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	wantFailed := []int{0, 2, 4}
	if len(pe.Failed) != len(wantFailed) {
		t.Fatalf("failed shards = %d, want %d", len(pe.Failed), len(wantFailed))
	}
	for i, f := range pe.Failed {
		if f.Shard != wantFailed[i] {
			t.Errorf("Failed[%d].Shard = %d, want %d (shard order)", i, f.Shard, wantFailed[i])
		}
	}
	// Survivors B, D, F merged in shard order into the output.
	pools := map[string]bool{}
	for _, k := range out.Pools() {
		pools[k.Pool] = true
	}
	for _, p := range []string{"B", "D", "F"} {
		if !pools[p] {
			t.Errorf("merged output missing surviving pool %s (have %v)", p, out.Pools())
		}
	}
	for _, p := range []string{"A", "C", "E"} {
		if pools[p] {
			t.Errorf("merged output contains failed pool %s", p)
		}
	}
}

func TestMergePartialNoFailures(t *testing.T) {
	subs, aggs := mergeFixture(2)
	out, err := mergePartial(context.Background(), subs, aggs, make([]error, 2))
	if err != nil {
		t.Fatalf("err = %v, want nil when every shard survived", err)
	}
	if len(out.Pools()) != 2 {
		t.Errorf("merged pools = %v, want both shards merged", out.Pools())
	}
}

func TestMergePartialCancelledContext(t *testing.T) {
	subs, aggs := mergeFixture(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mergePartial(ctx, subs, aggs, make([]error, 2)); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
