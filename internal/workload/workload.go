// Package workload models the request traffic offered to a global online
// service: diurnal per-datacenter patterns, surge events (including the
// paper's "natural experiments" — unplanned datacenter failovers that
// multiply the surviving datacenters' load), and request mixes used to build
// reproducible synthetic workloads for offline validation.
//
// The package is purely functional over a discrete tick timeline; all noise
// is injected by callers with their own seeded sources so simulations stay
// deterministic.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// TickDuration is the default metric window used throughout the
// reproduction: the paper aggregates performance counters over 120-second
// windows.
const TickDuration = 120 * time.Second

// TicksPerDay returns the number of ticks of the given duration in one day.
func TicksPerDay(tick time.Duration) int {
	if tick <= 0 {
		tick = TickDuration
	}
	return int(24 * time.Hour / tick)
}

// Pattern describes the diurnal load curve of a service in one region.
// The instantaneous load factor follows a raised cosine with the requested
// peak-to-trough ratio, which matches the "diurnal global online service
// workloads" the paper cites.
type Pattern struct {
	// BaseRPS is the daily mean request rate.
	BaseRPS float64
	// PeakToTrough is the ratio between the daily maximum and minimum.
	// Values <= 1 produce a flat pattern.
	PeakToTrough float64
	// PeakHour is the local hour-of-day (0..24) at which load peaks.
	PeakHour float64
}

// At returns the deterministic load at the given fraction of the local day
// (0 <= dayFrac < 1, where 0 is local midnight).
func (p Pattern) At(dayFrac float64) float64 {
	if p.PeakToTrough <= 1 {
		return p.BaseRPS
	}
	amp := (p.PeakToTrough - 1) / (p.PeakToTrough + 1)
	phase := 2 * math.Pi * (dayFrac - p.PeakHour/24)
	return p.BaseRPS * (1 + amp*math.Cos(phase))
}

// Datacenter is one geographic region serving a share of global traffic.
type Datacenter struct {
	// Name identifies the region ("DC 1" .. "DC 9" in the paper's charts).
	Name string
	// UTCOffset shifts the local diurnal pattern.
	UTCOffset time.Duration
	// Weight is the share of global traffic routed to this datacenter;
	// weights need not sum to 1 (they are normalised by consumers).
	Weight float64
}

// Event is a traffic multiplier applied to specific datacenters over a tick
// interval [StartTick, EndTick). Events model both unplanned capacity events
// (a failed region's traffic landing on survivors) and organic surges (the
// paper's pool B experiment coincided with a production traffic increase).
type Event struct {
	Name      string
	StartTick int
	EndTick   int
	// Multipliers maps datacenter name to the load multiplier during the
	// event. Datacenters absent from the map are unaffected.
	Multipliers map[string]float64
}

// Schedule is an ordered collection of events.
type Schedule struct {
	events []Event
}

// NewSchedule validates and assembles a schedule. Events may overlap; their
// multipliers compose multiplicatively.
func NewSchedule(events ...Event) (*Schedule, error) {
	for _, e := range events {
		if e.EndTick <= e.StartTick {
			return nil, fmt.Errorf("workload: event %q has empty interval [%d, %d)", e.Name, e.StartTick, e.EndTick)
		}
		for dc, m := range e.Multipliers {
			if m < 0 {
				return nil, fmt.Errorf("workload: event %q has negative multiplier %v for %s", e.Name, m, dc)
			}
		}
	}
	s := &Schedule{events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].StartTick < s.events[j].StartTick })
	return s, nil
}

// Multiplier returns the combined traffic multiplier for a datacenter at a
// tick. With no active events it returns 1.
func (s *Schedule) Multiplier(dc string, tick int) float64 {
	if s == nil {
		return 1
	}
	m := 1.0
	for _, e := range s.events {
		if tick < e.StartTick {
			break
		}
		if tick >= e.EndTick {
			continue
		}
		if f, ok := e.Multipliers[dc]; ok {
			m *= f
		}
	}
	return m
}

// Events returns a copy of the schedule's events in start order.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// FailoverEvent builds an Event that removes the failed datacenters and
// redistributes their traffic share to the survivors proportionally to the
// survivors' weights. This reproduces the paper's first natural experiment,
// where pools in multiple datacenters received a median 56% workload
// increase, with one datacenter receiving +127%.
func FailoverEvent(name string, startTick, endTick int, dcs []Datacenter, failed ...string) (Event, error) {
	if len(dcs) == 0 {
		return Event{}, errors.New("workload: no datacenters")
	}
	failedSet := make(map[string]bool, len(failed))
	for _, f := range failed {
		failedSet[f] = true
	}
	var lostWeight, aliveWeight float64
	known := make(map[string]bool, len(dcs))
	for _, dc := range dcs {
		known[dc.Name] = true
		if failedSet[dc.Name] {
			lostWeight += dc.Weight
		} else {
			aliveWeight += dc.Weight
		}
	}
	for _, f := range failed {
		if !known[f] {
			return Event{}, fmt.Errorf("workload: unknown datacenter %q in failover", f)
		}
	}
	if aliveWeight <= 0 {
		return Event{}, errors.New("workload: failover would remove all capacity")
	}
	mult := make(map[string]float64, len(dcs))
	for _, dc := range dcs {
		if failedSet[dc.Name] {
			mult[dc.Name] = 0
			continue
		}
		// Survivors absorb the lost share proportionally to weight.
		mult[dc.Name] = 1 + lostWeight/aliveWeight
	}
	return Event{Name: name, StartTick: startTick, EndTick: endTick, Multipliers: mult}, nil
}

// Generator produces per-datacenter offered load over a tick timeline.
type Generator struct {
	Pattern  Pattern
	DCs      []Datacenter
	Schedule *Schedule
	Tick     time.Duration
	// NoiseFrac is the relative standard deviation of multiplicative
	// lognormal-ish noise applied per tick per datacenter. Zero disables
	// noise.
	NoiseFrac float64
	// Seed drives the deterministic noise stream.
	Seed int64

	totalWeight float64
	rng         *rand.Rand
}

// NewGenerator validates the configuration and returns a ready generator.
func NewGenerator(p Pattern, dcs []Datacenter, sched *Schedule, tick time.Duration, noiseFrac float64, seed int64) (*Generator, error) {
	if p.BaseRPS < 0 {
		return nil, fmt.Errorf("workload: negative base RPS %v", p.BaseRPS)
	}
	if len(dcs) == 0 {
		return nil, errors.New("workload: no datacenters")
	}
	var tw float64
	seen := make(map[string]bool, len(dcs))
	for _, dc := range dcs {
		if dc.Weight < 0 {
			return nil, fmt.Errorf("workload: datacenter %q has negative weight", dc.Name)
		}
		if seen[dc.Name] {
			return nil, fmt.Errorf("workload: duplicate datacenter %q", dc.Name)
		}
		seen[dc.Name] = true
		tw += dc.Weight
	}
	if tw <= 0 {
		return nil, errors.New("workload: total datacenter weight is zero")
	}
	if tick <= 0 {
		tick = TickDuration
	}
	return &Generator{
		Pattern:     p,
		DCs:         append([]Datacenter(nil), dcs...),
		Schedule:    sched,
		Tick:        tick,
		NoiseFrac:   noiseFrac,
		Seed:        seed,
		totalWeight: tw,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// RPS returns the offered load for one datacenter at a tick. The sequence of
// calls must be deterministic for reproducibility; callers should iterate
// ticks in order and datacenters in the configured order.
func (g *Generator) RPS(dcIndex, tick int) (float64, error) {
	if dcIndex < 0 || dcIndex >= len(g.DCs) {
		return 0, fmt.Errorf("workload: datacenter index %d out of range", dcIndex)
	}
	dc := g.DCs[dcIndex]
	dayFrac := g.localDayFrac(dc, tick)
	base := g.Pattern.At(dayFrac) * dc.Weight / g.totalWeight
	base *= g.Schedule.Multiplier(dc.Name, tick)
	if g.NoiseFrac > 0 {
		base *= math.Max(0, 1+g.NoiseFrac*g.rng.NormFloat64())
	}
	return base, nil
}

// localDayFrac converts a tick to the local day fraction of a datacenter.
func (g *Generator) localDayFrac(dc Datacenter, tick int) float64 {
	elapsed := time.Duration(tick) * g.Tick
	local := elapsed + dc.UTCOffset
	day := local % (24 * time.Hour)
	if day < 0 {
		day += 24 * time.Hour
	}
	return float64(day) / float64(24*time.Hour)
}

// NineRegions returns a realistic nine-datacenter topology spanning the
// globe, matching the paper's "9 geographic regions". Weights are uneven, as
// real population distributions are.
func NineRegions() []Datacenter {
	return []Datacenter{
		{Name: "DC 1", UTCOffset: -8 * time.Hour, Weight: 0.16}, // US West
		{Name: "DC 2", UTCOffset: -6 * time.Hour, Weight: 0.10}, // US Central
		{Name: "DC 3", UTCOffset: -5 * time.Hour, Weight: 0.17}, // US East
		{Name: "DC 4", UTCOffset: 0, Weight: 0.13},              // EU West
		{Name: "DC 5", UTCOffset: 1 * time.Hour, Weight: 0.12},  // EU Central
		{Name: "DC 6", UTCOffset: 5*time.Hour + 30*time.Minute, Weight: 0.09},
		{Name: "DC 7", UTCOffset: 8 * time.Hour, Weight: 0.11},  // APAC
		{Name: "DC 8", UTCOffset: 9 * time.Hour, Weight: 0.07},  // Japan
		{Name: "DC 9", UTCOffset: 10 * time.Hour, Weight: 0.05}, // Australia
	}
}
