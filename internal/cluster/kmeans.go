// Package cluster implements k-means clustering with automatic cluster
// count selection via the mean silhouette score.
//
// The measurement step of the methodology (§II-A2 of the paper) inspects the
// scatter of per-server (5th percentile CPU, 95th percentile CPU) points to
// find groups of servers with the same workload→resource response — e.g. a
// pool mixing two hardware generations appears as two clusters. This package
// provides that detection.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrNoData is returned when clustering is attempted on an empty dataset.
var ErrNoData = errors.New("cluster: no data")

// Point is a point in d-dimensional space.
type Point []float64

// dist2 returns the squared Euclidean distance between p and q.
func dist2(p, q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Result is the outcome of a k-means run.
type Result struct {
	K          int
	Centroids  []Point
	Assignment []int // Assignment[i] is the cluster index of point i
	Inertia    float64
	Iterations int
}

// Sizes returns the number of points in each cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, c := range r.Assignment {
		sizes[c]++
	}
	return sizes
}

// Config controls a k-means run.
type Config struct {
	K             int
	MaxIterations int   // default 100
	Restarts      int   // independent initialisations, best inertia wins; default 5
	Seed          int64 // deterministic random source
}

// KMeans clusters points into cfg.K clusters using Lloyd's algorithm with
// k-means++ initialisation and several restarts.
func KMeans(points []Point, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoData
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("cluster: invalid k %d", cfg.K)
	}
	if cfg.K > len(points) {
		return nil, fmt.Errorf("cluster: k %d > number of points %d", cfg.K, len(points))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var best *Result
	for r := 0; r < restarts; r++ {
		res := runLloyd(points, cfg.K, maxIter, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// runLloyd executes one k-means run with k-means++ seeding.
func runLloyd(points []Point, k, maxIter int, rng *rand.Rand) *Result {
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	prev := make([]int, len(points))
	for i := range prev {
		prev[i] = -1
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, ctr := range centroids {
				if d := dist2(p, ctr); d < bestD {
					bestC, bestD = c, d
				}
			}
			assign[i] = bestC
			if assign[i] != prev[i] {
				changed = true
			}
		}
		if !changed {
			break
		}
		copy(prev, assign)

		// Recompute centroids; re-seed empty clusters from the farthest
		// point to avoid dead centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				centroids[c] = farthestPoint(points, centroids)
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}

	var inertia float64
	for i, p := range points {
		inertia += dist2(p, centroids[assign[i]])
	}
	out := &Result{
		K:          k,
		Centroids:  centroids,
		Assignment: append([]int(nil), assign...),
		Inertia:    inertia,
		Iterations: iters,
	}
	return out
}

// seedPlusPlus picks k initial centroids with the k-means++ heuristic.
func seedPlusPlus(points []Point, k int, rng *rand.Rand) []Point {
	centroids := make([]Point, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, clonePoint(first))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := dist2(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with a centroid; duplicate one.
			centroids = append(centroids, clonePoint(points[rng.Intn(len(points))]))
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, clonePoint(points[pick]))
	}
	return centroids
}

func farthestPoint(points []Point, centroids []Point) Point {
	bestI, bestD := 0, -1.0
	for i, p := range points {
		near := math.Inf(1)
		for _, c := range centroids {
			if d := dist2(p, c); d < near {
				near = d
			}
		}
		if near > bestD {
			bestI, bestD = i, near
		}
	}
	return clonePoint(points[bestI])
}

func clonePoint(p Point) Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Silhouette returns the mean silhouette coefficient of a clustering, in
// [-1, 1]. Higher is better separated. Points in singleton clusters
// contribute 0, following the standard convention.
func Silhouette(points []Point, assignment []int, k int) (float64, error) {
	if len(points) != len(assignment) {
		return 0, fmt.Errorf("cluster: %d points vs %d assignments", len(points), len(assignment))
	}
	if len(points) == 0 {
		return 0, ErrNoData
	}
	if k < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs k >= 2, got %d", k)
	}
	sizes := make([]int, k)
	for _, c := range assignment {
		if c < 0 || c >= k {
			return 0, fmt.Errorf("cluster: assignment %d out of range [0,%d)", c, k)
		}
		sizes[c]++
	}
	var total float64
	for i, p := range points {
		ci := assignment[i]
		if sizes[ci] <= 1 {
			continue // silhouette of a singleton is 0
		}
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sums := make([]float64, k)
		for j, q := range points {
			if i == j {
				continue
			}
			sums[assignment[j]] += math.Sqrt(dist2(p, q))
		}
		a := sums[ci] / float64(sizes[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // only one non-empty cluster
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(len(points)), nil
}

// SelectK clusters points for each k in [1, maxK] and returns the best
// result by mean silhouette (k = 1 is chosen when no multi-cluster split
// achieves a silhouette of at least minSilhouette). This mirrors how the
// paper decides whether a pool's servers form one capacity-planning group
// or several.
func SelectK(points []Point, maxK int, minSilhouette float64, seed int64) (*Result, error) {
	if len(points) == 0 {
		return nil, ErrNoData
	}
	if maxK < 1 {
		return nil, fmt.Errorf("cluster: invalid maxK %d", maxK)
	}
	single := &Result{
		K:          1,
		Centroids:  []Point{meanPoint(points)},
		Assignment: make([]int, len(points)),
	}
	for _, p := range points {
		single.Inertia += dist2(p, single.Centroids[0])
	}
	best := single
	bestScore := minSilhouette
	for k := 2; k <= maxK && k <= len(points); k++ {
		res, err := KMeans(points, Config{K: k, Seed: seed + int64(k)})
		if err != nil {
			return nil, err
		}
		score, err := Silhouette(points, res.Assignment, k)
		if err != nil {
			return nil, err
		}
		if score > bestScore {
			best = res
			bestScore = score
		}
	}
	return best, nil
}

func meanPoint(points []Point) Point {
	dim := len(points[0])
	m := make(Point, dim)
	for _, p := range points {
		for d := 0; d < dim; d++ {
			m[d] += p[d]
		}
	}
	for d := 0; d < dim; d++ {
		m[d] /= float64(len(points))
	}
	return m
}
