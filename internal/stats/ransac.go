package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RANSACConfig controls robust polynomial fitting. The paper (§II-B2) fits
// its second-order latency models with RANSAC because production experiment
// windows are contaminated by deployments, traffic shifts and other natural
// changes in server counts.
type RANSACConfig struct {
	// Degree of the polynomial model (2 for the paper's latency fits).
	Degree int
	// MaxIterations bounds the number of random minimal-subset trials.
	MaxIterations int
	// InlierThreshold is the absolute residual below which a point counts
	// as an inlier. When zero, a threshold is derived from the median
	// absolute deviation of a preliminary full-data fit (2.5 * MAD).
	InlierThreshold float64
	// MinInlierFrac aborts the fit when the best consensus set covers less
	// than this fraction of the data. Defaults to 0.5.
	MinInlierFrac float64
	// Seed for the deterministic random source.
	Seed int64
}

// RANSACResult is a robust polynomial fit together with its consensus set.
type RANSACResult struct {
	Model      Polynomial
	Inliers    []int // indices of inlier observations, ascending
	InlierFrac float64
	Threshold  float64
	Iterations int
}

// RANSAC fits a polynomial of cfg.Degree to (xs, ys), ignoring outliers.
// It repeatedly fits minimal subsets, keeps the model with the largest
// consensus set, and refits on that set. The final model is an OLS fit over
// the inliers only.
func RANSAC(xs, ys []float64, cfg RANSACConfig) (RANSACResult, error) {
	if len(xs) != len(ys) {
		return RANSACResult{}, fmt.Errorf("ransac: %w (%d vs %d)", ErrBadLength, len(xs), len(ys))
	}
	minPts := cfg.Degree + 1
	if len(xs) < minPts+2 {
		return RANSACResult{}, fmt.Errorf("ransac: need >= %d points for degree %d, got %d", minPts+2, cfg.Degree, len(xs))
	}
	iters := cfg.MaxIterations
	if iters <= 0 {
		iters = 200
	}
	minFrac := cfg.MinInlierFrac
	if minFrac <= 0 {
		minFrac = 0.5
	}

	threshold := cfg.InlierThreshold
	if threshold <= 0 {
		full, err := PolyFit(xs, ys, cfg.Degree)
		if err != nil {
			return RANSACResult{}, err
		}
		resid := make([]float64, len(xs))
		for i := range xs {
			resid[i] = math.Abs(ys[i] - full.Predict(xs[i]))
		}
		mad := Median(resid)
		if mad == 0 {
			mad = 1e-9
		}
		threshold = 2.5 * mad
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	best := []int(nil)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sampleX := make([]float64, minPts)
	sampleY := make([]float64, minPts)
	performed := 0
	for it := 0; it < iters; it++ {
		performed++
		// Draw a minimal subset without replacement (partial shuffle).
		for i := 0; i < minPts; i++ {
			j := i + rng.Intn(len(idx)-i)
			idx[i], idx[j] = idx[j], idx[i]
			sampleX[i] = xs[idx[i]]
			sampleY[i] = ys[idx[i]]
		}
		model, err := PolyFit(sampleX, sampleY, cfg.Degree)
		if err != nil {
			continue // degenerate sample (e.g. duplicated x); try again
		}
		var inliers []int
		for i := range xs {
			if math.Abs(ys[i]-model.Predict(xs[i])) <= threshold {
				inliers = append(inliers, i)
			}
		}
		if len(inliers) > len(best) {
			best = inliers
			// Early exit when almost everything agrees.
			if len(best) >= len(xs)-minPts {
				break
			}
		}
	}
	if float64(len(best)) < minFrac*float64(len(xs)) {
		return RANSACResult{}, fmt.Errorf("ransac: best consensus %d/%d below minimum fraction %.2f",
			len(best), len(xs), minFrac)
	}
	sort.Ints(best)
	inX := make([]float64, len(best))
	inY := make([]float64, len(best))
	for i, j := range best {
		inX[i] = xs[j]
		inY[i] = ys[j]
	}
	model, err := PolyFit(inX, inY, cfg.Degree)
	if err != nil {
		return RANSACResult{}, fmt.Errorf("ransac refit: %w", err)
	}
	return RANSACResult{
		Model:      model,
		Inliers:    best,
		InlierFrac: float64(len(best)) / float64(len(xs)),
		Threshold:  threshold,
		Iterations: performed,
	}, nil
}
