package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Tick:       i,
			DC:         "DC 1",
			Pool:       "B",
			Server:     "b-0001",
			Generation: "gen1",
			Online:     rng.Intn(10) > 0,
			RPS:        rng.Float64() * 500,
			CPUPct:     rng.Float64() * 100,
			LatencyMs:  20 + rng.Float64()*40,
			NetBytes:   rng.Float64() * 2e7,
			NetPkts:    rng.Float64() * 2e4,
			MemPages:   rng.Float64() * 1.5e4,
			DiskQueue:  rng.Float64() * 4,
			DiskRead:   rng.Float64() * 4e7,
			Errors:     float64(rng.Intn(3)),
		}
	}
	return out
}

func TestCSVRoundTrip(t *testing.T) {
	recs := sampleRecords(50, 1)
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Error("CSV round trip mismatch")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := sampleRecords(50, 2)
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Error("JSONL round trip mismatch")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty stream: got %v, %v; want nil, nil", got, err)
	}
}

func TestReadCSVHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf)
	if err := w.Write(Record{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Take just the header line.
	headerLine := strings.SplitN(buf.String(), "\n", 2)[0]
	got, err := ReadCSV(strings.NewReader(headerLine + "\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records, want 0", len(got))
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"bad header", "not,a,header\n"},
		{"bad tick", strings.Join(Header, ",") + "\nX,DC 1,B,s,g,true,1,2,3,4,5,6,7,8,9\n"},
		{"bad online", strings.Join(Header, ",") + "\n1,DC 1,B,s,g,maybe,1,2,3,4,5,6,7,8,9\n"},
		{"bad float", strings.Join(Header, ",") + "\n1,DC 1,B,s,g,true,zz,2,3,4,5,6,7,8,9\n"},
		{"short row", strings.Join(Header, ",") + "\n1,DC 1,B\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON should error")
	}
	got, err := ReadJSONL(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty stream: got %v, %v", got, err)
	}
}

// Property: any record with finite fields survives a CSV round trip.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(tick uint16, online bool, rps, cpu, lat float64) bool {
		r := Record{
			Tick: int(tick), DC: "DC 2", Pool: "D", Server: "d-1",
			Generation: "gen2", Online: online,
			RPS: clampFinite(rps), CPUPct: clampFinite(cpu), LatencyMs: clampFinite(lat),
		}
		var buf bytes.Buffer
		w := NewCSVWriter(&buf)
		if err := w.Write(r); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0] == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clampFinite(v float64) float64 {
	if v != v || v > 1e300 || v < -1e300 {
		return 0
	}
	return v
}
