package stats

import (
	"fmt"
	"sort"
)

// AUC computes the area under the ROC curve for binary labels and
// real-valued scores, where a higher score should indicate a positive
// label. Ties are handled by the Mann-Whitney U statistic equivalence:
// AUC = (U - ties/2 adjustments) / (nPos * nNeg).
//
// The paper reports AUC = 0.9804 for its server-grouping decision tree's
// Yes/No prediction probabilities; this function scores our tree the same
// way.
func AUC(labels []bool, scores []float64) (float64, error) {
	if len(labels) != len(scores) {
		return 0, fmt.Errorf("auc: %w (%d vs %d)", ErrBadLength, len(labels), len(scores))
	}
	if len(labels) == 0 {
		return 0, fmt.Errorf("auc: %w", ErrEmptyInput)
	}
	type obs struct {
		score float64
		pos   bool
	}
	data := make([]obs, len(labels))
	var nPos, nNeg int
	for i := range labels {
		data[i] = obs{scores[i], labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("auc: need both classes (pos=%d neg=%d)", nPos, nNeg)
	}
	sort.Slice(data, func(i, j int) bool { return data[i].score < data[j].score })

	// Assign mid-ranks to ties, accumulate rank-sum of positives.
	var rankSumPos float64
	i := 0
	for i < len(data) {
		j := i
		for j < len(data) && data[j].score == data[i].score {
			j++
		}
		// ranks are 1-based: positions i+1 .. j get mid-rank.
		midRank := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if data[k].pos {
				rankSumPos += midRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}
