package dist

import (
	"hash/fnv"
	"sort"
)

// Rank orders peers for a shard key by rendezvous (highest-random-weight)
// hashing: every (key, peer) pair hashes to a weight and peers are returned
// in descending weight order, ties broken by name. The first entry is the
// shard's owner; the rest are the reroute/hedge fallback order.
//
// Rendezvous hashing gives the stability property scale-out placement
// needs: removing a peer moves only the shards that peer owned (each such
// shard falls to its second-ranked peer), and adding a peer steals only the
// shards it now wins — no global reshuffle, no ring to maintain.
func Rank(key string, peers []string) []string {
	ranked := make([]string, len(peers))
	copy(ranked, peers)
	w := make(map[string]uint64, len(peers))
	for _, p := range ranked {
		w[p] = weight(key, p)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if w[ranked[i]] != w[ranked[j]] {
			return w[ranked[i]] > w[ranked[j]]
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Owner returns the top-ranked peer for key, or "" with no peers.
func Owner(key string, peers []string) string {
	if len(peers) == 0 {
		return ""
	}
	return Rank(key, peers)[0]
}

// weight hashes one (key, peer) pair. FNV-1a over peer<NUL>key: cheap,
// stable across processes and Go versions (unlike maphash), and uniform
// enough for placement.
func weight(key, peer string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}
