// Regression gate: reproduce the paper's §III-C offline validation case
// study. A change fixes a memory leak but hides a design flaw that inflates
// latency under high workload. Two identical offline pools run a precisely
// identical synthetic workload sweep — one with the change — and the
// comparison blocks the deployment.
//
//	go run ./examples/regressiongate
package main

import (
	"context"
	"fmt"
	"log"

	"headroom"
)

func main() {
	ctx := context.Background()

	s, err := headroom.New(ctx)
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	report, err := s.Validate(ctx, headroom.ValidateConfig{
		Pool:          headroom.PoolB(),
		Servers:       20,
		Loads:         []float64{100, 180, 260, 340, 420, 500, 580},
		TicksPerLevel: 30,
		Seed:          11,
	}, headroom.Change{
		Name: "memory-leak-fix-v1",
		Apply: func(rp headroom.ResponseParams) headroom.ResponseParams {
			rp.MemPagesBase *= 0.3 // the leak is fixed...
			rp.LatQuad[2] *= 2.2   // ...but a new flaw bites under load
			return rp
		},
	})
	if err != nil {
		log.Fatalf("validate: %v", err)
	}

	fmt.Println("rps/server   baseline_lat  change_lat   change_paging")
	for _, lv := range report.Levels {
		fmt.Printf("%8.0f     %8.1f ms   %8.1f ms   %5.0f%% of baseline\n",
			lv.LoadRPSPerServer, lv.BaselineLatency.Mean, lv.ChangeLatency.Mean,
			100*lv.ChangeMemPages/lv.BaselineMemPages)
	}
	fmt.Println()
	fmt.Printf("memory leak fixed:     %v\n", report.MemoryImproved)
	fmt.Printf("latency regression:    %v (first at %.0f RPS/server)\n",
		report.LatencyRegression, report.FirstRegressionLoad)
	fmt.Printf("capacity impact:       %+.1f%%\n", 100*report.CapacityImpactFrac)
	fmt.Printf("acceptable to deploy:  %v\n", report.Acceptable)
}
