package jobcache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyDeterministicAndDistinct(t *testing.T) {
	type req struct {
		Days int
		Seed int64
	}
	k1, err := Key("plan", req{Days: 1, Seed: 7})
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	k2, _ := Key("plan", req{Days: 1, Seed: 7})
	if k1 != k2 {
		t.Errorf("identical requests keyed differently: %s vs %s", k1, k2)
	}
	k3, _ := Key("plan", req{Days: 2, Seed: 7})
	if k1 == k3 {
		t.Error("different requests share a key")
	}
	k4, _ := Key("simulate", req{Days: 1, Seed: 7})
	if k1 == k4 {
		t.Error("different endpoints share a key for equal payloads")
	}
}

func TestKeyCanonicalizesMapOrder(t *testing.T) {
	// encoding/json sorts map keys, so insertion order must not matter.
	k1, _ := Key(map[string]int{"a": 1, "b": 2, "c": 3})
	m := map[string]int{}
	for _, kv := range []struct {
		k string
		v int
	}{{"c", 3}, {"b", 2}, {"a", 1}} {
		m[kv.k] = kv.v
	}
	k2, _ := Key(m)
	if k1 != k2 {
		t.Error("map insertion order changed the key")
	}
}

func TestKeyUnencodable(t *testing.T) {
	if _, err := Key(func() {}); err == nil {
		t.Error("Key(func) should fail")
	}
}

func TestDoCachesResult(t *testing.T) {
	c := New(4)
	var calls atomic.Int32
	fn := func() (any, error) { calls.Add(1); return "v", nil }

	v, hit, err := c.Do("k", fn)
	if err != nil || v != "v" || hit {
		t.Fatalf("first Do = %v, hit=%v, err=%v", v, hit, err)
	}
	v, hit, err = c.Do("k", fn)
	if err != nil || v != "v" || !hit {
		t.Fatalf("second Do = %v, hit=%v, err=%v; want cache hit", v, hit, err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(4)
	var calls atomic.Int32
	boom := errors.New("boom")
	fn := func() (any, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := c.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do("k", fn)
	if err != nil || v != "ok" || hit {
		t.Fatalf("retry after error = %v, hit=%v, err=%v", v, hit, err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Do("a", func() (any, error) { return 1, nil })
	c.Do("b", func() (any, error) { return 2, nil })
	c.Do("a", func() (any, error) { t.Error("a recomputed"); return nil, nil }) // touch a
	c.Do("c", func() (any, error) { return 3, nil })                            // evicts b

	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction despite being LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestSingleFlightDedup(t *testing.T) {
	c := New(4)
	var calls atomic.Int32
	gate := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	results := make([]any, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do("k", func() (any, error) {
				calls.Add(1)
				<-gate
				return "shared", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	// Let every goroutine attach to the flight before releasing the one
	// computation. Shared is only counted after a successful join, so poll
	// the flight's joined count instead of the stats counters.
	for {
		c.mu.Lock()
		fl, ok := c.inflight["k"]
		joined := 0
		if ok {
			joined = fl.joined
		}
		c.mu.Unlock()
		if ok && joined == n-1 {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under concurrency, want 1", n)
	}
	var leaders int
	for i := range results {
		if results[i] != "shared" {
			t.Errorf("result[%d] = %v", i, results[i])
		}
		if !hits[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want exactly 1", leaders)
	}
	if s := c.Stats(); s.Shared != n-1 {
		t.Errorf("shared = %d, want %d", s.Shared, n-1)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New(0) // clamped to 1
	c.Do("a", func() (any, error) { return 1, nil })
	c.Do("b", func() (any, error) { return 2, nil })
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%12)
				v, _, err := c.Do(key, func() (any, error) { return key, nil })
				if err != nil || v != key {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}

// TestFailedFlightNotHit pins the error-flight contract: a caller who joins
// another caller's in-flight computation that ultimately fails must see
// hit=false and the flight's error, and must bump neither Hits nor Shared.
func TestFailedFlightNotHit(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, hit, err := c.Do("k", func() (any, error) {
			close(started)
			<-release
			return nil, boom
		})
		if hit || !errors.Is(err, boom) {
			t.Errorf("leader: hit=%v err=%v, want hit=false err=boom", hit, err)
		}
	}()
	<-started

	const joiners = 4
	ready := make(chan struct{}, joiners)
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready <- struct{}{}
			_, hit, err := c.Do("k", func() (any, error) {
				// Only runs if this goroutine raced past the flight and became
				// a leader itself; return the same error so the assertions
				// below still hold for this caller.
				return nil, boom
			})
			if hit {
				t.Error("joiner of a failed flight reported hit=true")
			}
			if !errors.Is(err, boom) {
				t.Errorf("joiner err = %v, want boom", err)
			}
		}()
	}
	for i := 0; i < joiners; i++ {
		<-ready
	}
	// All joiners are at most an instruction away from registering on the
	// flight; the pause makes a stray self-leader vanishingly unlikely.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	s := c.Stats()
	if s.Hits != 0 || s.Shared != 0 {
		t.Errorf("stats = %+v; a failed flight must count as neither hit nor shared", s)
	}
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 (only the leader executed)", s.Misses)
	}
	if c.Len() != 0 {
		t.Errorf("len = %d; errors must not be cached", c.Len())
	}
}

// TestPanickingFnDoesNotWedgeKey pins panic behavior: the panic propagates to
// the leader's caller, a concurrent joiner receives an error instead of
// blocking forever, and the key is recomputable afterward.
func TestPanickingFnDoesNotWedgeKey(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})

	joinerErr := make(chan error, 1)
	ready := make(chan struct{})
	go func() {
		<-started
		close(ready)
		_, hit, err := c.Do("k", func() (any, error) {
			// Only runs if this goroutine raced past the flight; fail the
			// same way so the channel still carries a non-nil error.
			return nil, errors.New("jobcache: computation panicked")
		})
		if hit {
			t.Error("joiner of a panicked flight reported hit=true")
		}
		joinerErr <- err
	}()

	go func() {
		<-ready
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of Do")
			}
		}()
		c.Do("k", func() (any, error) {
			close(started)
			<-release
			panic("kaboom")
		})
	}()

	select {
	case err := <-joinerErr:
		if err == nil {
			t.Error("joiner got nil error from a panicked flight")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner still blocked 5s after the flight panicked: key is wedged")
	}

	// The key must be usable again.
	v, hit, err := c.Do("k", func() (any, error) { return "fresh", nil })
	if err != nil || hit || v != "fresh" {
		t.Errorf("recompute after panic = %v, hit=%v, err=%v", v, hit, err)
	}
	if s := c.Stats(); s.Hits != 0 || s.Shared != 0 {
		t.Errorf("stats = %+v; panicked flight must count as neither hit nor shared", s)
	}
}
