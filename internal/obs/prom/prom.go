// Package prom is a minimal Prometheus text-format exposition library
// (counters, gauges, histograms) with no external dependencies, shared by
// every layer of the pipeline: the HTTP server registers its capserved_*
// families on its own Registry, while non-HTTP packages (the session layer,
// the job queue) record stage timings on the process-wide Default registry.
// Only write-side types are provided: a Registry renders the version 0.0.4
// text format a Prometheus scraper (or the e2e tests) parses.
//
// Rendering is scrape-optimized: WriteText snapshots families under read
// locks and renders into a pooled buffer with strconv append primitives, so
// a scrape does not contend with metric writes and allocates almost
// nothing.
package prom

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric's label set, rendered sorted by key.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// EscapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// UnescapeLabel inverts EscapeLabel, for parsers (and the round-trip
// tests).
func UnescapeLabel(v string) string {
	if !strings.Contains(v, `\`) {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' || i+1 == len(v) {
			b.WriteByte(v[i])
			continue
		}
		i++
		switch v[i] {
		case 'n':
			b.WriteByte('\n')
		case '\\', '"':
			b.WriteByte(v[i])
		default: // unknown escape: keep it verbatim
			b.WriteByte('\\')
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes are
// legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// series is one sample-producing member of a family.
type series interface {
	// write appends exposition lines for this series to buf, given the
	// family name and pre-rendered label suffix.
	write(buf *bytes.Buffer, name, lbl string)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(buf *bytes.Buffer, name, lbl string) {
	buf.WriteString(name)
	buf.WriteString(lbl)
	buf.WriteByte(' ')
	appendInt(buf, c.v.Load())
	buf.WriteByte('\n')
}

// GaugeFunc samples a value at scrape time — used for queue depth, cache
// size and other states owned elsewhere.
type GaugeFunc func() float64

func (g GaugeFunc) write(buf *bytes.Buffer, name, lbl string) {
	buf.WriteString(name)
	buf.WriteString(lbl)
	buf.WriteByte(' ')
	appendFloat(buf, g())
	buf.WriteByte('\n')
}

// Histogram is a fixed-bucket histogram (typically of seconds).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending, +Inf implicit
	buckets []int64   // non-cumulative per-bound counts
	inf     int64     // observations above the last bound
	sum     float64
	count   int64
	// le holds the pre-rendered per-bucket label suffixes (bounds plus
	// +Inf), computed at registration so a scrape allocates nothing for
	// them.
	le []string
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]int64, len(bounds))}
}

// setLabels pre-renders the per-bucket label suffixes for the series' label
// set.
func (h *Histogram) setLabels(lbl string) {
	h.le = make([]string, 0, len(h.bounds)+1)
	for _, b := range h.bounds {
		h.le = append(h.le, mergeLabel(lbl, "le", formatFloat(b)))
	}
	h.le = append(h.le, mergeLabel(lbl, "le", "+Inf"))
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.sum += v
	h.count++
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) write(buf *bytes.Buffer, name, lbl string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Exposition buckets are cumulative.
	var cum int64
	for i := range h.bounds {
		cum += h.buckets[i]
		writeBucket(buf, name, h.le[i], cum)
	}
	cum += h.inf
	writeBucket(buf, name, h.le[len(h.le)-1], cum)
	buf.WriteString(name)
	buf.WriteString("_sum")
	buf.WriteString(lbl)
	buf.WriteByte(' ')
	appendFloat(buf, h.sum)
	buf.WriteByte('\n')
	buf.WriteString(name)
	buf.WriteString("_count")
	buf.WriteString(lbl)
	buf.WriteByte(' ')
	appendInt(buf, h.count)
	buf.WriteByte('\n')
}

func writeBucket(buf *bytes.Buffer, name, lbl string, cum int64) {
	buf.WriteString(name)
	buf.WriteString("_bucket")
	buf.WriteString(lbl)
	buf.WriteByte(' ')
	appendInt(buf, cum)
	buf.WriteByte('\n')
}

// mergeLabel inserts an extra label pair into a pre-rendered label suffix.
func mergeLabel(lbl, k, v string) string {
	pair := k + `="` + EscapeLabel(v) + `"`
	if lbl == "" {
		return "{" + pair + "}"
	}
	return lbl[:len(lbl)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func appendInt(buf *bytes.Buffer, v int64) {
	var tmp [20]byte
	buf.Write(strconv.AppendInt(tmp[:0], v, 10))
}

func appendFloat(buf *bytes.Buffer, v float64) {
	var tmp [32]byte
	buf.Write(strconv.AppendFloat(tmp[:0], v, 'g', -1, 64))
}

// family groups same-named series with their HELP/TYPE header.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	mu     sync.RWMutex
	order  []string
	series map[string]series // rendered label suffix -> series
}

// add registers a new series, panicking on a duplicate label set: two
// writers silently sharing one series is a config bug worth failing loudly
// on.
func (f *family) add(lbl Labels, s series) {
	key := lbl.render()
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.series[key]; dup {
		panic(fmt.Sprintf("prom: duplicate metric %s%s", f.name, key))
	}
	f.order = append(f.order, key)
	f.series[key] = s
}

// getOrAdd returns the existing series for lbl, or registers the one built
// by mk. Used for label sets discovered at runtime (per-pool timings).
func (f *family) getOrAdd(lbl Labels, mk func() series) series {
	key := lbl.render()
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = mk()
	f.order = append(f.order, key)
	f.series[key] = s
	return s
}

func (f *family) write(buf *bytes.Buffer) {
	buf.WriteString("# HELP ")
	buf.WriteString(f.name)
	buf.WriteByte(' ')
	buf.WriteString(escapeHelp(f.help))
	buf.WriteString("\n# TYPE ")
	buf.WriteString(f.name)
	buf.WriteByte(' ')
	buf.WriteString(f.typ)
	buf.WriteByte('\n')
	// Render under the read lock: registration (the only writer) is rare,
	// and Observe/Inc never take the family lock.
	f.mu.RLock()
	for _, key := range f.order {
		f.series[key].write(buf, f.name, key)
	}
	f.mu.RUnlock()
}

// Registry holds metric families in registration order.
type Registry struct {
	mu   sync.RWMutex
	fams []*family
	byID map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*family)}
}

// Default is the process-wide registry non-HTTP packages register pipeline
// metrics on (stage histograms, queue wait/run splits). The capserved
// /metrics endpoint renders it alongside the server's own registry.
var Default = NewRegistry()

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byID[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("prom: metric %s reregistered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, series: make(map[string]series)}
	r.fams = append(r.fams, f)
	r.byID[name] = f
	return f
}

// Counter registers (or extends) a counter family with one labelled series.
func (r *Registry) Counter(name, help string, lbl Labels) *Counter {
	c := &Counter{}
	r.family(name, help, "counter").add(lbl, c)
	return c
}

// LazyCounter returns the counter series for (name, lbl), registering it on
// first use — for label values discovered at runtime.
func (r *Registry) LazyCounter(name, help string, lbl Labels) *Counter {
	s := r.family(name, help, "counter").getOrAdd(lbl, func() series { return &Counter{} })
	return s.(*Counter)
}

// Gauge registers a scrape-time-sampled gauge series.
func (r *Registry) Gauge(name, help string, lbl Labels, fn GaugeFunc) {
	r.family(name, help, "gauge").add(lbl, fn)
}

// CounterFunc registers a scrape-time-sampled counter series, for monotone
// values owned elsewhere (cache hit totals).
func (r *Registry) CounterFunc(name, help string, lbl Labels, fn GaugeFunc) {
	r.family(name, help, "counter").add(lbl, fn)
}

// Histogram registers a histogram series with the given upper bounds.
func (r *Registry) Histogram(name, help string, lbl Labels, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	h.setLabels(lbl.render())
	r.family(name, help, "histogram").add(lbl, h)
	return h
}

// LazyHistogram returns the histogram series for (name, lbl), registering
// it on first use — for label values discovered at runtime (per-pool
// simulate timings). Bounds apply only on first registration.
func (r *Registry) LazyHistogram(name, help string, lbl Labels, bounds []float64) *Histogram {
	s := r.family(name, help, "histogram").getOrAdd(lbl, func() series {
		h := newHistogram(bounds)
		h.setLabels(lbl.render())
		return h
	})
	return s.(*Histogram)
}

// bufPool recycles render buffers across scrapes; a steady-state scrape
// allocates only what fmt boxing in gauge funcs needs.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// WriteText renders every family in the Prometheus text exposition format.
// Families render from a read-locked snapshot into a pooled buffer, then a
// single Write hits w.
func (r *Registry) WriteText(w io.Writer) (int, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		// Don't let one giant scrape pin a huge buffer in the pool forever.
		if buf.Cap() <= 1<<20 {
			bufPool.Put(buf)
		}
	}()
	r.mu.RLock()
	fams := r.fams
	r.mu.RUnlock()
	for _, f := range fams {
		f.write(buf)
	}
	return w.Write(buf.Bytes())
}

// DefBuckets are general request-latency bounds in seconds: sub-millisecond
// cache hits through multi-second fleet simulations.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}

// StageBuckets are pipeline-stage duration bounds in seconds: microsecond
// merges and forecasts through multi-second sharded simulations.
var StageBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30}
