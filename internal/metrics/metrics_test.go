package metrics

import (
	"math"
	"testing"

	"headroom/internal/trace"
)

func rec(tick int, dc, pool, server string, online bool, rps, cpu, lat float64) trace.Record {
	return trace.Record{
		Tick: tick, DC: dc, Pool: pool, Server: server, Generation: "gen1",
		Online: online, RPS: rps, CPUPct: cpu, LatencyMs: lat,
		NetBytes: rps * 100, NetPkts: rps, MemPages: 10, DiskQueue: 1, DiskRead: 20, Errors: 0,
	}
}

func TestPoolSeriesAggregation(t *testing.T) {
	a := NewAggregator()
	a.AddAll([]trace.Record{
		rec(0, "DC 1", "B", "s1", true, 100, 10, 30),
		rec(0, "DC 1", "B", "s2", true, 200, 20, 40),
		rec(0, "DC 1", "B", "s3", false, 0, 0, 0), // offline: excluded
		rec(1, "DC 1", "B", "s1", true, 300, 30, 50),
	})
	series, err := a.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatalf("PoolSeries: %v", err)
	}
	if len(series) != 2 {
		t.Fatalf("len = %d, want 2", len(series))
	}
	t0 := series[0]
	if t0.Tick != 0 || t0.Servers != 2 {
		t.Errorf("t0 = %+v, want tick 0 with 2 servers", t0)
	}
	if t0.TotalRPS != 300 || t0.RPSPerServer != 150 {
		t.Errorf("t0 RPS = %v total / %v per server, want 300/150", t0.TotalRPS, t0.RPSPerServer)
	}
	if t0.CPUMean != 15 || t0.LatencyMean != 35 {
		t.Errorf("t0 cpu/lat = %v/%v, want 15/35", t0.CPUMean, t0.LatencyMean)
	}
	if t0.NetBytes != 15000 {
		t.Errorf("t0 NetBytes = %v, want 15000", t0.NetBytes)
	}
	t1 := series[1]
	if t1.Tick != 1 || t1.Servers != 1 || t1.TotalRPS != 300 {
		t.Errorf("t1 = %+v", t1)
	}
}

func TestPoolSeriesUnknownPool(t *testing.T) {
	a := NewAggregator()
	if _, err := a.PoolSeries("DC 1", "nope"); err == nil {
		t.Error("unknown pool should error")
	}
}

func TestServerSummaries(t *testing.T) {
	a := NewAggregator()
	// s1: online all 4 windows with varied CPU; s2: online half.
	cpus := []float64{10, 20, 30, 40}
	for i, c := range cpus {
		a.Add(rec(i, "DC 1", "B", "s1", true, 100, c, 30))
		a.Add(rec(i, "DC 1", "B", "s2", i < 2, 100, 15, 30))
	}
	sums, err := a.ServerSummaries("DC 1", "B")
	if err != nil {
		t.Fatalf("ServerSummaries: %v", err)
	}
	if len(sums) != 2 {
		t.Fatalf("len = %d, want 2", len(sums))
	}
	s1 := sums[0]
	if s1.Server != "s1" {
		t.Fatalf("order: got %q first, want s1", s1.Server)
	}
	if s1.Availability != 1 || s1.Windows != 4 {
		t.Errorf("s1 availability = %v/%d windows", s1.Availability, s1.Windows)
	}
	if s1.CPU.Mean != 25 {
		t.Errorf("s1 mean CPU = %v, want 25", s1.CPU.Mean)
	}
	if s1.CPU.P95 <= s1.CPU.P5 {
		t.Errorf("s1 percentiles degenerate: %+v", s1.CPU)
	}
	// Percentile curve of increasing CPU has positive slope and strong R2.
	if s1.Slope <= 0 || s1.R2 < 0.9 {
		t.Errorf("s1 slope/R2 = %v/%v", s1.Slope, s1.R2)
	}
	fv := s1.FeatureVector()
	if len(fv) != 8 {
		t.Errorf("feature vector length = %d, want 8", len(fv))
	}
	s2 := sums[1]
	if math.Abs(s2.Availability-0.5) > 1e-12 {
		t.Errorf("s2 availability = %v, want 0.5", s2.Availability)
	}
	// Constant CPU: slope ~0, P95 == P5.
	if math.Abs(s2.Slope) > 1e-9 {
		t.Errorf("s2 slope = %v, want 0", s2.Slope)
	}
}

func TestPoolAvailability(t *testing.T) {
	a := NewAggregator()
	// 2 servers, 2 ticks/day, 2 days. Day 0: both online both ticks.
	// Day 1: one server offline in both ticks.
	for tick := 0; tick < 4; tick++ {
		a.Add(rec(tick, "DC 1", "C", "s1", true, 10, 5, 20))
		a.Add(rec(tick, "DC 1", "C", "s2", tick < 2, 10, 5, 20))
	}
	av, err := a.PoolAvailability("DC 1", "C", 2)
	if err != nil {
		t.Fatalf("PoolAvailability: %v", err)
	}
	if len(av) != 2 {
		t.Fatalf("days = %d, want 2", len(av))
	}
	if av[0] != 1 || av[1] != 0.5 {
		t.Errorf("availability = %v, want [1, 0.5]", av)
	}
	if _, err := a.PoolAvailability("DC 1", "C", 0); err == nil {
		t.Error("non-positive ticksPerDay should error")
	}
	if _, err := a.PoolAvailability("DC 9", "C", 2); err == nil {
		t.Error("unknown pool should error")
	}
}

func TestPoolsSortedAndMerged(t *testing.T) {
	a := NewAggregator()
	a.Add(rec(0, "DC 2", "B", "s1", true, 1, 1, 1))
	a.Add(rec(0, "DC 1", "B", "s2", true, 1, 1, 1))
	a.Add(rec(0, "DC 1", "A", "s3", true, 1, 1, 1))
	keys := a.Pools()
	want := []PoolKey{{DC: "DC 1", Pool: "A"}, {DC: "DC 1", Pool: "B"}, {DC: "DC 2", Pool: "B"}}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
	if keys[0].String() != "A@DC 1" {
		t.Errorf("String = %q", keys[0].String())
	}
	merged, err := a.MergedServerSummaries("B")
	if err != nil {
		t.Fatalf("MergedServerSummaries: %v", err)
	}
	if len(merged) != 2 {
		t.Errorf("merged DCs = %d, want 2", len(merged))
	}
	if _, err := a.MergedServerSummaries("zzz"); err == nil {
		t.Error("unknown pool should error")
	}
}

func TestOfflineOnlyTickProducesNoTickStat(t *testing.T) {
	a := NewAggregator()
	a.Add(rec(0, "DC 1", "B", "s1", false, 0, 0, 0))
	series, err := a.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatalf("PoolSeries: %v", err)
	}
	if len(series) != 0 {
		t.Errorf("series = %v, want empty (offline windows carry no load)", series)
	}
	sums, err := a.ServerSummaries("DC 1", "B")
	if err != nil {
		t.Fatalf("ServerSummaries: %v", err)
	}
	if sums[0].Availability != 0 || sums[0].Windows != 1 {
		t.Errorf("offline-only summary = %+v", sums[0])
	}
}
