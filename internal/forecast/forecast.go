// Package forecast predicts future workload volume from history. The
// paper's capacity planners combine the QoS requirement "with workload
// trends, expected failure rates, and QoS business requirements to determine
// how many servers are needed" (§II); this package supplies the workload-
// trend component: a linear growth trend plus a daily seasonal profile, the
// structure diurnal online-service traffic actually has.
package forecast

import (
	"errors"
	"fmt"

	"headroom/internal/stats"
)

// Model is a fitted trend + daily-seasonality workload model:
//
//	load(t) ≈ (Trend.Intercept + Trend.Slope·t) · Seasonal[t mod ticksPerDay]
//
// with Seasonal normalised to mean 1.
type Model struct {
	Trend       stats.LinearFit
	Seasonal    []float64
	TicksPerDay int
	// ResidualStd is the standard deviation of multiplicative residuals,
	// used for headroom margins.
	ResidualStd float64
}

// Fit estimates the model from an offered-load series sampled once per
// tick. It needs at least two full days to separate trend from seasonality.
func Fit(series []float64, ticksPerDay int) (Model, error) {
	if ticksPerDay <= 0 {
		return Model{}, fmt.Errorf("forecast: non-positive ticksPerDay %d", ticksPerDay)
	}
	if len(series) < 2*ticksPerDay {
		return Model{}, fmt.Errorf("forecast: need >= 2 days of data (%d ticks), got %d",
			2*ticksPerDay, len(series))
	}
	for i, v := range series {
		if v < 0 {
			return Model{}, fmt.Errorf("forecast: negative load %v at tick %d", v, i)
		}
	}

	// Trend on daily means (removes the seasonal component exactly when
	// days are complete).
	days := len(series) / ticksPerDay
	dayIdx := make([]float64, days)
	dayMean := make([]float64, days)
	for d := 0; d < days; d++ {
		seg := series[d*ticksPerDay : (d+1)*ticksPerDay]
		dayIdx[d] = float64(d*ticksPerDay) + float64(ticksPerDay-1)/2
		dayMean[d] = stats.Mean(seg)
	}
	var trend stats.LinearFit
	if days >= 2 {
		fit, err := stats.LinearRegression(dayIdx, dayMean)
		if err != nil {
			return Model{}, fmt.Errorf("forecast: trend: %w", err)
		}
		trend = fit
	} else {
		trend = stats.LinearFit{Intercept: dayMean[0]}
	}

	// Seasonal profile: mean detrended ratio per tick-of-day.
	seasonal := make([]float64, ticksPerDay)
	counts := make([]int, ticksPerDay)
	for t := 0; t < days*ticksPerDay; t++ {
		base := trend.Predict(float64(t))
		if base <= 0 {
			continue
		}
		tod := t % ticksPerDay
		seasonal[tod] += series[t] / base
		counts[tod]++
	}
	var mean float64
	for i := range seasonal {
		if counts[i] > 0 {
			seasonal[i] /= float64(counts[i])
		} else {
			seasonal[i] = 1
		}
		mean += seasonal[i]
	}
	mean /= float64(ticksPerDay)
	if mean <= 0 {
		return Model{}, errors.New("forecast: degenerate seasonal profile")
	}
	for i := range seasonal {
		seasonal[i] /= mean
	}

	m := Model{Trend: trend, Seasonal: seasonal, TicksPerDay: ticksPerDay}

	// Residual spread of the multiplicative errors.
	var resid []float64
	for t := 0; t < days*ticksPerDay; t++ {
		pred := m.Predict(t)
		if pred > 0 {
			resid = append(resid, series[t]/pred-1)
		}
	}
	if len(resid) > 1 {
		m.ResidualStd = stats.StdDev(resid)
	}
	return m, nil
}

// Predict returns the expected load at a (possibly future) tick.
func (m Model) Predict(tick int) float64 {
	base := m.Trend.Predict(float64(tick))
	if base < 0 {
		base = 0
	}
	if m.TicksPerDay == 0 || len(m.Seasonal) == 0 {
		return base
	}
	tod := tick % m.TicksPerDay
	if tod < 0 {
		tod += m.TicksPerDay
	}
	return base * m.Seasonal[tod]
}

// PeakOverHorizon returns the maximum predicted load over [from, from+n)
// plus a safety margin of k residual standard deviations — the number a
// capacity planner provisions against.
func (m Model) PeakOverHorizon(from, n int, k float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("forecast: non-positive horizon %d", n)
	}
	if k < 0 {
		return 0, fmt.Errorf("forecast: negative margin factor %v", k)
	}
	var peak float64
	for t := from; t < from+n; t++ {
		if v := m.Predict(t); v > peak {
			peak = v
		}
	}
	return peak * (1 + k*m.ResidualStd), nil
}

// GrowthPerDay returns the fitted daily growth in absolute load units.
func (m Model) GrowthPerDay() float64 {
	return m.Trend.Slope * float64(m.TicksPerDay)
}
