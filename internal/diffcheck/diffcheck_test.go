package diffcheck

import (
	"context"
	"flag"
	"sync/atomic"
	"testing"
	"time"

	"headroom/internal/leakcheck"
)

var (
	quick     = flag.Bool("quick", false, "run a reduced differential case count")
	diffcases = flag.Int("diffcases", 100, "randomized cases per TestDifferentialPaths run")
)

// runCounter advances once per test invocation so repeated runs draw fresh
// seed ranges: `go test -count=2` covers 2×diffcases distinct cases instead
// of replaying the same ones.
var runCounter atomic.Int64

// TestDifferentialPaths is the property suite: N generated cases, each
// executed through the sequential, sharded, distributed and cache-served
// paths and cross-checked for byte identity (fault-free) or identical
// degradation (faulted). Any failure prints the case's seed; replay it with
// `go run ./cmd/capcheck -seed N -v`.
func TestDifferentialPaths(t *testing.T) {
	leakcheck.Check(t)
	n := *diffcases
	if *quick {
		n = 16
	}
	if testing.Short() {
		n = 8
	}
	base := (runCounter.Add(1) - 1) * int64(n)
	ctx := context.Background()
	for i := 0; i < n; i++ {
		seed := base + int64(i) + 1
		c := Generate(seed)
		rep, err := RunCase(ctx, c, Options{LeakGrace: 10 * time.Second})
		if err != nil {
			t.Fatalf("case %s\nharness error: %v", c, err)
		}
		if rep.Diff != "" {
			t.Fatalf("case %s\nDIVERGED: %s", c, rep.Diff)
		}
	}
	t.Logf("%d differential cases (seeds %d..%d) agreed on all paths", n, base+1, base+int64(n))
}

// TestRegressionSeeds pins the generator seeds whose divergences drove fixes:
// they must stay green forever regardless of what the randomized sweep draws.
func TestRegressionSeeds(t *testing.T) {
	leakcheck.Check(t)
	seeds := []struct {
		seed int64
		why  string
	}{
		{3, "permanent fault's shard-mates join failed_pools (pools [C E G], 2 shards)"},
		{4, "transient fault absorbed by retries must still cache-hit on resubmit"},
		{6, "panic in a sequential (single-shard) run must degrade, not crash the process"},
	}
	ctx := context.Background()
	for _, s := range seeds {
		c := Generate(s.seed)
		rep, err := RunCase(ctx, c, Options{LeakGrace: 10 * time.Second})
		if err != nil {
			t.Fatalf("case %s (%s)\nharness error: %v", c, s.why, err)
		}
		if rep.Diff != "" {
			t.Fatalf("case %s (%s)\nDIVERGED: %s", c, s.why, rep.Diff)
		}
	}
}

// FuzzDifferential feeds generator seeds to the full differential harness.
// The seed corpus covers every fault kind crossed with both job kinds, plus
// the minimized seeds of past divergences; new failures found by `go test
// -fuzz=FuzzDifferential` land in testdata/fuzz and become regressions.
func FuzzDifferential(f *testing.F) {
	// simulate × {permanent, none, panic, transient} = 1, 2, 6, 8;
	// plan × {permanent, transient, none, panic} = 3, 4, 5, 41.
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 8, 41} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Generate(seed)
		rep, err := RunCase(context.Background(), c, Options{LeakGrace: 10 * time.Second})
		if err != nil {
			t.Fatalf("case %s\nharness error: %v", c, err)
		}
		if rep.Diff != "" {
			t.Fatalf("case %s\nDIVERGED: %s", c, rep.Diff)
		}
	})
}
