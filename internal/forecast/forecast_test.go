package forecast

import (
	"math"
	"math/rand"
	"testing"

	"headroom/internal/workload"
)

// grownDiurnal builds a load series with linear growth and a diurnal shape.
func grownDiurnal(days, ticksPerDay int, base, growthPerDay, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	p := workload.Pattern{BaseRPS: 1, PeakToTrough: 2.4, PeakHour: 13}
	out := make([]float64, days*ticksPerDay)
	for t := range out {
		level := base + growthPerDay*float64(t)/float64(ticksPerDay)
		shape := p.At(float64(t%ticksPerDay) / float64(ticksPerDay))
		out[t] = level * shape * (1 + noise*rng.NormFloat64())
	}
	return out
}

func TestFitRecoversTrendAndSeason(t *testing.T) {
	tpd := 720
	series := grownDiurnal(7, tpd, 100000, 2000, 0.02, 1)
	m, err := Fit(series, tpd)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if g := m.GrowthPerDay(); math.Abs(g-2000) > 300 {
		t.Errorf("growth/day = %v, want ~2000", g)
	}
	// Seasonal profile: peak near tick 13/24 of the day, normalised mean 1.
	var mean float64
	for _, s := range m.Seasonal {
		mean += s
	}
	mean /= float64(tpd)
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("seasonal mean = %v, want 1", mean)
	}
	peakTick := 0
	for i, s := range m.Seasonal {
		if s > m.Seasonal[peakTick] {
			peakTick = i
		}
	}
	wantPeak := 13 * tpd / 24
	if d := peakTick - wantPeak; d < -30 || d > 30 {
		t.Errorf("seasonal peak at tick %d, want ~%d", peakTick, wantPeak)
	}
	if m.ResidualStd > 0.05 {
		t.Errorf("residual std = %v, want small", m.ResidualStd)
	}
}

func TestPredictForward(t *testing.T) {
	tpd := 720
	series := grownDiurnal(7, tpd, 100000, 2000, 0.02, 2)
	m, err := Fit(series, tpd)
	if err != nil {
		t.Fatal(err)
	}
	// Generate day 8 and compare point predictions.
	truth := grownDiurnal(9, tpd, 100000, 2000, 0, 3) // noiseless extension
	var mape float64
	n := 0
	for tick := 7 * tpd; tick < 8*tpd; tick++ {
		pred := m.Predict(tick)
		actual := truth[tick]
		if actual > 0 {
			mape += math.Abs(pred-actual) / actual
			n++
		}
	}
	mape /= float64(n)
	if mape > 0.03 {
		t.Errorf("day-8 MAPE = %v, want <= 3%%", mape)
	}
}

func TestPeakOverHorizon(t *testing.T) {
	tpd := 720
	series := grownDiurnal(4, tpd, 50000, 1000, 0.02, 4)
	m, err := Fit(series, tpd)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := m.PeakOverHorizon(4*tpd, tpd, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Day-5 peak must exceed the day-5 mean level (diurnal amplitude) and
	// sit above the day-1 peak (growth).
	day5Level := 50000 + 1000*4.5
	if peak < day5Level {
		t.Errorf("horizon peak %v below day-5 mean level %v", peak, day5Level)
	}
	withMargin, err := m.PeakOverHorizon(4*tpd, tpd, 2)
	if err != nil {
		t.Fatal(err)
	}
	if withMargin <= peak {
		t.Error("safety margin should raise the provisioning peak")
	}
	if _, err := m.PeakOverHorizon(0, 0, 0); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := m.PeakOverHorizon(0, 1, -1); err == nil {
		t.Error("negative margin should error")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 0); err == nil {
		t.Error("bad ticksPerDay should error")
	}
	if _, err := Fit(make([]float64, 100), 720); err == nil {
		t.Error("insufficient history should error")
	}
	neg := make([]float64, 1440)
	neg[3] = -1
	if _, err := Fit(neg, 720); err == nil {
		t.Error("negative load should error")
	}
}

func TestPredictFlatModel(t *testing.T) {
	var m Model
	m.Trend.Intercept = 100
	if got := m.Predict(5); got != 100 {
		t.Errorf("flat model Predict = %v, want 100", got)
	}
	m.Trend.Slope = -1000
	if got := m.Predict(10); got != 0 {
		t.Errorf("negative base should clamp to 0, got %v", got)
	}
}
