package headroom

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"headroom/internal/core"
	"headroom/internal/experiments"
	"headroom/internal/forecast"
	"headroom/internal/metrics"
	"headroom/internal/obs"
	"headroom/internal/optimize"
	"headroom/internal/validate"
)

// Session is the configured entry point to the capacity-planning pipeline.
// A session carries the pieces every step shares — the record source, the
// shard count for parallel aggregation, the planning configuration and a
// base context bounding the session's lifetime — so the individual steps
// (Simulate, Plan, RunRSM, Validate, Forecast) stay single-purpose.
//
// Construct with New and functional options:
//
//	s, err := headroom.New(ctx,
//		headroom.WithFleet(cfg),
//		headroom.WithShards(8),
//	)
//	agg, err := s.Simulate(ctx, 1)
//	plans, err := s.Plan(ctx, agg)
//
// Every method takes a context.Context and returns promptly with ctx.Err()
// when it is cancelled; cancelling the context passed to New cancels every
// operation of the session.
//
// A Session is safe for concurrent use: its configuration is immutable after
// New.
type Session struct {
	base     context.Context
	fleet    FleetConfig
	hasFleet bool
	source   Source
	shards   int
	plan     PlanConfig
	seed     int64
	partial  bool
	observer StageObserver
}

// Option configures a Session under construction.
type Option func(*Session) error

// WithFleet sets the fleet the session simulates. The configuration is
// validated by New.
func WithFleet(cfg FleetConfig) Option {
	return func(s *Session) error {
		s.fleet = cfg
		s.hasFleet = true
		return nil
	}
}

// WithShards fixes the number of parallel shards used when aggregating a
// shardable source. n = 1 forces sequential aggregation; the default (no
// option, or n = 0) uses one shard per available CPU. Shard count never
// changes results: per-pool seeding makes sharded aggregation bit-identical
// to sequential.
func WithShards(n int) Option {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("headroom: negative shard count %d", n)
		}
		s.shards = n
		return nil
	}
}

// WithSource sets the session's record source, replacing the fleet
// simulator: a synthetic replay, an in-memory trace, or any custom
// implementation. Pipeline steps that consume records read from it.
func WithSource(src Source) Option {
	return func(s *Session) error {
		if src == nil {
			return errors.New("headroom: WithSource(nil)")
		}
		s.source = src
		return nil
	}
}

// WithPlanConfig sets the planning configuration used by Plan. Zero fields
// keep their documented defaults.
func WithPlanConfig(cfg PlanConfig) Option {
	return func(s *Session) error {
		s.plan = cfg
		return nil
	}
}

// WithPartialResults lets sharded aggregation tolerate failed shards: with
// it enabled, Simulate and Aggregate no longer abort the whole run when one
// shard (pool group) fails. Surviving shards aggregate normally and the
// failed ones are reported through a *PartialError (detect with errors.As),
// so callers can serve a degraded result instead of none. Failed shards do
// not cancel their siblings. Without the option (the default), the first
// shard failure cancels the remaining shards promptly and the run fails
// whole. In both modes a panicking shard is isolated: the panic is recovered
// and reported as that shard's error.
func WithPartialResults(enabled bool) Option {
	return func(s *Session) error {
		s.partial = enabled
		return nil
	}
}

// StageEvent describes one completed pipeline stage, or one completed shard
// of a sharded stage.
type StageEvent struct {
	// Stage names the stage: "simulate", "aggregate", "merge", "plan",
	// "validate", "forecast", or "aggregate.shard" for per-shard events.
	Stage string
	// Pool carries the shard's pool names (comma-joined) on per-shard
	// events; empty otherwise.
	Pool string
	// Shard is the shard index on per-shard events, -1 otherwise.
	Shard int
	// Records is the number of records the stage consumed, when it streams
	// a source.
	Records int
	// Duration is the stage's wall time.
	Duration time.Duration
	// Degraded marks a partial-results aggregation that lost shards (or, on
	// a per-shard event, this shard failing inside a tolerant run).
	Degraded bool
	// Err is the stage's failure, nil on success.
	Err error
}

// StageObserver receives one event per completed pipeline stage and shard.
// Observers must be fast and safe for concurrent use: shard events fire
// from the aggregation goroutines.
type StageObserver func(StageEvent)

// WithObserver registers a stage observer on the session. Independent of
// the observer, every session records stage durations into the process-wide
// metrics registry (headroom_stage_duration_seconds) and emits spans when
// the calling context carries a tracer (internal/obs); the observer is the
// hook for callers that want per-stage attribution beyond that — custom
// metrics, logging, admission control.
func WithObserver(fn StageObserver) Option {
	return func(s *Session) error {
		s.observer = fn
		return nil
	}
}

// WithSeed sets the seed driving experiment regeneration (RunExperiment).
// The fleet's own seed lives in FleetConfig.Seed. Defaults to 1.
func WithSeed(seed int64) Option {
	return func(s *Session) error {
		s.seed = seed
		return nil
	}
}

// New builds a Session. ctx bounds the session's lifetime: cancelling it
// cancels every in-flight and future operation on the session, in addition
// to the per-call contexts the methods take.
func New(ctx context.Context, opts ...Option) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{base: ctx, seed: 1}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.hasFleet {
		if err := s.fleet.Validate(); err != nil {
			return nil, fmt.Errorf("headroom: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// opCtx merges a per-call context with the session's base context so that
// cancelling either one cancels the operation. The returned stop function
// must be called when the operation completes.
func (s *Session) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.base.Done() == nil {
		// The base context can never be cancelled; nothing to merge.
		return ctx, func() {}
	}
	merged, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(s.base, cancel)
	return merged, func() {
		stop()
		cancel()
	}
}

// shardCount resolves the configured shard count.
func (s *Session) shardCount() int {
	if s.shards > 0 {
		return s.shards
	}
	return runtime.GOMAXPROCS(0)
}

// Simulate runs the session's record source to completion and returns the
// aggregated observations — Step 0 of the methodology, the measurement the
// planner consumes.
//
// Without WithSource, the session's fleet is simulated for the given number
// of days with the scheduled actions (reduction experiments, deployments).
// With WithSource, the configured source is streamed instead, and days and
// actions must be zero: they parameterise the simulator only.
//
// Aggregation is sharded across goroutines when the source supports it (the
// fleet simulator shards per pool); the result is bit-identical to a
// sequential pass for the same seed.
func (s *Session) Simulate(ctx context.Context, days int, actions ...Action) (*Aggregator, error) {
	if s.source != nil {
		if days != 0 || len(actions) != 0 {
			return nil, errors.New("headroom: days and actions configure the fleet simulator; this session streams a custom source")
		}
		return s.simulate(ctx, s.source, 0)
	}
	if !s.hasFleet {
		return nil, ErrNoSource
	}
	return s.simulate(ctx, NewSimSource(s.fleet, days, actions...), days)
}

// simulate wraps the aggregation in the "simulate" stage span and metrics.
func (s *Session) simulate(ctx context.Context, src Source, days int) (*Aggregator, error) {
	ctx, sp := obs.StartSpan(ctx, "session.simulate", obs.Int("days", days))
	start := time.Now()
	agg, err := s.Aggregate(ctx, src)
	d := time.Since(start)
	sp.RecordError(err)
	sp.End()
	s.stageDone(StageEvent{Stage: "simulate", Shard: -1, Duration: d, Degraded: isPartialErr(err), Err: err})
	return agg, err
}

// stageDone feeds one completed stage (or shard) into the process-wide
// stage metrics and the session's observer.
func (s *Session) stageDone(ev StageEvent) {
	if ev.Stage == "aggregate.shard" {
		obs.ObservePool(ev.Pool, ev.Duration)
	} else {
		obs.ObserveStage(ev.Stage, ev.Duration)
	}
	if s.observer != nil {
		s.observer(ev)
	}
}

// isPartialErr reports whether err is a degraded (partial-results) outcome.
func isPartialErr(err error) bool {
	var pe *PartialError
	return errors.As(err, &pe)
}

// Aggregate consumes a record source into an Aggregator, sharding across
// goroutines when the source implements ShardedSource and the session's
// shard count allows. A nil src uses the session's configured source.
func (s *Session) Aggregate(ctx context.Context, src Source) (*Aggregator, error) {
	if src == nil {
		src = s.source
	}
	if src == nil {
		return nil, ErrNoSource
	}
	ctx, done := s.opCtx(ctx)
	defer done()

	var subs []Source
	if sh, ok := src.(ShardedSource); ok {
		if n := s.shardCount(); n > 1 {
			subs = sh.Shards(n)
		}
	}
	shards := len(subs)
	if shards < 1 {
		shards = 1
	}
	ctx, sp := obs.StartSpan(ctx, "session.aggregate", obs.Int("shards", shards))
	start := time.Now()
	agg, records, err := s.aggregate(ctx, src, subs)
	d := time.Since(start)
	degraded := isPartialErr(err)
	sp.SetAttr(obs.Int64("records", records), obs.Bool("degraded", degraded))
	sp.RecordError(err)
	sp.End()
	s.stageDone(StageEvent{
		Stage: "aggregate", Shard: -1, Records: int(records),
		Duration: d, Degraded: degraded, Err: err,
	})
	return agg, err
}

// aggregate streams the source (sharded when subs has more than one entry)
// and merges the per-shard aggregators, returning the record count consumed.
func (s *Session) aggregate(ctx context.Context, src Source, subs []Source) (*Aggregator, int64, error) {
	if len(subs) <= 1 {
		agg := metrics.NewAggregator()
		var n int64
		// Recover panics like the sharded fan-out below does for its
		// goroutines, so panic semantics do not depend on the shard count:
		// every execution path reports a panicking source as an error.
		err := func() (err error) {
			defer func() {
				if v := recover(); v != nil {
					err = fmt.Errorf("headroom: source panicked: %v", v)
				}
			}()
			return src.Stream(ctx, func(r Record) error { agg.Add(r); n++; return nil })
		}()
		if err != nil {
			return nil, n, err
		}
		return agg, n, nil
	}

	// One goroutine and one private aggregator per shard; merge in shard
	// order afterwards. Shards own disjoint (pool, datacenter) keys, so the
	// merged aggregator is bit-identical to a single sequential pass. Each
	// shard goroutine is isolated: a panic is recovered into that shard's
	// error instead of tearing the process down. Each shard carries its own
	// span ("simulate.pool", annotated with pool names, record count,
	// retries and the degraded flag) and per-pool duration histogram.
	aggs := make([]*Aggregator, len(subs))
	errs := make([]error, len(subs))
	counts := make([]int64, len(subs))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub Source) {
			defer wg.Done()
			pools := strings.Join(poolNamesOf(sub), ",")
			sctx, ssp := obs.StartSpan(wctx, "simulate.pool",
				obs.Str("pool", pools), obs.Int("shard", i))
			shardStart := time.Now()
			defer func() {
				if v := recover(); v != nil {
					errs[i] = fmt.Errorf("headroom: shard %d panicked: %v", i, v)
					if !s.partial {
						cancel()
					}
				}
				sd := time.Since(shardStart)
				degraded := s.partial && errs[i] != nil
				ssp.SetAttr(obs.Int64("records", counts[i]), obs.Bool("degraded", degraded))
				ssp.RecordError(errs[i])
				ssp.End()
				s.stageDone(StageEvent{
					Stage: "aggregate.shard", Pool: pools, Shard: i,
					Records: int(counts[i]), Duration: sd,
					Degraded: degraded, Err: errs[i],
				})
			}()
			agg := metrics.NewAggregator()
			if err := sub.Stream(sctx, func(r Record) error { agg.Add(r); counts[i]++; return nil }); err != nil {
				errs[i] = err
				if !s.partial {
					cancel() // fail fast: stop sibling shards
				}
				return
			}
			aggs[i] = agg
		}(i, sub)
	}
	wg.Wait()
	var records int64
	for _, n := range counts {
		records += n
	}

	if s.partial {
		agg, err := s.mergePartial(ctx, subs, aggs, errs)
		return agg, records, err
	}

	var failure error
	for _, err := range errs {
		if err == nil {
			continue
		}
		// Prefer a concrete cause over the cascade cancellations it
		// triggered in sibling shards.
		if failure == nil || (errors.Is(failure, context.Canceled) && !errors.Is(err, context.Canceled)) {
			failure = err
		}
	}
	if failure != nil {
		if err := ctx.Err(); err != nil {
			return nil, records, err
		}
		return nil, records, failure
	}
	out := s.mergeShards(ctx, aggs)
	return out, records, nil
}

// mergeShards merges the per-shard aggregators in shard order, as the
// "merge" stage.
func (s *Session) mergeShards(ctx context.Context, aggs []*Aggregator) *Aggregator {
	_, sp := obs.StartSpan(ctx, "session.merge", obs.Int("shards", len(aggs)))
	start := time.Now()
	out := aggs[0]
	for _, a := range aggs[1:] {
		out.Merge(a)
	}
	d := time.Since(start)
	sp.End()
	s.stageDone(StageEvent{Stage: "merge", Shard: -1, Duration: d})
	return out
}

// mergePartial wraps the partial-results merge in the "merge" stage span
// and metrics, mirroring mergeShards for the tolerant path.
func (s *Session) mergePartial(ctx context.Context, subs []Source, aggs []*Aggregator, errs []error) (*Aggregator, error) {
	_, sp := obs.StartSpan(ctx, "session.merge", obs.Int("shards", len(aggs)))
	start := time.Now()
	out, err := mergePartial(ctx, subs, aggs, errs)
	d := time.Since(start)
	sp.RecordError(err)
	sp.End()
	s.stageDone(StageEvent{Stage: "merge", Shard: -1, Duration: d, Degraded: isPartialErr(err), Err: err})
	return out, err
}

// mergePartial combines the surviving shards of a partial-results fan-out
// and reports the failed ones as a *PartialError. Cancellation of the caller
// context still fails the whole run.
func mergePartial(ctx context.Context, subs []Source, aggs []*Aggregator, errs []error) (*Aggregator, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out *Aggregator
	pe := &PartialError{Shards: len(subs)}
	for i := range subs {
		if errs[i] != nil {
			pe.Failed = append(pe.Failed, PoolError{Shard: i, Pools: poolNamesOf(subs[i]), Err: errs[i]})
			continue
		}
		if out == nil {
			out = aggs[i]
		} else {
			out.Merge(aggs[i])
		}
	}
	if len(pe.Failed) == 0 {
		return out, nil
	}
	// out is nil when every shard failed: no partial result to serve.
	return out, pe
}

// AggregateShard consumes exactly one shard of the session's configured
// source: the source is split into `of` sub-sources (as Aggregate would) and
// only shard `index` is streamed, sequentially, into a fresh aggregator. It
// returns the shard's aggregate and the number of records consumed.
//
// This is the worker half of distributed aggregation (internal/dist): a
// coordinator splits a job into shards, ships (index, of) plus the request to
// a fleet of workers, and each worker reproduces the identical shard split —
// sources are deterministic, so equal configuration yields equal shards —
// runs its one shard, and returns the aggregate via EncodeAggregator.
// Merging the per-shard aggregates in shard order is then bit-identical to a
// single-process sharded run.
func (s *Session) AggregateShard(ctx context.Context, index, of int) (*Aggregator, int64, error) {
	if s.source == nil {
		return nil, 0, ErrNoSource
	}
	if of < 1 {
		return nil, 0, fmt.Errorf("headroom: AggregateShard shard count %d, want >= 1", of)
	}
	if index < 0 || index >= of {
		return nil, 0, fmt.Errorf("headroom: shard index %d out of range [0, %d)", index, of)
	}
	ctx, done := s.opCtx(ctx)
	defer done()
	subs := []Source{s.source}
	if of > 1 {
		sh, ok := s.source.(ShardedSource)
		if !ok {
			return nil, 0, fmt.Errorf("headroom: source %T cannot split into %d shards", s.source, of)
		}
		subs = sh.Shards(of)
	}
	if len(subs) != of {
		return nil, 0, fmt.Errorf("headroom: source split into %d shards, coordinator expected %d", len(subs), of)
	}
	sub := subs[index]
	pools := strings.Join(poolNamesOf(sub), ",")
	sctx, sp := obs.StartSpan(ctx, "simulate.pool",
		obs.Str("pool", pools), obs.Int("shard", index))
	start := time.Now()
	agg := metrics.NewAggregator()
	var records int64
	// Recover panics exactly like the in-process sharded fan-out does for its
	// workers: a worker process serving shards over HTTP must degrade the one
	// shard, not die — the sequential path has no equivalent isolation, so
	// without this the four execution paths diverge on panic faults.
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("headroom: shard %d panicked: %v", index, v)
			}
		}()
		return sub.Stream(sctx, func(r Record) error { agg.Add(r); records++; return nil })
	}()
	d := time.Since(start)
	sp.SetAttr(obs.Int64("records", records))
	sp.RecordError(err)
	sp.End()
	s.stageDone(StageEvent{
		Stage: "aggregate.shard", Pool: pools, Shard: index,
		Records: int(records), Duration: d, Err: err,
	})
	if err != nil {
		return nil, records, err
	}
	return agg, records, nil
}

// Stream streams a record source sequentially through emit, for workloads
// too large to aggregate in one pass or for writing traces to disk. A nil
// src uses the session's configured source.
func (s *Session) Stream(ctx context.Context, src Source, emit func(Record) error) error {
	if src == nil {
		src = s.source
	}
	if src == nil {
		return ErrNoSource
	}
	ctx, done := s.opCtx(ctx)
	defer done()
	return src.Stream(ctx, emit)
}

// Plan runs Steps 1-2 of the methodology over aggregated observations:
// metric validation (with refinement), server grouping, model fitting, and
// right-sizing each pool within the latency budget configured via
// WithPlanConfig.
func (s *Session) Plan(ctx context.Context, agg *Aggregator) ([]PoolPlan, error) {
	ctx, done := s.opCtx(ctx)
	defer done()
	ctx, sp := obs.StartSpan(ctx, "session.plan")
	start := time.Now()
	plans, err := core.Plan(ctx, agg, s.plan)
	d := time.Since(start)
	sp.SetAttr(obs.Int("pools", len(plans)))
	sp.RecordError(err)
	sp.End()
	s.stageDone(StageEvent{Stage: "plan", Shard: -1, Duration: d, Err: err})
	return plans, err
}

// RunRSM executes the iterative server-reduction experiment of §II-B2
// against a plant, stopping at the QoS limit. Cancellation propagates into
// the plant's observations.
func (s *Session) RunRSM(ctx context.Context, plant Plant, cfg RSMConfig) (RSMResult, error) {
	ctx, done := s.opCtx(ctx)
	defer done()
	return optimize.RunRSM(ctx, plant, cfg)
}

// Validate runs the offline A/B regression harness of §II-D: two identical
// pools, identical synthetic workload sweeps, one with the change.
func (s *Session) Validate(ctx context.Context, cfg ValidateConfig, change Change) (ValidateReport, error) {
	ctx, done := s.opCtx(ctx)
	defer done()
	ctx, sp := obs.StartSpan(ctx, "session.validate")
	start := time.Now()
	report, err := validate.Run(ctx, cfg, change)
	d := time.Since(start)
	sp.RecordError(err)
	sp.End()
	s.stageDone(StageEvent{Stage: "validate", Shard: -1, Duration: d, Err: err})
	return report, err
}

// Forecast fits a trend + daily-seasonality model to an offered-load
// series, the workload-trend input capacity planners combine with QoS
// requirements (§II).
func (s *Session) Forecast(ctx context.Context, series []float64, ticksPerDay int) (ForecastModel, error) {
	ctx, done := s.opCtx(ctx)
	defer done()
	if err := ctx.Err(); err != nil {
		return ForecastModel{}, err
	}
	_, sp := obs.StartSpan(ctx, "session.forecast", obs.Int("points", len(series)))
	start := time.Now()
	model, err := forecast.Fit(series, ticksPerDay)
	d := time.Since(start)
	sp.RecordError(err)
	sp.End()
	s.stageDone(StageEvent{Stage: "forecast", Shard: -1, Duration: d, Err: err})
	return model, err
}

// ExperimentResult is a regenerated paper table or figure.
type ExperimentResult = experiments.Result

// ExperimentInfo identifies a registered paper artifact.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists the registered paper artifacts (tables, figures,
// ablations) in paper order.
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, 0, len(experiments.Registry))
	for _, e := range experiments.Registry {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// RunExperiment regenerates one paper artifact by ID ("fig9", "table4",
// ...), driven by the session's seed (WithSeed). fast shortens observation
// horizons for tests and smoke runs.
func (s *Session) RunExperiment(ctx context.Context, id string, fast bool) (*ExperimentResult, error) {
	ctx, done := s.opCtx(ctx)
	defer done()
	exp, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return exp.Run(ctx, experiments.Config{Seed: s.seed, Fast: fast})
}
