// Package slo models Quality-of-Service requirements the way the paper
// defines them (§II): each micro-service's QoS is a set of Service Level
// Objectives, each a specific metric with a minimum threshold — e.g.
// "response latency must be less than 500 ms, and reliability must be
// 99.999%". Capacity planners combine these with workload trends and
// expected failure rates to decide how many servers a pool needs.
package slo

import (
	"errors"
	"fmt"
	"strings"

	"headroom/internal/metrics"
	"headroom/internal/stats"
)

// Kind is the metric an objective constrains.
type Kind int

const (
	// LatencyPercentile constrains a latency percentile (ms) to stay at or
	// below Threshold.
	LatencyPercentile Kind = iota + 1
	// Availability constrains the fraction of windows served to stay at or
	// above Threshold.
	Availability
	// ErrorRate constrains mean errors per window to stay at or below
	// Threshold.
	ErrorRate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LatencyPercentile:
		return "latency-percentile"
	case Availability:
		return "availability"
	case ErrorRate:
		return "error-rate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Objective is one SLO.
type Objective struct {
	// Name labels the objective in reports ("p95 latency", "availability").
	Name string
	// Kind selects the constrained metric.
	Kind Kind
	// Percentile applies to LatencyPercentile objectives (e.g. 95).
	Percentile float64
	// Threshold is the bound: an upper bound for latency and error rate, a
	// lower bound for availability.
	Threshold float64
}

// Validate checks the objective is well formed.
func (o Objective) Validate() error {
	switch o.Kind {
	case LatencyPercentile:
		if o.Percentile <= 0 || o.Percentile >= 100 {
			return fmt.Errorf("slo %q: percentile %v outside (0, 100)", o.Name, o.Percentile)
		}
		if o.Threshold <= 0 {
			return fmt.Errorf("slo %q: non-positive latency threshold %v", o.Name, o.Threshold)
		}
	case Availability:
		if o.Threshold <= 0 || o.Threshold > 1 {
			return fmt.Errorf("slo %q: availability threshold %v outside (0, 1]", o.Name, o.Threshold)
		}
	case ErrorRate:
		if o.Threshold < 0 {
			return fmt.Errorf("slo %q: negative error-rate threshold %v", o.Name, o.Threshold)
		}
	default:
		return fmt.Errorf("slo %q: unknown kind %v", o.Name, o.Kind)
	}
	return nil
}

// Set is a micro-service's full QoS requirement.
type Set struct {
	// Service names the micro-service the requirement belongs to.
	Service    string
	Objectives []Objective
}

// Validate checks every objective.
func (s Set) Validate() error {
	if len(s.Objectives) == 0 {
		return errors.New("slo: empty objective set")
	}
	seen := make(map[string]bool, len(s.Objectives))
	for _, o := range s.Objectives {
		if err := o.Validate(); err != nil {
			return err
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
	}
	return nil
}

// Evaluation is the outcome of checking one objective against observations.
type Evaluation struct {
	Objective Objective
	// Observed is the measured value of the constrained metric.
	Observed float64
	// Met reports whether the objective held.
	Met bool
	// Margin is the distance to the threshold in the objective's units;
	// positive means headroom remains, negative means violation depth.
	Margin float64
}

// Report is the evaluation of a full SLO set.
type Report struct {
	Service     string
	Evaluations []Evaluation
	// Met is true when every objective held.
	Met bool
}

// String renders the report as one line per objective.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "slo report for %s (met=%v)\n", r.Service, r.Met)
	for _, e := range r.Evaluations {
		state := "OK"
		if !e.Met {
			state = "VIOLATED"
		}
		fmt.Fprintf(&b, "  %-20s observed %.4g threshold %.4g margin %+.4g  %s\n",
			e.Objective.Name, e.Observed, e.Objective.Threshold, e.Margin, state)
	}
	return b.String()
}

// Evaluate checks the SLO set against a pool's observation series and the
// availability of its servers.
//
// Latency objectives are evaluated against the distribution of per-window
// pool p95 latencies (the paper's "average 95th percentile" chart quantity);
// availability objectives against meanAvailability; error objectives against
// the mean per-window error count.
func Evaluate(set Set, series []metrics.TickStat, meanAvailability float64) (Report, error) {
	if err := set.Validate(); err != nil {
		return Report{}, err
	}
	if len(series) == 0 {
		return Report{}, errors.New("slo: no observations")
	}
	var lat, errs []float64
	for _, t := range series {
		if t.Servers == 0 {
			continue
		}
		lat = append(lat, t.LatencyMean)
		errs = append(errs, t.Errors)
	}
	if len(lat) == 0 {
		return Report{}, errors.New("slo: no online observations")
	}
	rep := Report{Service: set.Service, Met: true}
	for _, o := range set.Objectives {
		var ev Evaluation
		ev.Objective = o
		switch o.Kind {
		case LatencyPercentile:
			ev.Observed = stats.Percentile(lat, o.Percentile)
			ev.Met = ev.Observed <= o.Threshold
			ev.Margin = o.Threshold - ev.Observed
		case Availability:
			ev.Observed = meanAvailability
			ev.Met = ev.Observed >= o.Threshold
			ev.Margin = ev.Observed - o.Threshold
		case ErrorRate:
			ev.Observed = stats.Mean(errs)
			ev.Met = ev.Observed <= o.Threshold
			ev.Margin = o.Threshold - ev.Observed
		}
		if !ev.Met {
			rep.Met = false
		}
		rep.Evaluations = append(rep.Evaluations, ev)
	}
	return rep, nil
}

// Typical returns the SLO set the paper describes as typical for large
// online services: a p95 latency bound plus 99.95%-99.999% availability.
func Typical(service string, latencyMs float64) Set {
	return Set{
		Service: service,
		Objectives: []Objective{
			{Name: "p95 latency", Kind: LatencyPercentile, Percentile: 95, Threshold: latencyMs},
			{Name: "availability", Kind: Availability, Threshold: 0.9995},
			{Name: "error rate", Kind: ErrorRate, Threshold: 1},
		},
	}
}
