// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated fleet: Tables II-IV and Figures 2-16. Each
// experiment produces a Result containing the same rows/series the paper
// reports plus headline scalar metrics that EXPERIMENTS.md compares against
// the published values.
//
// Experiments are registered in Registry and addressable by ID ("table2",
// "fig9", ...); cmd/experiments and the root bench harness drive them.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/trace"
)

// Config controls experiment execution.
type Config struct {
	// Seed drives all stochastic components.
	Seed int64
	// Fast shrinks observation horizons (for tests); the default runs the
	// durations the figures call for.
	Fast bool
}

// Result is a regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Header and Rows are the printable artifact (the figure's series or
	// the table's rows).
	Header []string
	Rows   [][]string
	// Metrics are the headline scalars compared against the paper.
	Metrics map[string]float64
	// Notes document deviations and context.
	Notes []string
}

// Metric records a headline scalar.
func (r *Result) Metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Render writes the result as an aligned text table plus metrics.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if len(r.Header) > 0 {
		if err := writeRow(r.Header); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "metric %-40s %.4g\n", k, r.Metrics[k]); err != nil {
				return err
			}
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is one registered table/figure generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context, Config) (*Result, error)
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{"fig2", "Resource counters vs workload (micro-service D, 6 DCs, 1 day)", Fig2},
	{"fig3", "p5 vs p95 CPU scatter, pool I (two hardware generations)", Fig3},
	{"fig4", "Pool workload time series around the unplanned event", Fig4},
	{"fig5", "CPU vs RPS spanning the unplanned event (linear model holds)", Fig5},
	{"fig6", "Latency vs workload, 5 DCs, one at 4x load", Fig6},
	{"fig7", "RSM iterations: latency rises to the 14 ms QoS limit", Fig7},
	{"fig8", "Pool B %CPU vs workload/server, both stages + linear fit", Fig8},
	{"fig9", "Pool B p95 latency vs workload/server + quadratic forecast", Fig9},
	{"fig10", "Pool D %CPU vs workload/server + linear fit", Fig10},
	{"fig11", "Pool D p95 latency vs workload/server + quadratic forecast", Fig11},
	{"fig12", "CDF of per-server p95 CPU over a day", Fig12},
	{"fig13", "Distribution of 120 s CPU samples over a day", Fig13},
	{"fig14", "Distribution of daily server availability", Fig14},
	{"fig15", "Daily pool availability, pools C/D/H, 14 days", Fig15},
	{"fig16", "Offline A/B regression: memory-leak fix with latency bug", Fig16},
	{"table2", "Pool B RPS/server percentiles, original vs 30% reduction", Table2},
	{"table3", "Pool D RPS/server percentiles, original vs 10% reduction", Table3},
	{"table4", "Savings summary for the seven largest pools", Table4},
	{"grouping-tree", "Decision-tree pool classification (paper: 34 splits, AUC 0.9804)", GroupingTree},
	{"ablation-ransac", "Ablation: RANSAC vs OLS under contaminated experiments", AblationRANSAC},
	{"ablation-degree", "Ablation: extrapolation accuracy by polynomial degree", AblationDegree},
	{"ablation-partitions", "Ablation: load-partition count sensitivity", AblationPartitions},
	{"ablation-planners", "Ablation: black-box plan vs M/M/c vs reactive autoscaler", AblationPlanners},
}

// ByID returns the registered experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// fleetKey caches whole-fleet aggregations, which several figures share.
type fleetKey struct {
	seed int64
	days int
}

var (
	fleetMu    sync.Mutex
	fleetCache = map[fleetKey]*metrics.Aggregator{}
)

// fleetAggregator simulates the default fleet for the given days and
// aggregates it, caching per (seed, days) because Figures 12-14 share the
// same fleet-day. The lock covers only the cache map, never the simulation,
// so concurrent experiments stay cancellable; two concurrent misses both
// simulate, deterministically producing the same aggregate (last one wins
// the cache slot).
func fleetAggregator(ctx context.Context, seed int64, days int) (*metrics.Aggregator, error) {
	key := fleetKey{seed: seed, days: days}
	fleetMu.Lock()
	agg, ok := fleetCache[key]
	fleetMu.Unlock()
	if ok {
		return agg, nil
	}
	cfg := sim.DefaultFleet(seed)
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	agg = metrics.NewAggregator()
	if err := s.RunContext(ctx, days*s.TicksPerDay(), func(r trace.Record) error {
		agg.Add(r)
		return nil
	}); err != nil {
		return nil, err
	}
	fleetMu.Lock()
	fleetCache[key] = agg
	fleetMu.Unlock()
	return agg, nil
}

// poolAggregator simulates a single-pool fleet (cheaper than the whole
// default fleet) with optional actions, returning the aggregator.
func poolAggregator(ctx context.Context, pool sim.PoolConfig, seed int64, ticks int, actions ...sim.Action) (*metrics.Aggregator, error) {
	cfg := sim.FleetConfig{
		DCs:               nineRegions(),
		Pools:             []sim.PoolConfig{pool},
		WorkloadNoiseFrac: 0.03,
		Seed:              seed,
	}
	s, err := sim.New(cfg, actions...)
	if err != nil {
		return nil, err
	}
	agg := metrics.NewAggregator()
	if err := s.RunContext(ctx, ticks, func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		return nil, err
	}
	return agg, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func g4(v float64) string { return fmt.Sprintf("%.4g", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.0f%%", 100*v)
}
