package workload

import (
	"math"
	"math/rand"
	"testing"
)

func productionMix() Mix {
	return Mix{
		{Name: "cache-hit", Weight: 70, CostFactor: 0.5, DependencyLatencyMs: 0},
		{Name: "cache-miss", Weight: 20, CostFactor: 2.0, DependencyLatencyMs: 8},
		{Name: "write", Weight: 10, CostFactor: 3.0, DependencyLatencyMs: 15},
	}
}

func TestMixValidate(t *testing.T) {
	if err := productionMix().Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	bad := []struct {
		name string
		mix  Mix
	}{
		{"empty", Mix{}},
		{"negative weight", Mix{{Name: "a", Weight: -1, CostFactor: 1}}},
		{"negative cost", Mix{{Name: "a", Weight: 1, CostFactor: -1}}},
		{"negative dep latency", Mix{{Name: "a", Weight: 1, CostFactor: 1, DependencyLatencyMs: -2}}},
		{"zero total", Mix{{Name: "a", Weight: 0, CostFactor: 1}}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.mix.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestMixNormalize(t *testing.T) {
	n, err := productionMix().Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	var total float64
	for _, c := range n {
		total += c.Weight
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("normalized total = %v, want 1", total)
	}
	// Original untouched.
	if productionMix()[0].Weight != 70 {
		t.Error("Normalize mutated its receiver")
	}
}

func TestMixMeanCost(t *testing.T) {
	mc, err := productionMix().MeanCost()
	if err != nil {
		t.Fatalf("MeanCost: %v", err)
	}
	want := 0.7*0.5 + 0.2*2 + 0.1*3
	if math.Abs(mc-want) > 1e-12 {
		t.Errorf("MeanCost = %v, want %v", mc, want)
	}
	ml, err := productionMix().MeanDependencyLatency()
	if err != nil {
		t.Fatalf("MeanDependencyLatency: %v", err)
	}
	wantL := 0.2*8 + 0.1*15.0
	if math.Abs(ml-wantL) > 1e-12 {
		t.Errorf("MeanDependencyLatency = %v, want %v", ml, wantL)
	}
}

func TestMixSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	n := 20000
	for i := 0; i < n; i++ {
		c, err := productionMix().Sample(rng)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		counts[c.Name]++
	}
	checks := map[string]float64{"cache-hit": 0.7, "cache-miss": 0.2, "write": 0.1}
	for name, want := range checks {
		got := float64(counts[name]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("class %s frequency = %v, want ~%v", name, got, want)
		}
	}
}

func TestDistance(t *testing.T) {
	a := productionMix()
	d, err := Distance(a, a)
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
	disjoint := Mix{{Name: "other", Weight: 1, CostFactor: 1}}
	d, err = Distance(a, disjoint)
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint distance = %v, want 1", d)
	}
	shifted := Mix{
		{Name: "cache-hit", Weight: 60, CostFactor: 0.5},
		{Name: "cache-miss", Weight: 30, CostFactor: 2},
		{Name: "write", Weight: 10, CostFactor: 3},
	}
	d, err = Distance(a, shifted)
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if math.Abs(d-0.1) > 1e-12 {
		t.Errorf("shifted distance = %v, want 0.1", d)
	}
	if _, err := Distance(Mix{}, a); err == nil {
		t.Error("invalid mix should error")
	}
}

func TestEmpiricalMix(t *testing.T) {
	names := []string{"a", "b", "a", "a", "b", "c"}
	m, err := EmpiricalMix(names)
	if err != nil {
		t.Fatalf("EmpiricalMix: %v", err)
	}
	n, err := m.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	want := map[string]float64{"a": 0.5, "b": 1.0 / 3, "c": 1.0 / 6}
	for _, c := range n {
		if math.Abs(c.Weight-want[c.Name]) > 1e-12 {
			t.Errorf("class %s weight = %v, want %v", c.Name, c.Weight, want[c.Name])
		}
	}
	if _, err := EmpiricalMix(nil); err == nil {
		t.Error("empty observations should error")
	}
}

// Property: sampling from a mix and re-estimating it converges (small TV
// distance).
func TestSampleRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := productionMix()
	var names []string
	for i := 0; i < 50000; i++ {
		c, err := src.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, c.Name)
	}
	emp, err := EmpiricalMix(names)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distance(src, emp)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.02 {
		t.Errorf("round-trip TV distance = %v, want <= 0.02", d)
	}
}
