package optimize

import (
	"math"
	"math/rand"
	"testing"

	"headroom/internal/metrics"
	"headroom/internal/stats"
)

// poolBSeries builds pool-B-like aggregates: linear CPU, quadratic latency,
// diurnal per-server load around a server count.
func poolBSeries(n, servers int, seed int64) []metrics.TickStat {
	rng := rand.New(rand.NewSource(seed))
	truthLat := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	out := make([]metrics.TickStat, n)
	for i := range out {
		dayFrac := float64(i%720) / 720
		rps := 280 * (1 + 0.38*math.Cos(2*math.Pi*(dayFrac-13.0/24))) * (1 + 0.03*rng.NormFloat64())
		out[i] = metrics.TickStat{
			Tick:         i,
			Servers:      servers,
			TotalRPS:     rps * float64(servers),
			RPSPerServer: rps,
			CPUMean:      0.028*rps + 1.37 + 0.3*rng.NormFloat64(),
			LatencyMean:  truthLat.Predict(rps) + 0.5*rng.NormFloat64(),
		}
	}
	return out
}

func TestFitPoolModelRecoversPaperFits(t *testing.T) {
	series := poolBSeries(1221, 300, 1)
	m, err := FitPoolModel(series)
	if err != nil {
		t.Fatalf("FitPoolModel: %v", err)
	}
	if math.Abs(m.CPU.Slope-0.028) > 0.002 {
		t.Errorf("cpu slope = %v, want ~0.028", m.CPU.Slope)
	}
	if m.CPU.R2 < 0.95 {
		t.Errorf("cpu R2 = %v, want >= 0.95 (paper: 0.984)", m.CPU.R2)
	}
	truth := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	for _, rps := range []float64{250, 377, 540} {
		if d := math.Abs(m.Latency.Predict(rps) - truth.Predict(rps)); d > 1 {
			t.Errorf("latency(%v) = %v, truth %v", rps, m.Latency.Predict(rps), truth.Predict(rps))
		}
	}
	if m.Windows != 1221 {
		t.Errorf("Windows = %d, want 1221", m.Windows)
	}
}

func TestFitPoolModelErrors(t *testing.T) {
	if _, err := FitPoolModel(nil); err == nil {
		t.Error("empty series should error")
	}
	if _, err := FitPoolModel(poolBSeries(4, 10, 1)); err == nil {
		t.Error("too few windows should error")
	}
}

func TestForecastReductionPaperScenario(t *testing.T) {
	// The paper's pool B experiment: 30% reduction at ~377 RPS/server
	// forecast 31.5 ms (measured 30.9). Reproduce the arithmetic with the
	// published models.
	m := PoolModel{
		CPU:     stats.LinearFit{Slope: 0.028, Intercept: 1.37},
		Latency: stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}},
	}
	total := 377.0 * 300 // p95 load at original count
	fc, err := m.ForecastReduction(total, 300, 210)
	if err != nil {
		t.Fatalf("ForecastReduction: %v", err)
	}
	if math.Abs(fc.RPSPerServer-538.6) > 1 {
		t.Errorf("RPS/server = %v, want ~538.6", fc.RPSPerServer)
	}
	// cpu = 0.028*538.6+1.37 = 16.45 (paper forecast 16.5 at 540).
	if math.Abs(fc.CPUPct-16.45) > 0.1 {
		t.Errorf("cpu = %v, want ~16.45", fc.CPUPct)
	}
	// latency = 31.67 at 540 RPS (paper: 31.5 at its measured load).
	if math.Abs(fc.LatencyMs-31.66) > 0.2 {
		t.Errorf("latency = %v, want ~31.66", fc.LatencyMs)
	}
	if _, err := m.ForecastReduction(total, 0, 10); err == nil {
		t.Error("zero current should error")
	}
	if _, err := m.ForecastReduction(-1, 10, 5); err == nil {
		t.Error("negative load should error")
	}
}

func TestMaxReduction(t *testing.T) {
	m := PoolModel{
		CPU:     stats.LinearFit{Slope: 0.028, Intercept: 1.37},
		Latency: stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}},
	}
	total := 377.0 * 300
	// Budget latency 36 ms: find largest cut.
	servers, frac, err := m.MaxReduction(total, 300, 36)
	if err != nil {
		t.Fatalf("MaxReduction: %v", err)
	}
	if servers >= 300 || servers <= 0 {
		t.Fatalf("servers = %d", servers)
	}
	fc, err := m.ForecastReduction(total, 300, servers)
	if err != nil {
		t.Fatal(err)
	}
	if fc.LatencyMs > 36 {
		t.Errorf("latency at recommendation = %v, exceeds limit", fc.LatencyMs)
	}
	fc2, err := m.ForecastReduction(total, 300, servers-1)
	if err != nil {
		t.Fatal(err)
	}
	if fc2.LatencyMs <= 36 && fc2.CPUPct < 100 {
		t.Errorf("one fewer server (lat %v) would still fit; not maximal", fc2.LatencyMs)
	}
	if math.Abs(frac-(1-float64(servers)/300)) > 1e-12 {
		t.Errorf("frac = %v inconsistent with servers = %d", frac, servers)
	}
	// A limit below the current latency forbids any reduction.
	servers, frac, err = m.MaxReduction(total, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if servers != 300 || frac != 0 {
		t.Errorf("impossible limit: servers=%d frac=%v, want 300/0", servers, frac)
	}
	if _, _, err := m.MaxReduction(total, 0, 36); err == nil {
		t.Error("zero current should error")
	}
}

func TestPartitionByLoad(t *testing.T) {
	series := poolBSeries(720, 300, 2)
	parts, err := PartitionByLoad(series, 5)
	if err != nil {
		t.Fatalf("PartitionByLoad: %v", err)
	}
	if len(parts) != 5 {
		t.Fatalf("partitions = %d, want 5", len(parts))
	}
	var total int
	for i, p := range parts {
		total += len(p.Points)
		if p.LoadHi < p.LoadLo {
			t.Errorf("partition %d inverted bounds", i)
		}
		if i > 0 && p.LoadLo < parts[i-1].LoadHi-1e-9 {
			t.Errorf("partition %d overlaps previous", i)
		}
		// Equal-count partitioning: sizes within 1.
		if len(p.Points) < 720/5-1 || len(p.Points) > 720/5+1 {
			t.Errorf("partition %d size %d", i, len(p.Points))
		}
	}
	if total != 720 {
		t.Errorf("points = %d, want 720", total)
	}
	if _, err := PartitionByLoad(series, 0); err == nil {
		t.Error("zero partitions should error")
	}
	if _, err := PartitionByLoad(nil, 2); err == nil {
		t.Error("empty series should error")
	}
}

func TestLatencyVsServers(t *testing.T) {
	// Within one load partition, vary server count and observe latency:
	// the robust quadratic must recover the inverse relationship (fewer
	// servers -> higher latency).
	rng := rand.New(rand.NewSource(3))
	truthLat := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	totalLoad := 100000.0
	var p Partition
	for tick := 0; tick < 200; tick++ {
		n := 180 + float64(rng.Intn(140)) // 180..320 servers
		perServer := totalLoad / n
		p.Points = append(p.Points, ObsPoint{
			Tick:     tick,
			Servers:  n,
			Latency:  truthLat.Predict(perServer) + 0.3*rng.NormFloat64(),
			TotalRPS: totalLoad,
		})
	}
	res, err := LatencyVsServers(p, 4)
	if err != nil {
		t.Fatalf("LatencyVsServers: %v", err)
	}
	// Latency must decrease with server count across the observed range.
	at200 := res.Model.Predict(200)
	at300 := res.Model.Predict(300)
	if at200 <= at300 {
		t.Errorf("latency(200 servers)=%v should exceed latency(300)=%v", at200, at300)
	}
	// And match the truth through the per-server mapping.
	truthAt200 := truthLat.Predict(totalLoad / 200)
	if math.Abs(at200-truthAt200) > 1 {
		t.Errorf("latency(200) = %v, truth %v", at200, truthAt200)
	}
	if _, err := LatencyVsServers(Partition{}, 1); err == nil {
		t.Error("empty partition should error")
	}
}

func TestValidateOnEvent(t *testing.T) {
	// Pre-event: normal diurnal traffic. Event: +127% load on the same
	// linear/quadratic truth — prediction error must stay small (Figures
	// 4-6), and the peak ratio must reflect the surge.
	series := poolBSeries(720, 300, 5)
	rng := rand.New(rand.NewSource(6))
	truthLat := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	for i := 380; i < 440; i++ {
		rps := series[i].RPSPerServer * 2.27
		series[i].RPSPerServer = rps
		series[i].TotalRPS = rps * 300
		series[i].CPUMean = 0.028*rps + 1.37 + 0.3*rng.NormFloat64()
		series[i].LatencyMean = truthLat.Predict(rps) + 0.5*rng.NormFloat64()
	}
	ev, err := ValidateOnEvent(series, func(tick int) bool { return tick >= 380 && tick < 440 })
	if err != nil {
		t.Fatalf("ValidateOnEvent: %v", err)
	}
	if ev.MeanAbsCPUErr > 1 {
		t.Errorf("cpu error = %v, want <= 1 (linear model holds through surge)", ev.MeanAbsCPUErr)
	}
	if ev.MeanAbsLatErr > 2 {
		t.Errorf("latency error = %v, want <= 2", ev.MeanAbsLatErr)
	}
	if ev.PeakRPSRatio < 1.8 {
		t.Errorf("peak ratio = %v, want ~2.27-ish surge visible", ev.PeakRPSRatio)
	}
	if ev.EventWindows != 60 {
		t.Errorf("event windows = %d, want 60", ev.EventWindows)
	}
	if _, err := ValidateOnEvent(series, nil); err == nil {
		t.Error("nil selector should error")
	}
	if _, err := ValidateOnEvent(series, func(int) bool { return false }); err == nil {
		t.Error("no event windows should error")
	}
}

func TestSummarizeSavings(t *testing.T) {
	obs := []PoolObservation{
		{Pool: "B", Series: poolBSeries(720, 300, 7), Servers: 550, Availability: 0.98},
		{Pool: "C", Series: poolBSeries(720, 200, 8), Servers: 200, Availability: 0.90},
	}
	rows, err := SummarizeSavings(obs, SavingsConfig{LatencyBudgetMs: 5})
	if err != nil {
		t.Fatalf("SummarizeSavings: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	b := rows[0]
	if b.EfficiencySavings <= 0.05 || b.EfficiencySavings > 1.0/3+1e-9 {
		t.Errorf("B efficiency savings = %v, want in (0.05, 0.333]", b.EfficiencySavings)
	}
	if b.LatencyImpactMs < 0 || b.LatencyImpactMs > 5.5 {
		t.Errorf("B latency impact = %v, want within budget", b.LatencyImpactMs)
	}
	if b.OnlineSavings != 0 {
		t.Errorf("B online savings = %v, want 0 at 98%% availability", b.OnlineSavings)
	}
	c := rows[1]
	wantOnline := 1 - 0.90/0.98
	if math.Abs(c.OnlineSavings-wantOnline) > 1e-9 {
		t.Errorf("C online savings = %v, want %v", c.OnlineSavings, wantOnline)
	}
	if c.TotalSavings <= c.EfficiencySavings {
		t.Error("total savings should compose efficiency and online")
	}

	eff, lat, online, total, err := WeightedTotals(rows)
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 || total < eff || online < 0 || lat < 0 {
		t.Errorf("totals = %v %v %v %v", eff, lat, online, total)
	}
	if _, _, _, _, err := WeightedTotals(nil); err == nil {
		t.Error("empty rows should error")
	}
	if _, err := SummarizeSavings([]PoolObservation{{Pool: "X", Servers: 0}}, SavingsConfig{}); err == nil {
		t.Error("zero servers should error")
	}
}
