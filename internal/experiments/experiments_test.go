package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// fastCfg runs experiments with shortened horizons.
func fastCfg() Config { return Config{Seed: 1, Fast: true} }

// run executes a registered experiment and sanity-checks the result shape.
func run(t *testing.T, id string) *Result {
	t.Helper()
	exp, err := ByID(id)
	if err != nil {
		t.Fatalf("ByID(%s): %v", id, err)
	}
	res, err := exp.Run(context.Background(), fastCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Errorf("result ID = %q, want %q", res.ID, id)
	}
	if len(res.Rows) == 0 {
		t.Errorf("%s produced no rows", id)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	if !strings.Contains(buf.String(), id) {
		t.Errorf("%s render missing ID", id)
	}
	return res
}

func metric(t *testing.T, res *Result, name string) float64 {
	t.Helper()
	v, ok := res.Metrics[name]
	if !ok {
		t.Fatalf("%s: missing metric %q (have %v)", res.ID, name, keys(res.Metrics))
	}
	return v
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID should error")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered.
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"table2", "table3", "table4",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestFig2(t *testing.T) {
	res := run(t, "fig2")
	if got := metric(t, res, "cpu_linear_dcs (paper: all)"); got != 6 {
		t.Errorf("cpu linear in %v DCs, want 6", got)
	}
	if got := metric(t, res, "mem_pages_linear_dcs (paper: vertical noise, 0)"); got != 0 {
		t.Errorf("mem_pages linear in %v DCs, want 0", got)
	}
}

func TestFig3(t *testing.T) {
	res := run(t, "fig3")
	if got := metric(t, res, "groups_found (paper: 2 clusters)"); got != 2 {
		t.Errorf("groups = %v, want 2", got)
	}
	cool := metric(t, res, "cool_cluster_p95_centroid")
	hot := metric(t, res, "hot_cluster_p95_centroid")
	if cool >= hot {
		t.Errorf("cool centroid %v should be below hot %v", cool, hot)
	}
}

func TestFig4(t *testing.T) {
	res := run(t, "fig4")
	med := metric(t, res, "median_surge_frac (paper 0.56)")
	max := metric(t, res, "max_surge_frac (paper 1.27)")
	if med < 0.4 || med > 0.75 {
		t.Errorf("median surge = %v, want ~0.56", med)
	}
	if max < 1.0 || max > 1.6 {
		t.Errorf("max surge = %v, want ~1.27", max)
	}
}

func TestFig5(t *testing.T) {
	res := run(t, "fig5")
	if got := metric(t, res, "max_latency_ms (paper <26)"); got >= 26 {
		t.Errorf("max latency = %v, want < 26", got)
	}
	for _, dc := range []string{"DC 1", "DC 3", "DC 6"} {
		if got := metric(t, res, "cpu_mae_"+dc); got > 1 {
			t.Errorf("%s cpu MAE = %v, want <= 1 (linear model holds)", dc, got)
		}
	}
}

func TestFig6(t *testing.T) {
	res := run(t, "fig6")
	ratio := metric(t, res, "dc5_peak_rps_ratio (paper ~4x)")
	if ratio < 2.5 || ratio > 5 {
		t.Errorf("peak ratio = %v, want ~4", ratio)
	}
	if got := metric(t, res, "dc5_event_latency_mae_ms"); got > 2 {
		t.Errorf("DC5 event latency MAE = %v, want <= 2 (trend predicts 4x)", got)
	}
}

func TestFig7(t *testing.T) {
	res := run(t, "fig7")
	if got := metric(t, res, "iterations"); got < 2 {
		t.Errorf("iterations = %v, want >= 2", got)
	}
	if got := metric(t, res, "savings_frac"); got <= 0.1 {
		t.Errorf("savings = %v, want > 0.1", got)
	}
}

func TestFig8Fig9PoolB(t *testing.T) {
	res8 := run(t, "fig8")
	slope := metric(t, res8, "orig_slope")
	icpt := metric(t, res8, "orig_intercept")
	if slope < 0.025 || slope > 0.031 {
		t.Errorf("slope = %v, want ~0.028", slope)
	}
	if icpt < 0.9 || icpt > 1.9 {
		t.Errorf("intercept = %v, want ~1.37", icpt)
	}
	if r2 := metric(t, res8, "orig_R2"); r2 < 0.9 {
		t.Errorf("R2 = %v, want >= 0.9 (paper 0.984)", r2)
	}

	res9 := run(t, "fig9")
	forecast := metric(t, res9, "forecast_latency_ms")
	observed := metric(t, res9, "observed_latency_ms")
	// Paper: forecast 31.5, measured 30.9 — ours must land in that band
	// with a small gap.
	if forecast < 29 || forecast > 34 {
		t.Errorf("forecast latency = %v, want ~31.5", forecast)
	}
	if observed < 29 || observed > 34 {
		t.Errorf("observed latency = %v, want ~30.9", observed)
	}
	if gap := metric(t, res9, "forecast_abs_error_ms"); gap > 1.5 {
		t.Errorf("forecast error = %v ms, want <= 1.5 (paper 0.6)", gap)
	}
}

func TestFig10Fig11PoolD(t *testing.T) {
	res10 := run(t, "fig10")
	slope := metric(t, res10, "orig_slope")
	if slope < 0.085 || slope > 0.10 {
		t.Errorf("slope = %v, want ~0.0916", slope)
	}
	res11 := run(t, "fig11")
	forecast := metric(t, res11, "forecast_latency_ms")
	observed := metric(t, res11, "observed_latency_ms")
	if forecast < 49 || forecast > 57 {
		t.Errorf("forecast = %v, want ~52.6", forecast)
	}
	if observed < 49 || observed > 57 {
		t.Errorf("observed = %v, want ~50.7", observed)
	}
	if gap := metric(t, res11, "forecast_abs_error_ms"); gap > 3 {
		t.Errorf("forecast error = %v, want <= 3 (paper 1.9)", gap)
	}
	// DC 4 replication: latency shifts by a few ms upward (paper 59->61).
	base := metric(t, res11, "dc4_baseline_latency_ms")
	obs := metric(t, res11, "dc4_observed_latency_ms")
	if obs <= base-1 {
		t.Errorf("DC4 latency %v should not drop well below baseline %v", obs, base)
	}
}

func TestTable2(t *testing.T) {
	res := run(t, "table2")
	if got := metric(t, res, "p95_rps_original"); got < 310 || got > 450 {
		t.Errorf("original p95 = %v, want ~377", got)
	}
	change := metric(t, res, "p95_change_frac")
	if change < 0.35 || change > 0.60 {
		t.Errorf("p95 change = %v, want ~+0.43", change)
	}
}

func TestTable3(t *testing.T) {
	res := run(t, "table3")
	if got := metric(t, res, "p95_rps_original"); got < 60 || got > 95 {
		t.Errorf("original p95 = %v, want ~78", got)
	}
	change := metric(t, res, "p95_change_frac")
	if change < 0.12 || change > 0.35 {
		t.Errorf("p95 change = %v, want ~+0.22", change)
	}
}

func TestTable4(t *testing.T) {
	res := run(t, "table4")
	eff := metric(t, res, "efficiency_savings (paper 0.20)")
	online := metric(t, res, "online_savings (paper 0.10)")
	total := metric(t, res, "total_savings (paper 0.30)")
	if eff < 0.15 || eff > 0.35 {
		t.Errorf("efficiency savings = %v, want ~0.20-0.30", eff)
	}
	if online < 0.05 || online > 0.15 {
		t.Errorf("online savings = %v, want ~0.10", online)
	}
	if total < 0.20 || total > 0.45 {
		t.Errorf("total savings = %v, want ~0.30", total)
	}
	if lat := metric(t, res, "avg_latency_impact_ms (paper ~5)"); lat > 5.5 {
		t.Errorf("avg latency impact = %v, want <= 5.5", lat)
	}
}

func TestFig12To14FleetShape(t *testing.T) {
	res12 := run(t, "fig12")
	if got := metric(t, res12, "frac_p95_le_15 (paper ~0.60)"); got < 0.45 || got > 0.70 {
		t.Errorf("p95<=15 frac = %v, want ~0.60", got)
	}
	if got := metric(t, res12, "frac_p95_lt_30 (paper ~0.80)"); got < 0.70 || got > 0.90 {
		t.Errorf("p95<30 frac = %v, want ~0.80", got)
	}

	res13 := run(t, "fig13")
	if got := metric(t, res13, "frac_above_25 (paper 0.01)"); got > 0.10 {
		t.Errorf("samples>25 = %v, want rare", got)
	}
	if got := metric(t, res13, "frac_above_40 (paper <0.001)"); got > 0.04 {
		t.Errorf("samples>40 = %v, want very rare", got)
	}

	res14 := run(t, "fig14")
	if got := metric(t, res14, "mean_availability (paper 0.83)"); got < 0.78 || got > 0.92 {
		t.Errorf("mean availability = %v, want ~0.83-0.85", got)
	}
}

func TestFig15(t *testing.T) {
	res := run(t, "fig15")
	c := metric(t, res, "mean_C (paper ~0.90)")
	d := metric(t, res, "mean_D (paper ~0.98)")
	h := metric(t, res, "mean_H (paper ~0.98)")
	if c > 0.93 || c < 0.82 {
		t.Errorf("pool C availability = %v, want ~0.90", c)
	}
	if d < 0.96 || h < 0.96 {
		t.Errorf("pools D/H availability = %v/%v, want ~0.98", d, h)
	}
}

func TestFig16(t *testing.T) {
	res := run(t, "fig16")
	if metric(t, res, "latency_regression_detected") != 1 {
		t.Error("regression should be detected")
	}
	if metric(t, res, "memory_leak_fixed") != 1 {
		t.Error("memory improvement should be confirmed")
	}
	if metric(t, res, "acceptable_for_deploy") != 0 {
		t.Error("change must be blocked")
	}
}

func TestAblations(t *testing.T) {
	ransac := run(t, "ablation-ransac")
	if metric(t, ransac, "ransac_worst_err_ms") >= metric(t, ransac, "ols_worst_err_ms") {
		t.Error("RANSAC should beat OLS under contamination")
	}
	deg := run(t, "ablation-degree")
	if metric(t, deg, "deg2_err_ms") >= metric(t, deg, "deg1_err_ms") {
		t.Error("degree 2 should beat degree 1 on quadratic truth")
	}
	run(t, "ablation-partitions")
	planners := run(t, "ablation-planners")
	if metric(t, planners, "mmc_naive_servers") <= 2*metric(t, planners, "blackbox_servers") {
		t.Error("naive M/M/c should overprovision heavily")
	}
	if metric(t, planners, "black-box_violations") != 0 {
		t.Error("black-box plan must meet the SLO")
	}
	if metric(t, planners, "reactive_violations") == 0 {
		t.Error("reactive scaling should show violations under lag")
	}
}

func TestGroupingTree(t *testing.T) {
	res := run(t, "grouping-tree")
	if got := metric(t, res, "cv_auc (paper 0.9804)"); got < 0.90 {
		t.Errorf("AUC = %v, want >= 0.90 (paper 0.9804)", got)
	}
	if got := metric(t, res, "splits (paper 34)"); got < 1 {
		t.Errorf("splits = %v, want >= 1", got)
	}
	if got := metric(t, res, "cv_accuracy"); got < 0.85 {
		t.Errorf("accuracy = %v, want >= 0.85", got)
	}
	b := metric(t, res, "score_poolB (predictable)")
	s := metric(t, res, "score_poolS2 (spiky)")
	if b <= s {
		t.Errorf("pool B score %v should exceed spiky pool score %v", b, s)
	}
}
