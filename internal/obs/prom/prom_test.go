package prom

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestEscapeLabelRoundTrip(t *testing.T) {
	cases := []string{
		"plain",
		"",
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all \ " ` + "\n" + ` of them`,
		`trailing\`,
	}
	for _, in := range cases {
		esc := EscapeLabel(in)
		if strings.ContainsAny(esc, "\n") {
			t.Errorf("EscapeLabel(%q) = %q still contains a raw newline", in, esc)
		}
		if got := UnescapeLabel(esc); got != in {
			t.Errorf("round-trip %q -> %q -> %q", in, esc, got)
		}
	}
}

func TestEscapeLabelNoAllocFastPath(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() { EscapeLabel("clean-value") }); n != 0 {
		t.Fatalf("EscapeLabel on a clean value allocates %v times", n)
	}
}

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "Test counter.", Labels{"kind": `a"b`})
	c.Inc()
	c.Add(41)
	out := render(t, r)
	if !strings.Contains(out, "# HELP test_total Test counter.\n# TYPE test_total counter\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, `test_total{kind="a\"b"} 42`) {
		t.Fatalf("missing escaped sample:\n%s", out)
	}
	if c.Value() != 42 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestHistogramConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", Labels{"stage": "plan"}, []float64{0.01, 0.1, 1})
	obs := []float64{0.005, 0.05, 0.5, 5, 50} // one per bucket + two above the last bound
	var sum float64
	for _, v := range obs {
		h.Observe(v)
		sum += v
	}
	out := render(t, r)

	// Cumulative buckets: le=0.01 -> 1, le=0.1 -> 2, le=1 -> 3, +Inf -> 5.
	for _, want := range []string{
		`lat_seconds_bucket{stage="plan",le="0.01"} 1`,
		`lat_seconds_bucket{stage="plan",le="0.1"} 2`,
		`lat_seconds_bucket{stage="plan",le="1"} 3`,
		`lat_seconds_bucket{stage="plan",le="+Inf"} 5`,
		fmt.Sprintf(`lat_seconds_sum{stage="plan"} %g`, sum),
		`lat_seconds_count{stage="plan"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	// +Inf bucket must always equal _count: a parser cross-checks them.
	infLine := lineWith(out, `le="+Inf"`)
	countLine := lineWith(out, "lat_seconds_count")
	if !strings.HasSuffix(infLine, " 5") || !strings.HasSuffix(countLine, " 5") {
		t.Errorf("+Inf bucket and _count disagree: %q vs %q", infLine, countLine)
	}
}

func TestHistogramBoundaryObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "Boundary.", nil, []float64{1})
	h.Observe(1) // exactly the bound: le is inclusive
	out := render(t, r)
	if !strings.Contains(out, `b_seconds_bucket{le="1"} 1`) {
		t.Fatalf("observation at the bound must land in its bucket:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "h", Labels{"a": "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label set must panic")
		}
	}()
	r.Counter("dup_total", "h", Labels{"a": "1"})
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("mixed", "h", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("mixed", "h", Labels{"x": "1"}, func() float64 { return 0 })
}

func TestLazySeries(t *testing.T) {
	r := NewRegistry()
	a := r.LazyCounter("lazy_total", "h", Labels{"pool": "A"})
	a2 := r.LazyCounter("lazy_total", "h", Labels{"pool": "A"})
	if a != a2 {
		t.Fatal("LazyCounter must return the same series for the same labels")
	}
	b := r.LazyCounter("lazy_total", "h", Labels{"pool": "B"})
	if a == b {
		t.Fatal("distinct labels must get distinct series")
	}
	a.Inc()
	b.Add(2)
	out := render(t, r)
	if !strings.Contains(out, `lazy_total{pool="A"} 1`) || !strings.Contains(out, `lazy_total{pool="B"} 2`) {
		t.Fatalf("lazy series missing:\n%s", out)
	}

	h1 := r.LazyHistogram("lazy_seconds", "h", Labels{"pool": "A"}, DefBuckets)
	h2 := r.LazyHistogram("lazy_seconds", "h", Labels{"pool": "A"}, DefBuckets)
	if h1 != h2 {
		t.Fatal("LazyHistogram must return the same series for the same labels")
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.5
	r.Gauge("depth", "h", nil, func() float64 { return v })
	r.CounterFunc("hits_total", "h", nil, func() float64 { return 7 })
	out := render(t, r)
	if !strings.Contains(out, "depth 3.5") || !strings.Contains(out, "hits_total 7") {
		t.Fatalf("sampled series missing:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE depth gauge") || !strings.Contains(out, "# TYPE hits_total counter") {
		t.Fatalf("types wrong:\n%s", out)
	}
}

func TestLabelsRenderSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("sorted_total", "h", Labels{"z": "1", "a": "2", "m": "3"})
	out := render(t, r)
	if !strings.Contains(out, `sorted_total{a="2",m="3",z="1"}`) {
		t.Fatalf("labels must render sorted by key:\n%s", out)
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line one\nline two \\ done", nil)
	out := render(t, r)
	if !strings.Contains(out, `# HELP esc_total line one\nline two \\ done`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
}

func TestNaNRenderable(t *testing.T) {
	r := NewRegistry()
	r.Gauge("weird", "h", nil, func() float64 { return math.NaN() })
	out := render(t, r)
	if !strings.Contains(out, "weird NaN") {
		t.Fatalf("NaN gauge should render as NaN:\n%s", out)
	}
}

// TestConcurrentObserveWhileRender drives writers against scrapers under
// -race: Observe/Inc must never tear a render and lazy registration must be
// safe mid-scrape.
func TestConcurrentObserveWhileRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "h", Labels{"stage": "x"}, DefBuckets)
	c := r.Counter("c_total", "h", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(i%100) / 100)
				c.Inc()
				r.LazyCounter("c_lazy_total", "h", Labels{"w": fmt.Sprintf("%d", w)}).Inc()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if _, err := r.WriteText(io.Discard); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		runtime.Gosched() // let writers interleave even on one CPU
	}
	close(stop)
	wg.Wait()
	h.Observe(0.01) // guarantee at least one observation on any scheduler
	out := render(t, r)
	// Post-hoc consistency: +Inf bucket == _count.
	infLine := lineWith(out, `c_seconds_bucket{stage="x",le="+Inf"`)
	countLine := lineWith(out, "c_seconds_count")
	var inf, count int64
	fmt.Sscanf(infLine[strings.LastIndexByte(infLine, ' ')+1:], "%d", &inf)
	fmt.Sscanf(countLine[strings.LastIndexByte(countLine, ' ')+1:], "%d", &count)
	if inf != count || count == 0 {
		t.Fatalf("+Inf (%d) != _count (%d)", inf, count)
	}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

func lineWith(out, substr string) string {
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, substr) {
			return ln
		}
	}
	return ""
}

// BenchmarkMetricsRender measures a /metrics-shaped scrape: the series mix
// approximates capserved's registry (labelled counters, sampled gauges,
// per-handler histograms with observations).
func BenchmarkMetricsRender(b *testing.B) {
	r := NewRegistry()
	kinds := []string{"simulate", "plan", "validate", "forecast"}
	for _, k := range kinds {
		r.Counter("bench_jobs_submitted_total", "h", Labels{"kind": k}).Add(100)
		r.Counter("bench_jobs_completed_total", "h", Labels{"kind": k, "state": "done"}).Add(90)
		r.Counter("bench_jobs_completed_total", "h", Labels{"kind": k, "state": "failed"}).Add(10)
		r.Counter("bench_breaker_transitions_total", "h", Labels{"kind": k, "to": "open"})
		r.Gauge("bench_breaker_state", "h", Labels{"kind": k}, func() float64 { return 0 })
	}
	for _, h := range append([]string{"jobs", "healthz", "readyz", "metrics"}, kinds...) {
		r.Counter("bench_http_requests_total", "h", Labels{"handler": h}).Add(1000)
		hist := r.Histogram("bench_request_duration_seconds", "h", Labels{"handler": h}, DefBuckets)
		for i := 0; i < 64; i++ {
			hist.Observe(float64(i) / 100)
		}
	}
	for i := 0; i < 8; i++ {
		n := i
		r.Gauge(fmt.Sprintf("bench_gauge_%d", n), "h", nil, func() float64 { return float64(n) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.WriteText(io.Discard)
	}
}
