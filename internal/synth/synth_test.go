package synth

import (
	"testing"

	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

// productionTrace simulates pool B in DC 1 for a day and returns its
// aggregates.
func productionTrace(t *testing.T, seed int64) []metrics.TickStat {
	t.Helper()
	cfg := sim.FleetConfig{
		DCs:               workload.NineRegions(),
		Pools:             []sim.PoolConfig{sim.PoolB()},
		WorkloadNoiseFrac: 0.03,
		Seed:              seed,
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	if err := s.Run(s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	series, err := agg.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	return series
}

func TestBuildProfileCoversProductionRange(t *testing.T) {
	prod := productionTrace(t, 1)
	mix := sim.PoolB().Mix
	p, err := BuildProfile(prod, mix, 20, 12, 0.25)
	if err != nil {
		t.Fatalf("BuildProfile: %v", err)
	}
	if len(p.Offered) != 12 {
		t.Fatalf("levels = %d, want 12", len(p.Offered))
	}
	for i := 1; i < len(p.Offered); i++ {
		if p.Offered[i] <= p.Offered[i-1] {
			t.Fatal("offered loads must ascend")
		}
	}
	// The sweep's top level must exceed production's p99 per-server load
	// (stress extension).
	var maxProd float64
	for _, ts := range prod {
		if ts.RPSPerServer > maxProd {
			maxProd = ts.RPSPerServer
		}
	}
	topPerServer := p.Offered[len(p.Offered)-1] / float64(p.Servers)
	if topPerServer < maxProd {
		t.Errorf("sweep top %v below production max %v", topPerServer, maxProd)
	}
}

func TestBuildProfileErrors(t *testing.T) {
	prod := productionTrace(t, 2)
	mix := sim.PoolB().Mix
	if _, err := BuildProfile(prod, mix, 0, 10, 0); err == nil {
		t.Error("zero servers should error")
	}
	if _, err := BuildProfile(prod, mix, 10, 1, 0); err == nil {
		t.Error("single level should error")
	}
	if _, err := BuildProfile(prod, mix, 10, 10, -1); err == nil {
		t.Error("negative extension should error")
	}
	if _, err := BuildProfile(prod, workload.Mix{}, 10, 10, 0); err == nil {
		t.Error("invalid mix should error")
	}
	if _, err := BuildProfile(nil, mix, 10, 10, 0); err == nil {
		t.Error("empty series should error")
	}
}

func TestReplayAndVerifyEquivalence(t *testing.T) {
	// The synthetic replay of the SAME pool must verify as equivalent —
	// this is the §II-C gate that establishes the offline baseline.
	prod := productionTrace(t, 3)
	pc := sim.PoolB()
	profile, err := BuildProfile(prod, pc.Mix, 20, 15, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(pc, profile, 25, 4)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	agg := metrics.NewAggregator()
	agg.AddAll(recs)
	synthSeries, err := agg.PoolSeries("offline", "B")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Verify(prod, synthSeries, pc.Mix, profile.Mix, Tolerance{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !eq.Equivalent {
		t.Errorf("same-pool replay should verify: %+v", eq)
	}
	if eq.MixDistance != 0 {
		t.Errorf("mix distance = %v, want 0", eq.MixDistance)
	}
}

func TestVerifyDetectsDivergentSystem(t *testing.T) {
	// Replaying against a pool with a different response model must fail
	// the equivalence gate.
	prod := productionTrace(t, 5)
	pc := sim.PoolB()
	profile, err := BuildProfile(prod, pc.Mix, 20, 15, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	changed := pc
	changed.Response.CPUSlope *= 1.5
	changed.Response.LatQuad[0] += 6
	recs, err := Replay(changed, profile, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	agg.AddAll(recs)
	synthSeries, err := agg.PoolSeries("offline", "B")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Verify(prod, synthSeries, pc.Mix, profile.Mix, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if eq.Equivalent {
		t.Error("divergent system should fail verification")
	}
	if eq.CPUSlopeRelErr < 0.3 {
		t.Errorf("slope error = %v, want ~0.5", eq.CPUSlopeRelErr)
	}
	if eq.LatencyAtRefAbsErr < 3 {
		t.Errorf("latency error = %v, want >= 3", eq.LatencyAtRefAbsErr)
	}
}

func TestVerifyDetectsMixDrift(t *testing.T) {
	prod := productionTrace(t, 7)
	pc := sim.PoolB()
	profile, err := BuildProfile(prod, pc.Mix, 20, 15, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(pc, profile, 25, 8)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	agg.AddAll(recs)
	synthSeries, err := agg.PoolSeries("offline", "B")
	if err != nil {
		t.Fatal(err)
	}
	// Replay used a wrong mix (all passthrough): equivalence must fail on
	// the mix check even though the load response matches.
	wrongMix := workload.Mix{{Name: "passthrough", Weight: 1, CostFactor: 0.3}}
	eq, err := Verify(prod, synthSeries, pc.Mix, wrongMix, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if eq.Equivalent {
		t.Error("mix drift should fail verification")
	}
	if eq.MixDistance < 0.5 {
		t.Errorf("mix distance = %v, want large", eq.MixDistance)
	}
}

func TestReplayErrors(t *testing.T) {
	pc := sim.PoolB()
	if _, err := Replay(pc, Profile{}, 10, 1); err == nil {
		t.Error("empty profile should error")
	}
	if _, err := Replay(pc, Profile{Offered: []float64{1}, Servers: 5}, 0, 1); err == nil {
		t.Error("zero ticks per level should error")
	}
}
