package experiments

import (
	"context"
	"fmt"

	"headroom/internal/measure"
)

// GroupingTree reproduces the §II-A2 decision-tree experiment at our fleet
// scale: servers are labelled by whether their pool has a tightly bound,
// predictable CPU range (the named low-noise pools) or runs mixed/background
// workloads (spiky fillers, the contaminated memcached pool, mixed hardware
// generations), and a CART classifier over the percentile + regression
// feature vector is trained with 5-fold cross-validation.
//
// Paper: 34 splits, R² = 0.746, AUC = 0.9804, minimum leaf size 2000
// machines (we scale the leaf size to our fleet). The paper also reports
// 55% of pools with diurnal workloads exhibit a tightly bound CPU range.
func GroupingTree(ctx context.Context, cfg Config) (*Result, error) {
	agg, err := fleetAggregator(ctx, cfg.Seed, 1)
	if err != nil {
		return nil, err
	}
	// Pool labels: predictable = single-workload pools with clean linear
	// response; unpredictable = spiky fillers (secondary workloads), the
	// background-contaminated pool A, and the mixed-generation pool I.
	unpredictable := map[string]bool{
		"A": true, "I": true,
		"S1": true, "S2": true, "S3": true, "S4": true,
		"U1": true, "U2": true,
	}
	var examples []measure.PoolExample
	var predictableServers, totalServers int
	for _, key := range agg.Pools() {
		sums, err := agg.ServerSummaries(key.DC, key.Pool)
		if err != nil {
			return nil, err
		}
		label := !unpredictable[key.Pool]
		ex := measure.BuildExamples(sums, label)
		examples = append(examples, ex...)
		totalServers += len(ex)
		if label {
			predictableServers += len(ex)
		}
	}
	// Scale the paper's 2000-machine leaf floor to our fleet size.
	minLeaf := totalServers / 60
	if minLeaf < 20 {
		minLeaf = 20
	}
	res, err := measure.TrainGroupClassifier(examples, 5, minLeaf, cfg.Seed)
	if err != nil {
		return nil, err
	}

	out := &Result{
		ID:     "grouping-tree",
		Title:  "Decision-tree identification of predictable capacity-planning pools",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"servers", fmt.Sprintf("%d", totalServers)},
			{"min leaf size", fmt.Sprintf("%d", minLeaf)},
			{"tree splits", fmt.Sprintf("%d", res.Splits)},
			{"cv R2", f3(res.CV.R2)},
			{"cv AUC", f3(res.CV.AUC)},
			{"cv accuracy", f3(res.CV.Accuracy)},
		},
	}
	out.Metric("splits (paper 34)", float64(res.Splits))
	out.Metric("cv_r2 (paper 0.746)", res.CV.R2)
	out.Metric("cv_auc (paper 0.9804)", res.CV.AUC)
	out.Metric("cv_accuracy", res.CV.Accuracy)
	out.Metric("frac_predictable_servers (paper: 55% of pools)",
		float64(predictableServers)/float64(totalServers))

	// Sanity spot-checks against known pools.
	spot := func(pool, dc string) (float64, error) {
		sums, err := agg.ServerSummaries(dc, pool)
		if err != nil {
			return 0, err
		}
		var mean float64
		var n int
		for _, s := range sums {
			if s.CPU.N == 0 {
				continue
			}
			p, err := res.Tree.Predict(s.FeatureVector())
			if err != nil {
				return 0, err
			}
			mean += p
			n++
		}
		return mean / float64(n), nil
	}
	if pb, err := spot("B", "DC 1"); err == nil {
		out.Metric("score_poolB (predictable)", pb)
	}
	if ps, err := spot("S2", "DC 4"); err == nil {
		out.Metric("score_poolS2 (spiky)", ps)
	}
	out.Notes = append(out.Notes,
		"pools flagged unpredictable run secondary workloads; the paper found they fit the analysis once those workloads are modelled separately (pool A's refinement loop demonstrates this)")
	return out, nil
}
