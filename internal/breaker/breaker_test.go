package breaker

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// testClock is a hand-advanced clock shared with the breaker under test.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newTestClock()
	var transitions []string
	b := New(Config{
		Threshold: 3,
		OpenFor:   10 * time.Second,
		Now:       clk.Now,
		OnTransition: func(from, to State) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		},
	})

	// Closed passes requests; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("Allow() = false while closed (i=%d)", i)
		}
		b.Failure()
	}
	if st := b.State(); st != Closed {
		t.Fatalf("state after 2 failures = %s, want closed", st)
	}

	// The third consecutive failure opens it.
	b.Allow()
	b.Failure()
	if st := b.State(); st != Open {
		t.Fatalf("state after 3 failures = %s, want open", st)
	}
	if b.Allow() {
		t.Fatal("Allow() = true while open")
	}

	// After the open interval the next Allow admits a single probe.
	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("Allow() = false after open interval elapsed")
	}
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state = %s, want half_open", st)
	}
	b.Success()
	if st := b.State(); st != Closed {
		t.Fatalf("state after probe success = %s, want closed", st)
	}

	want := []string{"closed->open", "open->half_open", "half_open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newTestClock()
	b := New(Config{Threshold: 1, OpenFor: time.Second, Now: clk.Now})
	b.Failure()
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	// While the probe is in flight, nothing else gets through.
	if b.Allow() {
		t.Fatal("second probe admitted while first in flight")
	}
	b.Success()
	if st := b.State(); st != Closed {
		t.Fatalf("state = %s, want closed", st)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newTestClock()
	b := New(Config{Threshold: 1, OpenFor: 5 * time.Second, Now: clk.Now})
	b.Failure()
	clk.Advance(6 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Failure()
	if st := b.State(); st != Open {
		t.Fatalf("state after probe failure = %s, want open", st)
	}
	// The re-open starts a fresh interval.
	clk.Advance(3 * time.Second)
	if b.Allow() {
		t.Fatal("Allow() = true before fresh open interval elapsed")
	}
	clk.Advance(3 * time.Second)
	if !b.Allow() {
		t.Fatal("Allow() = false after fresh interval elapsed")
	}
}

func TestBreakerReleaseFreesProbeSlot(t *testing.T) {
	clk := newTestClock()
	b := New(Config{Threshold: 1, OpenFor: time.Second, Now: clk.Now})
	b.Failure()
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	// The admitted request never ran (e.g. queue full): Release must free
	// the probe slot so the next request can probe.
	b.Release()
	if !b.Allow() {
		t.Fatal("Allow() = false after Release freed the probe slot")
	}
}

func TestBreakerMultipleProbesToClose(t *testing.T) {
	clk := newTestClock()
	b := New(Config{Threshold: 1, OpenFor: time.Second, Probes: 2, Now: clk.Now})
	b.Failure()
	clk.Advance(2 * time.Second)
	b.Allow()
	b.Success()
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state after 1 of 2 probe successes = %s, want half_open", st)
	}
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.Success()
	if st := b.State(); st != Closed {
		t.Fatalf("state after 2 probe successes = %s, want closed", st)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := New(Config{Threshold: 2})
	b.Failure()
	b.Success()
	b.Failure()
	if st := b.State(); st != Closed {
		t.Fatalf("state = %s, want closed: success must reset the run", st)
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	clk := newTestClock()
	b := New(Config{Threshold: 1, OpenFor: 10 * time.Second, Now: clk.Now})
	if d := b.RetryAfter(); d != 0 {
		t.Fatalf("RetryAfter while closed = %s, want 0", d)
	}
	b.Failure()
	if d := b.RetryAfter(); d != 10*time.Second {
		t.Fatalf("RetryAfter just opened = %s, want 10s", d)
	}
	clk.Advance(7 * time.Second)
	if d := b.RetryAfter(); d != 3*time.Second {
		t.Fatalf("RetryAfter = %s, want 3s", d)
	}
	clk.Advance(2900 * time.Millisecond)
	if d := b.RetryAfter(); d != time.Second {
		t.Fatalf("RetryAfter near expiry = %s, want the 1s floor", d)
	}
}
