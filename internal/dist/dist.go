// Package dist fans one capacity-planning job out across a fleet of
// capserved processes. The pipeline is embarrassingly shard-parallel —
// shards own disjoint (pool, datacenter) keys and aggregator merges are
// bit-identical regardless of where a shard ran — so the coordinator can
// split a job's source into shards, ship each shard to a worker over HTTP,
// and merge the returned aggregates into the exact bytes a single-node run
// would have produced.
//
// The client half (this package) owns placement and the failure playbook:
//
//   - rendezvous (highest-random-weight) hashing assigns each shard an
//     owner and a stable fallback order over the static peer list;
//   - every dispatch carries a per-shard deadline;
//   - transient failures (network errors, 5xx) reroute the shard to the
//     next-ranked worker;
//   - a dispatch that outlives the worker's EWMA-tracked latency is hedged:
//     a duplicate is sent to the next worker and the first answer wins;
//   - per-worker circuit breakers (internal/breaker) stop traffic to a
//     worker whose dispatches keep failing, so a dead node costs one timed
//     attempt per open interval instead of one per shard.
//
// The server half is capserved's authenticated POST /v1/internal/shard
// endpoint (internal/server), which runs exactly one shard through the
// session machinery and returns the encoded aggregate.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"headroom/internal/breaker"
	"headroom/internal/obs"
)

// TokenHeader authenticates internal shard traffic between peers.
const TokenHeader = "X-Dist-Token"

// TraceHeader propagates the coordinator's trace id to workers, so a job's
// trace can be correlated with the remote shard spans it caused.
const TraceHeader = "X-Trace-Id"

// ShardHeader carries the shard index, for worker-side logging.
const ShardHeader = "X-Dist-Shard"

// DefaultPath is the internal shard endpoint every capserved worker serves.
const DefaultPath = "/v1/internal/shard"

// maxResponseBytes bounds a worker response; an encoded shard aggregate for
// a month of a large fleet stays well under this.
const maxResponseBytes = 256 << 20

// Config parameterizes a Client. Zero values take the documented defaults.
type Config struct {
	// Peers are the worker base URLs ("http://10.0.0.2:8080"). Required,
	// at least one.
	Peers []string
	// Token is the shared secret sent as X-Dist-Token. Required.
	Token string
	// Path is the shard endpoint path; default DefaultPath.
	Path string
	// Transport overrides the HTTP transport — tests and benchmarks use
	// Loopback. Default: a dedicated clone of http.DefaultTransport.
	Transport http.RoundTripper
	// ShardTimeout bounds one shard's dispatch end to end, across reroutes
	// and hedges; default 1 minute.
	ShardTimeout time.Duration
	// HedgeAfter controls hedged requests: a positive duration hedges every
	// dispatch that is still unanswered after it; zero (the default) adapts
	// per worker, hedging after 2x the worker's EWMA latency once three
	// dispatches have been observed; negative disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker; default 3, negative disables breakers.
	BreakerThreshold int
	// BreakerOpenFor is how long an open worker breaker fast-fails before
	// probing; default 5 s.
	BreakerOpenFor time.Duration
	// BreakerProbes is the consecutive half-open successes that close a
	// worker breaker; default 1.
	BreakerProbes int
	// Clock overrides time.Now for the breakers, for tests.
	Clock func() time.Time
	// Logger receives dispatch lifecycle events; default discard.
	Logger *slog.Logger
	// OnEvent, when set, observes every dispatch event — the metrics hook.
	// It must be fast and safe for concurrent use.
	OnEvent func(Event)
}

func (c Config) withDefaults() Config {
	if c.Path == "" {
		c.Path = DefaultPath
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Minute
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 5 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 1
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// EventKind classifies a dispatch event.
type EventKind string

const (
	// EventDispatch is one attempt sent to a worker.
	EventDispatch EventKind = "dispatch"
	// EventSuccess is an attempt that returned a usable result.
	EventSuccess EventKind = "success"
	// EventFailure is an attempt that failed (transient or permanent).
	EventFailure EventKind = "failure"
	// EventReroute is a shard moved to its next-ranked worker after a
	// transient failure.
	EventReroute EventKind = "reroute"
	// EventHedge is a duplicate dispatch launched because the primary
	// outlived its hedge delay.
	EventHedge EventKind = "hedge"
	// EventHedgeWin is a hedged dispatch that answered first.
	EventHedgeWin EventKind = "hedge_win"
	// EventSkip is a candidate worker skipped because its breaker is open.
	EventSkip EventKind = "breaker_skip"
	// EventExhausted is a shard that failed on every available worker.
	EventExhausted EventKind = "exhausted"
	// EventBreaker is a worker breaker state transition.
	EventBreaker EventKind = "breaker_transition"
)

// Event is one observation from a dispatch, fed to Config.OnEvent.
type Event struct {
	Kind    EventKind
	Peer    string
	Hedged  bool
	Latency time.Duration // EventSuccess only
	From    breaker.State // EventBreaker only
	To      breaker.State // EventBreaker only
}

// Shard is one unit of distributable work: an opaque request body plus the
// shard coordinates and the placement key.
type Shard struct {
	// Key drives rendezvous placement. Shards keyed by stable content (the
	// pool names they carry) keep their placement across job resubmissions
	// and peer-list edits.
	Key string
	// Index and Of are the shard coordinates within the job.
	Index, Of int
	// Body is the request payload POSTed to the worker.
	Body []byte
}

// Result is a successful dispatch.
type Result struct {
	// Body is the worker's response payload.
	Body []byte
	// Worker is the base URL of the worker that answered.
	Worker string
	// Hedged reports that the answer came from a hedged duplicate.
	Hedged bool
	// Attempts counts dispatches sent for this shard (reroutes and hedges
	// included).
	Attempts int
}

// ShardError is a failed dispatch: the shard could not be computed on any
// available worker (or failed permanently on one).
type ShardError struct {
	// Shard is the shard index within the job.
	Shard int
	// Key is the shard's placement key (its pool names).
	Key string
	// Attempts counts dispatches sent before giving up.
	Attempts int
	// Transient reports whether retrying the whole job later could succeed
	// (workers were unreachable or overloaded, rather than rejecting the
	// request as invalid).
	Transient bool
	// Err is the last underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("dist: shard %d (%s) failed after %d attempts: %v", e.Shard, e.Key, e.Attempts, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// WorkerError is a worker's HTTP-level rejection of a dispatch.
type WorkerError struct {
	Peer   string
	Status int
	Msg    string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("dist: worker %s: %d %s", e.Peer, e.Status, e.Msg)
}

// Client dispatches shards to a static fleet of workers. Construct with
// New; a Client is safe for concurrent use.
type Client struct {
	cfg      Config
	http     *http.Client
	peers    []string
	breakers map[string]*breaker.Breaker // nil when disabled
	lat      map[string]*ewma
}

// New validates the peer list and builds a Client.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		return nil, errors.New("dist: no peers configured")
	}
	if cfg.Token == "" {
		return nil, errors.New("dist: missing shared token")
	}
	peers := make([]string, 0, len(cfg.Peers))
	seen := map[string]bool{}
	for _, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("dist: peer %q is not an absolute http(s) URL", p)
		}
		if !seen[p] {
			seen[p] = true
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return nil, errors.New("dist: no peers configured")
	}
	tr := cfg.Transport
	if tr == nil {
		tr = http.DefaultTransport.(*http.Transport).Clone()
	}
	c := &Client{
		cfg:   cfg,
		http:  &http.Client{Transport: tr},
		peers: peers,
		lat:   make(map[string]*ewma, len(peers)),
	}
	if cfg.BreakerThreshold > 0 {
		c.breakers = make(map[string]*breaker.Breaker, len(peers))
	}
	for _, p := range peers {
		c.lat[p] = &ewma{}
		if c.breakers != nil {
			p := p
			c.breakers[p] = breaker.New(breaker.Config{
				Threshold: cfg.BreakerThreshold,
				OpenFor:   cfg.BreakerOpenFor,
				Probes:    cfg.BreakerProbes,
				Now:       cfg.Clock,
				OnTransition: func(from, to breaker.State) {
					c.cfg.Logger.Info("dist: worker breaker transition",
						"peer", p, "from", from.String(), "to", to.String())
					c.event(Event{Kind: EventBreaker, Peer: p, From: from, To: to})
				},
			})
		}
	}
	return c, nil
}

// Peers returns the normalized worker list.
func (c *Client) Peers() []string { return append([]string(nil), c.peers...) }

// BreakerState returns a worker's breaker position (Closed when breakers
// are disabled).
func (c *Client) BreakerState(peer string) breaker.State {
	if br := c.breakers[peer]; br != nil {
		return br.State()
	}
	return breaker.Closed
}

// OpenBreakers counts workers whose breaker is currently open, and the
// total worker count — the worker-fleet health signal /readyz reports.
func (c *Client) OpenBreakers() (open, total int) {
	total = len(c.peers)
	for _, p := range c.peers {
		if c.BreakerState(p) == breaker.Open {
			open++
		}
	}
	return open, total
}

// MeanLatency returns a worker's EWMA dispatch latency and the number of
// observations behind it.
func (c *Client) MeanLatency(peer string) (time.Duration, int64) {
	if e := c.lat[peer]; e != nil {
		return e.value()
	}
	return 0, 0
}

// Close releases idle transport connections.
func (c *Client) Close() {
	if ci, ok := c.http.Transport.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

func (c *Client) event(ev Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

// attemptResult is one worker attempt's outcome.
type attemptResult struct {
	peer      string
	hedged    bool
	body      []byte
	d         time.Duration
	err       error
	transient bool
	canceled  bool // the attempt was cancelled by the dispatch (winner elsewhere)
}

// Dispatch computes one shard on the fleet: it tries workers in rendezvous
// order for the shard's key, rerouting on transient failure, hedging slow
// attempts, and honouring the per-shard deadline. On success it returns the
// winning worker's response; on failure, a *ShardError whose Transient flag
// says whether retrying the job later might succeed.
func (c *Client) Dispatch(ctx context.Context, sh Shard) (Result, error) {
	dctx, cancel := ctx, context.CancelFunc(func() {})
	if c.cfg.ShardTimeout > 0 {
		dctx, cancel = context.WithTimeout(ctx, c.cfg.ShardTimeout)
	}
	defer cancel()

	order := Rank(sh.Key, c.peers)
	results := make(chan attemptResult, len(order))
	var cancels []context.CancelFunc
	defer func() {
		for _, cf := range cancels {
			cf()
		}
	}()
	next, inflight, attempts := 0, 0, 0

	// launch sends the shard to the next breaker-admitted candidate,
	// returning its peer URL ("" when no candidate is left).
	launch := func(hedged bool) string {
		for next < len(order) {
			peer := order[next]
			next++
			if br := c.breakers[peer]; br != nil && !br.Allow() {
				c.event(Event{Kind: EventSkip, Peer: peer})
				continue
			}
			attempts++
			inflight++
			actx, acancel := context.WithCancel(dctx)
			cancels = append(cancels, acancel)
			c.event(Event{Kind: EventDispatch, Peer: peer, Hedged: hedged})
			go func(peer string, hedged bool) {
				results <- c.send(actx, peer, sh, hedged)
			}(peer, hedged)
			return peer
		}
		return ""
	}

	primary := launch(false)
	if primary == "" {
		c.event(Event{Kind: EventExhausted})
		return Result{}, &ShardError{
			Shard: sh.Index, Key: sh.Key, Transient: true,
			Err: errors.New("every worker's circuit breaker is open"),
		}
	}

	var hedgeC <-chan time.Time
	if d, ok := c.hedgeDelay(primary); ok {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for inflight > 0 {
		select {
		case res := <-results:
			inflight--
			if res.err == nil {
				c.event(Event{Kind: EventSuccess, Peer: res.peer, Hedged: res.hedged, Latency: res.d})
				if res.hedged {
					c.event(Event{Kind: EventHedgeWin, Peer: res.peer})
				}
				return Result{Body: res.body, Worker: res.peer, Hedged: res.hedged, Attempts: attempts}, nil
			}
			if res.canceled {
				// Cancelled by the dispatch itself; the deadline case below
				// (or a sibling's result) decides the outcome.
				continue
			}
			c.event(Event{Kind: EventFailure, Peer: res.peer, Hedged: res.hedged})
			c.cfg.Logger.Warn("dist: shard attempt failed",
				"peer", res.peer, "shard", sh.Index, "hedged", res.hedged,
				"transient", res.transient, "error", res.err)
			lastErr = res.err
			if !res.transient {
				// A permanent rejection is the same on every worker; stop.
				return Result{}, &ShardError{Shard: sh.Index, Key: sh.Key, Attempts: attempts, Err: res.err}
			}
			if inflight == 0 {
				if p := launch(false); p != "" {
					c.event(Event{Kind: EventReroute, Peer: p})
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if p := launch(true); p != "" {
				c.event(Event{Kind: EventHedge, Peer: p})
			}
		case <-dctx.Done():
			return Result{}, &ShardError{
				Shard: sh.Index, Key: sh.Key, Attempts: attempts, Transient: true,
				Err: fmt.Errorf("shard deadline: %w", dctx.Err()),
			}
		}
	}

	c.event(Event{Kind: EventExhausted})
	if lastErr == nil {
		lastErr = errors.New("no worker available")
	}
	return Result{}, &ShardError{Shard: sh.Index, Key: sh.Key, Attempts: attempts, Transient: true, Err: lastErr}
}

// send performs one worker attempt. Breaker accounting lives here so every
// admitted attempt records exactly one outcome: Success for a well-formed
// response (the worker is alive, even if it rejected the request), Failure
// for network errors, 5xx and attempt timeouts, and a neutral Release when
// the dispatch cancelled the attempt because a sibling won.
func (c *Client) send(ctx context.Context, peer string, sh Shard, hedged bool) attemptResult {
	out := attemptResult{peer: peer, hedged: hedged}
	br := c.breakers[peer]
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+c.cfg.Path, bytes.NewReader(sh.Body))
	if err != nil {
		if br != nil {
			br.Release()
		}
		out.err = fmt.Errorf("dist: build request for %s: %w", peer, err)
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TokenHeader, c.cfg.Token)
	req.Header.Set(ShardHeader, strconv.Itoa(sh.Index)+"/"+strconv.Itoa(sh.Of))
	if id := obs.TraceIDFrom(ctx); id != "" {
		req.Header.Set(TraceHeader, id)
	}

	resp, err := c.http.Do(req)
	out.d = time.Since(start)
	if err != nil {
		switch {
		case errors.Is(ctx.Err(), context.Canceled):
			if br != nil {
				br.Release()
			}
			out.err, out.canceled = ctx.Err(), true
		case ctx.Err() != nil: // attempt deadline: the worker was too slow
			if br != nil {
				br.Failure()
			}
			out.err, out.transient = ctx.Err(), true
		default:
			if br != nil {
				br.Failure()
			}
			out.err, out.transient = fmt.Errorf("dist: dispatch to %s: %w", peer, err), true
		}
		return out
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		if errors.Is(ctx.Err(), context.Canceled) {
			// The dispatch cancelled this attempt mid-read because a sibling
			// won; the worker did nothing wrong, so the outcome is neutral —
			// charging a Failure here opens an innocent worker's breaker.
			if br != nil {
				br.Release()
			}
			out.err, out.canceled = ctx.Err(), true
			return out
		}
		if br != nil {
			br.Failure()
		}
		out.err, out.transient = fmt.Errorf("dist: read response from %s: %w", peer, err), true
		return out
	}
	if len(body) > maxResponseBytes {
		if br != nil {
			br.Failure()
		}
		out.err = fmt.Errorf("dist: response from %s exceeds %d bytes", peer, maxResponseBytes)
		return out
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if br != nil {
			br.Success()
		}
		c.lat[peer].observe(out.d)
		out.body = body
		return out
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The worker is healthy; the request itself was rejected. Permanent.
		if br != nil {
			br.Success()
		}
		out.err = &WorkerError{Peer: peer, Status: resp.StatusCode, Msg: errMsg(body)}
		return out
	default: // 5xx: the worker is overloaded or broken; reroutable.
		if br != nil {
			br.Failure()
		}
		out.err = &WorkerError{Peer: peer, Status: resp.StatusCode, Msg: errMsg(body)}
		out.transient = true
		return out
	}
}

// errMsg extracts the "error" field of a JSON error body, falling back to a
// truncated raw body.
func errMsg(body []byte) string {
	var v struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &v); err == nil && v.Error != "" {
		return v.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// hedgeDelay resolves the hedge trigger for a dispatch whose primary is
// peer: fixed when configured, otherwise 2x the worker's EWMA latency once
// enough history exists, never below 1 ms.
func (c *Client) hedgeDelay(peer string) (time.Duration, bool) {
	switch {
	case c.cfg.HedgeAfter > 0:
		return c.cfg.HedgeAfter, true
	case c.cfg.HedgeAfter < 0:
		return 0, false
	}
	mean, n := c.lat[peer].value()
	if n < 3 {
		return 0, false
	}
	d := 2 * mean
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, true
}

// ewma tracks a worker's dispatch latency as an exponentially weighted
// mean — the cheap stand-in for the latency percentile hedging keys off.
type ewma struct {
	mu   sync.Mutex
	mean float64 // seconds
	n    int64
}

func (e *ewma) observe(d time.Duration) {
	if d <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := d.Seconds()
	if e.n == 0 {
		e.mean = s
	} else {
		const alpha = 0.2
		e.mean = alpha*s + (1-alpha)*e.mean
	}
	e.n++
}

func (e *ewma) value() (time.Duration, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.mean * float64(time.Second)), e.n
}
