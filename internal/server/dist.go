package server

// Distributed scale-out: the worker half (the authenticated internal shard
// endpoint) and the coordinator half (fan a job's shards out to the peer
// fleet and merge the returned aggregates).
//
// The contract that makes this safe is bit-identity: shards own disjoint
// (pool, datacenter) keys, sources are deterministic, and the aggregator
// wire codec preserves every float64 bit — so a job distributed across N
// capserved processes returns byte-for-byte the result a single process
// would have computed. Placement is rendezvous-hashed on each shard's pool
// names, dispatches reroute/hedge around slow or dead workers, and with
// partial results enabled a shard that exhausts every worker degrades the
// job instead of failing it.

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"headroom"
	"headroom/internal/breaker"
	"headroom/internal/dist"
	"headroom/internal/jobs"
	"headroom/internal/obs"
	"headroom/internal/obs/prom"
)

// shardRequest is the wire request of POST /v1/internal/shard: the original
// simulate parameters plus the shard coordinates. The worker rebuilds the
// identical deterministic source from (days, seed, pools) and streams only
// shard `shard` of `of`.
type shardRequest struct {
	Days  int      `json:"days"`
	Seed  int64    `json:"seed"`
	Pools []string `json:"pools,omitempty"`
	Shard int      `json:"shard"`
	Of    int      `json:"of"`
}

// shardResponse is the worker's reply: the shard's aggregate in the exact
// binary wire format (base64 inside JSON), plus provenance.
type shardResponse struct {
	Node    string   `json:"node"`
	Shard   int      `json:"shard"`
	Of      int      `json:"of"`
	Pools   []string `json:"pools,omitempty"`
	Records int64    `json:"records"`
	Agg     []byte   `json:"agg"`
}

// ShardPlacement records where one shard of a distributed job ran, surfaced
// in the job status JSON.
type ShardPlacement struct {
	Shard          int      `json:"shard"`
	Pools          []string `json:"pools,omitempty"`
	AssignedWorker string   `json:"assigned_worker"`
	Hedged         bool     `json:"hedged,omitempty"`
	Attempts       int      `json:"attempts,omitempty"`
}

// placementMetaKey is the jobs.Annotate key the coordinator stores shard
// placements under.
const placementMetaKey = "placement"

// distMetrics holds the coordinator-side capserved_dist_* series.
type distMetrics struct {
	dispatched  map[string]*prom.Counter   // by peer
	failures    map[string]*prom.Counter   // by peer
	latency     map[string]*prom.Histogram // by peer
	transitions map[string]map[breaker.State]*prom.Counter
	reroutes    *prom.Counter
	hedges      *prom.Counter
	hedgeWins   *prom.Counter
	skips       *prom.Counter
	exhausted   *prom.Counter
}

// initDist builds the dist client and its metrics; called from New when
// Config.Peers is non-empty. Invalid distribution config is a deployment
// error, not a request error, so it panics like a bad flag would.
func (s *Server) initDist() {
	client, err := dist.New(dist.Config{
		Peers:        s.cfg.Peers,
		Token:        s.cfg.DistToken,
		Transport:    s.cfg.DistTransport,
		ShardTimeout: s.cfg.ShardTimeout,
		HedgeAfter:   s.cfg.HedgeAfter,
		Clock:        s.cfg.Clock,
		Logger:       s.cfg.Logger,
		OnEvent:      s.onDistEvent,
	})
	if err != nil {
		panic(fmt.Sprintf("server: distributed config: %v", err))
	}
	s.dist = client

	m := &s.distM
	m.dispatched = map[string]*prom.Counter{}
	m.failures = map[string]*prom.Counter{}
	m.latency = map[string]*prom.Histogram{}
	m.transitions = map[string]map[breaker.State]*prom.Counter{}
	for _, peer := range client.Peers() {
		m.dispatched[peer] = s.reg.Counter("capserved_dist_shards_dispatched_total",
			"Shard dispatches sent to a worker (reroutes and hedges included).", prom.Labels{"peer": peer})
		m.failures[peer] = s.reg.Counter("capserved_dist_shard_failures_total",
			"Shard dispatch attempts that failed, by worker.", prom.Labels{"peer": peer})
		m.latency[peer] = s.reg.Histogram("capserved_dist_shard_latency_seconds",
			"Successful shard dispatch latency, by worker.", prom.Labels{"peer": peer}, prom.DefBuckets)
		byState := map[breaker.State]*prom.Counter{}
		for _, st := range []breaker.State{breaker.Closed, breaker.Open, breaker.HalfOpen} {
			byState[st] = s.reg.Counter("capserved_dist_breaker_transitions_total",
				"Worker circuit-breaker transitions, by destination state.",
				prom.Labels{"peer": peer, "to": st.String()})
		}
		m.transitions[peer] = byState
		peer := peer
		s.reg.Gauge("capserved_dist_worker_breaker_state",
			"Worker circuit-breaker position (0 closed, 1 open, 2 half-open).", prom.Labels{"peer": peer},
			func() float64 { return float64(client.BreakerState(peer)) })
	}
	m.reroutes = s.reg.Counter("capserved_dist_reroutes_total",
		"Shards rerouted to a fallback worker after a transient failure.", nil)
	m.hedges = s.reg.Counter("capserved_dist_hedges_total",
		"Hedged (duplicate) shard dispatches launched for slow primaries.", nil)
	m.hedgeWins = s.reg.Counter("capserved_dist_hedge_wins_total",
		"Hedged dispatches that answered before the primary.", nil)
	m.skips = s.reg.Counter("capserved_dist_breaker_skips_total",
		"Candidate workers skipped because their breaker was open.", nil)
	m.exhausted = s.reg.Counter("capserved_dist_shards_exhausted_total",
		"Shards that failed on every available worker.", nil)
	s.reg.Gauge("capserved_dist_peers", "Configured distributed workers.", nil,
		func() float64 { _, total := client.OpenBreakers(); return float64(total) })
	s.reg.Gauge("capserved_dist_peers_open", "Workers whose circuit breaker is open.", nil,
		func() float64 { open, _ := client.OpenBreakers(); return float64(open) })
}

// onDistEvent feeds dispatch lifecycle events into the dist metric series.
func (s *Server) onDistEvent(ev dist.Event) {
	m := &s.distM
	switch ev.Kind {
	case dist.EventDispatch:
		if c, ok := m.dispatched[ev.Peer]; ok {
			c.Inc()
		}
	case dist.EventSuccess:
		if h, ok := m.latency[ev.Peer]; ok {
			h.Observe(ev.Latency.Seconds())
		}
	case dist.EventFailure:
		if c, ok := m.failures[ev.Peer]; ok {
			c.Inc()
		}
	case dist.EventReroute:
		m.reroutes.Inc()
	case dist.EventHedge:
		m.hedges.Inc()
	case dist.EventHedgeWin:
		m.hedgeWins.Inc()
	case dist.EventSkip:
		m.skips.Inc()
	case dist.EventExhausted:
		m.exhausted.Inc()
	case dist.EventBreaker:
		if by, ok := m.transitions[ev.Peer]; ok {
			if c, ok := by[ev.To]; ok {
				c.Inc()
			}
		}
	}
}

// --- worker half ---------------------------------------------------------

// handleInternalShard serves POST /v1/internal/shard: authenticate, rebuild
// the deterministic source, run exactly one shard through the session
// machinery, and return the encoded aggregate. Registered only when a
// DistToken is configured.
func (s *Server) handleInternalShard(w http.ResponseWriter, r *http.Request) {
	if subtle.ConstantTimeCompare([]byte(r.Header.Get(dist.TokenHeader)), []byte(s.cfg.DistToken)) != 1 {
		writeJSON(w, http.StatusForbidden, errBody(r, "invalid or missing "+dist.TokenHeader))
		return
	}
	// Shard work bypasses the job queue (the coordinator already holds a
	// queue slot for the whole job), so a separate semaphore bounds it; at
	// capacity the worker answers 503 and the coordinator reroutes.
	select {
	case s.shardSem <- struct{}{}:
		defer func() { <-s.shardSem }()
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errBody(r, "shard capacity exhausted"))
		return
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil || int64(len(body)) > s.cfg.MaxBodyBytes {
		s.m.badRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errBody(r, "unreadable or oversized body"))
		return
	}
	var sreq shardRequest
	if err := decode(body, &sreq); err != nil {
		s.badRequest(w, r, err)
		return
	}
	if sreq.Of < 1 || sreq.Shard < 0 || sreq.Shard >= sreq.Of {
		s.badRequest(w, r, fmt.Errorf("shard %d/%d out of range", sreq.Shard, sreq.Of))
		return
	}
	simReq := SimulateRequest{Days: sreq.Days, Seed: sreq.Seed, Pools: sreq.Pools}
	if err := simReq.Normalize(); err != nil {
		s.badRequest(w, r, err)
		return
	}
	cfg, err := simReq.Fleet()
	if err != nil {
		s.badRequest(w, r, err)
		return
	}

	// The coordinator's trace id rides in as a span attribute so operators
	// can hop from a job's trace to the worker-side shard spans.
	ctx, sp := obs.StartSpan(r.Context(), "dist.shard.serve",
		obs.Int("shard", sreq.Shard), obs.Int("of", sreq.Of),
		obs.Str("coordinator_trace_id", r.Header.Get(dist.TraceHeader)))
	defer sp.End()

	src := s.wrapSource(headroom.NewSimSource(cfg, simReq.Days), simReq.Seed)
	sess, err := headroom.New(context.Background(), headroom.WithSource(src))
	if err != nil {
		sp.RecordError(err)
		writeJSON(w, http.StatusInternalServerError, errBody(r, err.Error()))
		return
	}
	agg, records, err := sess.AggregateShard(ctx, sreq.Shard, sreq.Of)
	if err != nil {
		sp.RecordError(err)
		// Transient shard failures (and this worker shutting down) are the
		// coordinator's cue to reroute; anything else is permanent for this
		// request on every worker.
		if headroom.IsTransient(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeJSON(w, http.StatusServiceUnavailable, errBody(r, err.Error()))
			return
		}
		writeJSON(w, http.StatusUnprocessableEntity, errBody(r, err.Error()))
		return
	}
	enc, err := headroom.EncodeAggregator(agg)
	if err != nil {
		sp.RecordError(err)
		writeJSON(w, http.StatusInternalServerError, errBody(r, err.Error()))
		return
	}
	sp.SetAttr(obs.Int64("records", records), obs.Int("bytes", len(enc)))
	writeJSON(w, http.StatusOK, shardResponse{
		Node:    s.hostname,
		Shard:   sreq.Shard,
		Of:      sreq.Of,
		Pools:   shardPoolNames(src, sreq.Shard, sreq.Of),
		Records: records,
		Agg:     enc,
	})
}

// wrapSource applies the fault injector and resilience layer to a raw
// source, exactly as single-node aggregation does, so a worker's shard
// behaves identically to the same shard run locally.
func (s *Server) wrapSource(src headroom.Source, seed int64) headroom.Source {
	if s.cfg.Faults != nil {
		src = s.cfg.Faults.Source(src)
	}
	if s.cfg.RetryAttempts > 0 {
		src = headroom.ResilientSource(src, headroom.RetryPolicy{
			MaxAttempts: s.cfg.RetryAttempts,
			Backoff:     s.cfg.RetryBackoff,
			Seed:        seed,
			OnRetry:     func(int, error) { s.m.sourceRetries.Inc() },
		})
	}
	return src
}

// shardPoolNames resolves the pool names of shard index/of of src, when the
// source can name them.
func shardPoolNames(src headroom.Source, index, of int) []string {
	if of == 1 {
		return poolNames(src)
	}
	sh, ok := src.(headroom.ShardedSource)
	if !ok {
		return nil
	}
	subs := sh.Shards(of)
	if index >= len(subs) {
		return nil
	}
	return poolNames(subs[index])
}

func poolNames(src headroom.Source) []string {
	if pn, ok := src.(headroom.PoolNamer); ok {
		return pn.PoolNames()
	}
	return nil
}

// --- coordinator half ----------------------------------------------------

// distSimulateAggregate is the distributed counterpart of
// simulateAggregate: split the request's source into shards, dispatch each
// to the worker fleet, and merge the returned aggregates in shard order.
// The merged aggregate is byte-identical to the single-node computation.
func (s *Server) distSimulateAggregate(ctx context.Context, req SimulateRequest) (*headroom.Aggregator, *headroom.PartialError, error) {
	cfg, err := req.Fleet()
	if err != nil {
		return nil, nil, err
	}
	raw := headroom.NewSimSource(cfg, req.Days)
	n := s.cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	subs := raw.Shards(n)
	// The source decides how many shards it actually splits into (never
	// more than asked, fewer when it has fewer pools); `of` is that actual
	// count, and every worker reproduces the identical split.
	of := len(subs)
	if of < 1 {
		subs, of = []headroom.Source{raw}, 1
	}

	ctx, aggSp := obs.StartSpan(ctx, "dist.aggregate",
		obs.Int("shards", of), obs.Int("peers", len(s.dist.Peers())))
	aggStart := time.Now()
	defer aggSp.End()

	type shardOutcome struct {
		res dist.Result
		err error
	}
	pools := make([][]string, of)
	outcomes := make([]shardOutcome, of)
	done := make(chan int, of)
	for i := 0; i < of; i++ {
		pools[i] = poolNames(subs[i])
		key := strings.Join(pools[i], ",")
		if key == "" {
			key = "shard-" + strconv.Itoa(i)
		}
		body, err := json.Marshal(shardRequest{
			Days: req.Days, Seed: req.Seed, Pools: req.Pools, Shard: i, Of: of,
		})
		if err != nil {
			return nil, nil, err
		}
		go func(i int, key string, body []byte) {
			sctx, sp := obs.StartSpan(ctx, "dist.shard",
				obs.Int("shard", i), obs.Str("pool", key))
			res, err := s.dist.Dispatch(sctx, dist.Shard{Key: key, Index: i, Of: of, Body: body})
			if err == nil {
				sp.SetAttr(obs.Str("worker", res.Worker),
					obs.Bool("hedged", res.Hedged), obs.Int("attempts", res.Attempts))
			}
			sp.RecordError(err)
			sp.End()
			outcomes[i] = shardOutcome{res: res, err: err}
			done <- i
		}(i, key, body)
	}
	for range outcomes {
		<-done
	}
	obs.ObserveStage("aggregate", time.Since(aggStart))

	// Decode and merge in shard order; decode failures count as shard
	// failures (transient — the worker may answer cleanly on retry).
	placements := make([]ShardPlacement, 0, of)
	aggs := make([]*headroom.Aggregator, of)
	errs := make([]error, of)
	for i, oc := range outcomes {
		if oc.err != nil {
			errs[i] = oc.err
			continue
		}
		var resp shardResponse
		if err := json.Unmarshal(oc.res.Body, &resp); err != nil {
			errs[i] = jobs.Transient(fmt.Errorf("shard %d: malformed response from %s: %w", i, oc.res.Worker, err))
			continue
		}
		agg, err := headroom.DecodeAggregator(resp.Agg)
		if err != nil {
			errs[i] = jobs.Transient(fmt.Errorf("shard %d: undecodable aggregate from %s: %w", i, oc.res.Worker, err))
			continue
		}
		aggs[i] = agg
		placements = append(placements, ShardPlacement{
			Shard: i, Pools: pools[i], AssignedWorker: oc.res.Worker,
			Hedged: oc.res.Hedged, Attempts: oc.res.Attempts,
		})
	}
	jobs.Annotate(ctx, placementMetaKey, placements)

	mergeStart := time.Now()
	var out *headroom.Aggregator
	pe := &headroom.PartialError{Shards: of}
	for i := range subs {
		if errs[i] != nil {
			pe.Failed = append(pe.Failed, headroom.PoolError{Shard: i, Pools: pools[i], Err: errs[i]})
			continue
		}
		if out == nil {
			out = aggs[i]
		} else {
			out.Merge(aggs[i])
		}
	}
	obs.ObserveStage("merge", time.Since(mergeStart))

	if len(pe.Failed) == 0 {
		return out, nil, nil
	}
	aggSp.RecordError(pe)
	if s.cfg.PartialResults && out != nil {
		// Degraded: the surviving shards' merge plus the failed pools —
		// mirroring single-node partial results.
		return out, pe, nil
	}
	// Without partial results (or with nothing salvaged) the job fails; a
	// transient shard failure marks the whole job retryable.
	for _, f := range pe.Failed {
		var se *dist.ShardError
		if errors.As(f.Err, &se) && se.Transient {
			return nil, nil, jobs.Transient(pe)
		}
		if jobs.IsTransient(f.Err) {
			return nil, nil, jobs.Transient(pe)
		}
	}
	return nil, nil, pe
}

// DistStats exposes the worker-fleet breaker view for tests and /readyz.
func (s *Server) DistStats() (open, total int) {
	if s.dist == nil {
		return 0, 0
	}
	return s.dist.OpenBreakers()
}
