package optimize

import (
	"testing"

	"headroom/internal/stats"
)

func poolBModel() PoolModel {
	return PoolModel{
		CPU:     stats.LinearFit{Slope: 0.028, Intercept: 1.37},
		Latency: stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}},
	}
}

func TestPlanDisasterRecoveryBasics(t *testing.T) {
	m := poolBModel()
	dcs := []DCCapacity{
		{DC: "DC 1", Servers: 300, PeakRPS: 120000, Weight: 0.5},
		{DC: "DC 4", Servers: 250, PeakRPS: 100000, Weight: 0.3},
		{DC: "DC 7", Servers: 150, PeakRPS: 60000, Weight: 0.2},
	}
	plan, err := m.PlanDisasterRecovery(dcs, 40)
	if err != nil {
		t.Fatalf("PlanDisasterRecovery: %v", err)
	}
	if len(plan.PerDC) != 3 {
		t.Fatalf("PerDC = %d, want 3", len(plan.PerDC))
	}
	// Requirements must cover each DC's own peak plus its worst failover
	// share: verify against the model's capacity directly.
	maxPer, err := m.maxLoadWithinQoS(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range plan.PerDC {
		if req.SurgeRPS <= 0 {
			t.Errorf("%s has no surge load", req.DC)
		}
		// The required count must carry the surge within QoS.
		per := req.SurgeRPS / float64(req.Required)
		if per > maxPer {
			t.Errorf("%s: %d servers leave %v RPS/server beyond QoS capacity %v",
				req.DC, req.Required, per, maxPer)
		}
		// And must be minimal (one fewer server would exceed capacity) —
		// allow the +1 rounding server.
		if req.Required > 2 {
			perLess := req.SurgeRPS / float64(req.Required-2)
			if perLess <= maxPer {
				t.Errorf("%s: requirement %d not minimal", req.DC, req.Required)
			}
		}
	}
	if plan.WorstCaseDC == "" {
		t.Error("worst-case DC unidentified")
	}
	if plan.TotalServers <= 0 {
		t.Error("zero total requirement")
	}
}

func TestPlanDisasterRecoveryDeficit(t *testing.T) {
	m := poolBModel()
	// Deliberately undersized DC 2.
	dcs := []DCCapacity{
		{DC: "DC 1", Servers: 400, PeakRPS: 120000, Weight: 0.5},
		{DC: "DC 2", Servers: 10, PeakRPS: 120000, Weight: 0.5},
	}
	plan, err := m.PlanDisasterRecovery(dcs, 40)
	if err != nil {
		t.Fatal(err)
	}
	var dc2 DRRequirement
	for _, r := range plan.PerDC {
		if r.DC == "DC 2" {
			dc2 = r
		}
	}
	if dc2.Deficit <= 0 {
		t.Errorf("undersized DC should show a deficit, got %+v", dc2)
	}
}

func TestPlanDisasterRecoveryErrors(t *testing.T) {
	m := poolBModel()
	one := []DCCapacity{{DC: "A", Servers: 1, PeakRPS: 1, Weight: 1}}
	if _, err := m.PlanDisasterRecovery(one, 40); err == nil {
		t.Error("single DC should error")
	}
	two := []DCCapacity{
		{DC: "A", Servers: 1, PeakRPS: 1, Weight: 1},
		{DC: "B", Servers: 1, PeakRPS: 1, Weight: 0},
	}
	if _, err := m.PlanDisasterRecovery(two, 0); err == nil {
		t.Error("zero QoS limit should error")
	}
	if _, err := m.PlanDisasterRecovery(two, 40); err == nil {
		t.Error("DC carrying all weight should error (cannot survive its loss)")
	}
	neg := []DCCapacity{
		{DC: "A", Servers: 1, PeakRPS: -1, Weight: 0.5},
		{DC: "B", Servers: 1, PeakRPS: 1, Weight: 0.5},
	}
	if _, err := m.PlanDisasterRecovery(neg, 40); err == nil {
		t.Error("negative load should error")
	}
	// QoS below the latency intercept is unreachable.
	if _, err := m.PlanDisasterRecovery([]DCCapacity{
		{DC: "A", Servers: 1, PeakRPS: 10, Weight: 0.5},
		{DC: "B", Servers: 1, PeakRPS: 10, Weight: 0.5},
	}, 5); err == nil {
		t.Error("unreachable QoS should error")
	}
}

func TestMaxLoadWithinQoS(t *testing.T) {
	m := poolBModel()
	per, err := m.maxLoadWithinQoS(36)
	if err != nil {
		t.Fatal(err)
	}
	// quad(per) == 36 around per ~ 707 for the pool B curve.
	if per < 650 || per > 780 {
		t.Errorf("max per-server load = %v, want ~707", per)
	}
	if m.Latency.Predict(per) > 36.01 {
		t.Errorf("capacity point violates QoS: %v", m.Latency.Predict(per))
	}
	// CPU cap binds when the latency curve is flat.
	flat := PoolModel{
		CPU:     stats.LinearFit{Slope: 0.1, Intercept: 0},
		Latency: stats.Polynomial{Coeffs: []float64{5}},
	}
	per, err = flat.maxLoadWithinQoS(50)
	if err != nil {
		t.Fatal(err)
	}
	if per >= 1000 {
		t.Errorf("CPU cap should bind near 1000 RPS, got %v", per)
	}
}
