package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"headroom/internal/trace"
)

// randomStream builds a deterministic pseudo-random record stream spanning
// several pools, datacenters, servers and ticks, with offline windows mixed
// in — the shape a sharded aggregation has to reproduce exactly.
func randomStream(seed int64, ticks int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	pools := []string{"A", "B", "C"}
	dcs := []string{"DC 1", "DC 2"}
	var out []trace.Record
	for tick := 0; tick < ticks; tick++ {
		for _, pool := range pools {
			for _, dc := range dcs {
				for srv := 0; srv < 4; srv++ {
					r := trace.Record{
						Tick:       tick,
						DC:         dc,
						Pool:       pool,
						Server:     fmt.Sprintf("%s-%s-%02d", pool, dc, srv),
						Generation: "gen1",
						Online:     rng.Float64() > 0.1,
					}
					if r.Online {
						r.RPS = 100 + 50*rng.Float64()
						r.CPUPct = 5 + 30*rng.Float64()
						r.LatencyMs = 10 + 5*rng.Float64()
						r.NetBytes = 1e6 * rng.Float64()
						r.NetPkts = 1e3 * rng.Float64()
						r.MemPages = 1e3 * rng.Float64()
						r.DiskQueue = rng.Float64()
						r.DiskRead = 1e5 * rng.Float64()
						r.Errors = float64(rng.Intn(3))
					}
					out = append(out, r)
				}
			}
		}
	}
	return out
}

// shardByKey splits a stream into n shards, assigning every (pool, DC) key
// to exactly one shard and preserving per-key record order — the contract
// under which Merge must reproduce single-pass aggregation exactly.
func shardByKey(recs []trace.Record, n int) [][]trace.Record {
	keyShard := map[PoolKey]int{}
	var keys []PoolKey
	for _, r := range recs {
		k := PoolKey{DC: r.DC, Pool: r.Pool}
		if _, ok := keyShard[k]; !ok {
			keyShard[k] = 0 // placeholder; assigned after sorting
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pool != keys[j].Pool {
			return keys[i].Pool < keys[j].Pool
		}
		return keys[i].DC < keys[j].DC
	})
	for i, k := range keys {
		keyShard[k] = i % n
	}
	shards := make([][]trace.Record, n)
	for _, r := range recs {
		i := keyShard[PoolKey{DC: r.DC, Pool: r.Pool}]
		shards[i] = append(shards[i], r)
	}
	return shards
}

// aggregate runs single-pass aggregation.
func aggregate(recs []trace.Record) *Aggregator {
	agg := NewAggregator()
	agg.AddAll(recs)
	return agg
}

// TestMergeShardedIdentity is the sharding property: for any N, aggregating
// key-disjoint shards independently and merging yields exactly the
// single-pass pool series, server summaries and availability.
func TestMergeShardedIdentity(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		recs := randomStream(seed, 30)
		want := aggregate(recs)
		for _, n := range []int{1, 2, 3, 4, 6, 16} {
			shards := shardByKey(recs, n)
			merged := NewAggregator()
			for _, shard := range shards {
				merged.Merge(aggregate(shard))
			}
			if got, want := merged.Pools(), want.Pools(); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d shards %d: pools %v, want %v", seed, n, got, want)
			}
			for _, key := range want.Pools() {
				ws, err := want.PoolSeries(key.DC, key.Pool)
				if err != nil {
					t.Fatal(err)
				}
				gs, err := merged.PoolSeries(key.DC, key.Pool)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gs, ws) {
					t.Errorf("seed %d shards %d: %s pool series differs from single pass", seed, n, key)
				}
				wsum, err := want.ServerSummaries(key.DC, key.Pool)
				if err != nil {
					t.Fatal(err)
				}
				gsum, err := merged.ServerSummaries(key.DC, key.Pool)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gsum, wsum) {
					t.Errorf("seed %d shards %d: %s server summaries differ from single pass", seed, n, key)
				}
				wav, err := want.PoolAvailability(key.DC, key.Pool, 10)
				if err != nil {
					t.Fatal(err)
				}
				gav, err := merged.PoolAvailability(key.DC, key.Pool, 10)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gav, wav) {
					t.Errorf("seed %d shards %d: %s availability differs from single pass", seed, n, key)
				}
			}
		}
	}
}

// TestMergeSplitKey covers the overlapping case: a (pool, DC) key whose
// records are split across shards still merges to the correct totals, with
// sums equal up to floating-point reassociation and order-independent
// statistics (percentiles) exact.
func TestMergeSplitKey(t *testing.T) {
	recs := randomStream(3, 20)
	want := aggregate(recs)

	// Contiguous halves: every key appears in both shards.
	mid := len(recs) / 2
	merged := aggregate(recs[:mid])
	merged.Merge(aggregate(recs[mid:]))

	for _, key := range want.Pools() {
		ws, _ := want.PoolSeries(key.DC, key.Pool)
		gs, err := merged.PoolSeries(key.DC, key.Pool)
		if err != nil {
			t.Fatal(err)
		}
		if len(gs) != len(ws) {
			t.Fatalf("%s: %d ticks, want %d", key, len(gs), len(ws))
		}
		for i := range ws {
			if gs[i].Servers != ws[i].Servers || gs[i].Tick != ws[i].Tick {
				t.Fatalf("%s tick %d: servers %d, want %d", key, ws[i].Tick, gs[i].Servers, ws[i].Servers)
			}
			if !near(gs[i].TotalRPS, ws[i].TotalRPS) || !near(gs[i].CPUMean, ws[i].CPUMean) ||
				!near(gs[i].LatencyMean, ws[i].LatencyMean) {
				t.Errorf("%s tick %d: merged aggregates drifted beyond reassociation error", key, ws[i].Tick)
			}
		}
		wsum, _ := want.ServerSummaries(key.DC, key.Pool)
		gsum, err := merged.ServerSummaries(key.DC, key.Pool)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wsum {
			if gsum[i].Windows != wsum[i].Windows || gsum[i].Availability != wsum[i].Availability {
				t.Errorf("%s server %s: windows/availability differ", key, wsum[i].Server)
			}
			// Percentiles sort the merged samples, so they are exact even
			// under a split key.
			if gsum[i].CPU.P50 != wsum[i].CPU.P50 || gsum[i].CPU.P95 != wsum[i].CPU.P95 {
				t.Errorf("%s server %s: percentiles differ under split-key merge", key, wsum[i].Server)
			}
		}
	}
}

// TestMergeDisjointAndNil checks the trivial cases: merging into an empty
// aggregator adopts the source wholesale, and nil is a no-op.
func TestMergeDisjointAndNil(t *testing.T) {
	recs := randomStream(5, 5)
	want := aggregate(recs)
	got := NewAggregator()
	got.Merge(aggregate(recs))
	got.Merge(nil)
	if !reflect.DeepEqual(got.Pools(), want.Pools()) {
		t.Fatalf("pools differ after adopt-merge")
	}
	for _, key := range want.Pools() {
		ws, _ := want.PoolSeries(key.DC, key.Pool)
		gs, _ := got.PoolSeries(key.DC, key.Pool)
		if !reflect.DeepEqual(gs, ws) {
			t.Errorf("%s: series differ after adopt-merge", key)
		}
	}
}

func near(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
