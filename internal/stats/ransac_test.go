package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRANSACRejectsOutliers(t *testing.T) {
	// Quadratic latency-vs-servers truth, like the paper's eq. (1), with a
	// block of contaminated points simulating a deployment window.
	truth := Polynomial{Coeffs: []float64{40, -0.2, 0.002}}
	rng := rand.New(rand.NewSource(21))
	var xs, ys []float64
	for n := 20.0; n <= 120; n += 0.5 {
		xs = append(xs, n)
		ys = append(ys, truth.Predict(n)+0.2*rng.NormFloat64())
	}
	// 15% outliers: latency spikes from an unrelated deployment.
	outliers := len(xs) * 15 / 100
	for i := 0; i < outliers; i++ {
		j := rng.Intn(len(xs))
		ys[j] += 30 + 10*rng.Float64()
	}

	res, err := RANSAC(xs, ys, RANSACConfig{Degree: 2, Seed: 1, MaxIterations: 300})
	if err != nil {
		t.Fatalf("RANSAC: %v", err)
	}
	// The robust fit should recover the truth much better than plain OLS.
	ols, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	at80Truth := truth.Predict(80)
	robustErr := math.Abs(res.Model.Predict(80) - at80Truth)
	olsErr := math.Abs(ols.Predict(80) - at80Truth)
	if robustErr > 1 {
		t.Errorf("robust prediction error %v too large", robustErr)
	}
	if robustErr >= olsErr {
		t.Errorf("robust error %v should beat OLS error %v", robustErr, olsErr)
	}
	if res.InlierFrac < 0.7 {
		t.Errorf("inlier fraction %v too small", res.InlierFrac)
	}
}

func TestRANSACCleanDataMatchesOLS(t *testing.T) {
	truth := Polynomial{Coeffs: []float64{5, 1.5}}
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, truth.Predict(float64(i)))
	}
	res, err := RANSAC(xs, ys, RANSACConfig{Degree: 1, Seed: 2})
	if err != nil {
		t.Fatalf("RANSAC: %v", err)
	}
	if !almostEqual(res.Model.Coeffs[1], 1.5, 1e-6) || !almostEqual(res.Model.Coeffs[0], 5, 1e-6) {
		t.Errorf("model = %v, want clean line", res.Model.Coeffs)
	}
	if res.InlierFrac != 1 {
		t.Errorf("inlier frac = %v, want 1 on clean data", res.InlierFrac)
	}
}

func TestRANSACErrors(t *testing.T) {
	if _, err := RANSAC([]float64{1, 2}, []float64{1}, RANSACConfig{Degree: 1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := RANSAC([]float64{1, 2, 3}, []float64{1, 2, 3}, RANSACConfig{Degree: 2}); err == nil {
		t.Error("too few points should error")
	}
	// Majority outliers: consensus below MinInlierFrac must fail.
	rng := rand.New(rand.NewSource(4))
	var xs, ys []float64
	for i := 0; i < 40; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, rng.Float64()*1000) // pure noise
	}
	if _, err := RANSAC(xs, ys, RANSACConfig{
		Degree: 1, Seed: 3, InlierThreshold: 0.1, MinInlierFrac: 0.9,
	}); err == nil {
		t.Error("pure-noise data should fail the consensus check")
	}
}

func TestRANSACDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var xs, ys []float64
	for i := 0; i < 60; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, 2*float64(i)+rng.NormFloat64())
	}
	a, err := RANSAC(xs, ys, RANSACConfig{Degree: 1, Seed: 42})
	if err != nil {
		t.Fatalf("RANSAC: %v", err)
	}
	b, err := RANSAC(xs, ys, RANSACConfig{Degree: 1, Seed: 42})
	if err != nil {
		t.Fatalf("RANSAC: %v", err)
	}
	if a.Model.Coeffs[0] != b.Model.Coeffs[0] || a.Model.Coeffs[1] != b.Model.Coeffs[1] {
		t.Error("same seed should give identical fits")
	}
	if len(a.Inliers) != len(b.Inliers) {
		t.Error("same seed should give identical inlier sets")
	}
}
