package experiments

import (
	"context"
	"headroom/internal/measure"
	"headroom/internal/metrics"
	"headroom/internal/optimize"
	"headroom/internal/sim"
	"headroom/internal/trace"
	"headroom/internal/validate"
)

// table4Availability gives each named pool the availability the paper's
// Table IV online-savings column implies (onlineSavings = 1 - a/0.98):
// pool B's 27% online savings implies ~71.5% availability, A's 4% ~94%, etc.
func table4Availability(name string) sim.AvailabilityProfile {
	switch name {
	case "A":
		return sim.AvailabilityProfile{PlannedDailyFrac: 0.06}
	case "B":
		return sim.AvailabilityProfile{PlannedDailyFrac: 0.095, RepurposedOffPeakFrac: 0.19}
	case "C":
		return sim.AvailabilityProfile{PlannedDailyFrac: 0.09}
	case "E":
		return sim.AvailabilityProfile{PlannedDailyFrac: 0.04}
	default: // D, F, G: best practice
		return sim.AvailabilityProfile{PlannedDailyFrac: 0.02}
	}
}

// Table4 reproduces the savings summary across the seven largest pools.
// Paper totals: 20% efficiency savings, ~5 ms average latency impact, 10%
// online savings, 30% total.
func Table4(ctx context.Context, cfg Config) (*Result, error) {
	pools := []sim.PoolConfig{
		sim.PoolA(), sim.PoolB(), sim.PoolC(), sim.PoolD(), sim.PoolE(), sim.PoolF(), sim.PoolG(),
	}
	for i := range pools {
		pools[i].Availability = table4Availability(pools[i].Name)
	}
	days := 2
	if cfg.Fast {
		days = 1
	}
	fleet := sim.FleetConfig{
		DCs:               nineRegions(),
		Pools:             pools,
		WorkloadNoiseFrac: 0.03,
		Seed:              cfg.Seed + 700,
	}
	s, err := sim.New(fleet)
	if err != nil {
		return nil, err
	}
	agg := metrics.NewAggregator()
	if err := s.RunContext(ctx, days*s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		return nil, err
	}

	var obs []optimize.PoolObservation
	for _, pc := range pools {
		// Representative series: the pool's largest datacenter.
		bestDC, bestN := "", 0
		total := 0
		for dc, n := range pc.Servers {
			total += n
			if n > bestN {
				bestDC, bestN = dc, n
			}
		}
		series, err := agg.PoolSeries(bestDC, pc.Name)
		if err != nil {
			return nil, err
		}
		// Step 1 gate: refine the workload metric when contaminated
		// (pool A's background uploads).
		rep, err := measure.ValidateWorkloadMetric(series, 0)
		if err != nil {
			return nil, err
		}
		if cc, err := rep.Counter("cpu"); err == nil && !cc.Linear {
			ref, err := measure.RefineByOutlierRemoval(series, 0)
			if err == nil && ref.After > ref.Before {
				series = ref.Clean
			}
		}
		// Availability across every datacenter the pool runs in.
		var avSum float64
		var avN int
		for dc := range pc.Servers {
			sums, err := agg.ServerSummaries(dc, pc.Name)
			if err != nil {
				return nil, err
			}
			for _, ss := range sums {
				avSum += ss.Availability
				avN++
			}
		}
		obs = append(obs, optimize.PoolObservation{
			Pool:         pc.Name,
			Series:       series,
			Servers:      total,
			Availability: avSum / float64(avN),
		})
	}
	rows, err := optimize.SummarizeSavings(obs, optimize.SavingsConfig{LatencyBudgetMs: 5})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "table4",
		Title:  "Server-savings summary for the seven largest pools",
		Header: []string{"pool", "efficiency_savings", "latency_impact_ms", "online_savings", "total_savings"},
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			r.Pool, pct(r.EfficiencySavings), f1(r.LatencyImpactMs), pct(r.OnlineSavings), pct(r.TotalSavings),
		})
	}
	eff, lat, online, total, err := optimize.WeightedTotals(rows)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, []string{"Savings", pct(eff), f1(lat) + "ms avg", pct(online), pct(total)})
	res.Metric("efficiency_savings (paper 0.20)", eff)
	res.Metric("avg_latency_impact_ms (paper ~5)", lat)
	res.Metric("online_savings (paper 0.10)", online)
	res.Metric("total_savings (paper 0.30)", total)
	return res, nil
}

// Fig16 reproduces the offline A/B regression case study: a change fixing a
// memory leak while accidentally introducing a high-load latency
// regression, caught by the two-pool identical-workload harness before
// deployment.
func Fig16(ctx context.Context, cfg Config) (*Result, error) {
	ticks := 30
	if cfg.Fast {
		ticks = 12
	}
	rep, err := validate.Run(ctx, validate.Config{
		Pool:          sim.PoolB(),
		Servers:       20,
		Loads:         []float64{100, 180, 260, 340, 420, 500, 580},
		TicksPerLevel: ticks,
		Seed:          cfg.Seed + 800,
	}, validate.Change{
		Name: "memory-leak-fix-v1",
		Apply: func(rp sim.ResponseParams) sim.ResponseParams {
			rp.MemPagesBase *= 0.3 // the leak is fixed
			rp.LatQuad[2] *= 2.2   // the hidden design flaw
			return rp
		},
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig16",
		Title:  "A/B latency box plot per workload level: baseline vs change",
		Header: []string{"rps_per_server", "base_p25", "base_mean", "base_p75", "chg_p25", "chg_mean", "chg_p75", "chg_mem_pages_frac"},
	}
	for _, lv := range rep.Levels {
		memFrac := 0.0
		if lv.BaselineMemPages > 0 {
			memFrac = lv.ChangeMemPages / lv.BaselineMemPages
		}
		res.Rows = append(res.Rows, []string{
			f1(lv.LoadRPSPerServer),
			f1(lv.BaselineLatency.P25), f1(lv.BaselineLatency.Mean), f1(lv.BaselineLatency.P75),
			f1(lv.ChangeLatency.P25), f1(lv.ChangeLatency.Mean), f1(lv.ChangeLatency.P75),
			f2(memFrac),
		})
	}
	res.Metric("latency_regression_detected", boolToFloat(rep.LatencyRegression))
	res.Metric("memory_leak_fixed", boolToFloat(rep.MemoryImproved))
	res.Metric("first_regression_rps", rep.FirstRegressionLoad)
	res.Metric("acceptable_for_deploy", boolToFloat(rep.Acceptable))
	res.Notes = append(res.Notes,
		"the fix works (paging down ~70%) but the latency regression under high load blocks the deployment, as in §III-C")
	return res, nil
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
