// Command capsim simulates the paper-shaped global service fleet and writes
// its 120-second observation windows as a trace (CSV or JSON Lines), the
// input of cmd/capplan.
//
// Usage:
//
//	capsim -days 1 -seed 1 -format csv -out fleet.csv
//	capsim -days 2 -pools B,D -format jsonl -out bd.jsonl
//
// Interrupting the process (Ctrl-C) cancels the simulation mid-stream.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"headroom"
	"headroom/internal/obs"
	"headroom/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "capsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("capsim", flag.ContinueOnError)
	var (
		days     = fs.Int("days", 1, "days to simulate")
		seed     = fs.Int64("seed", 1, "deterministic seed")
		format   = fs.String("format", "csv", "output format: csv or jsonl")
		out      = fs.String("out", "", "output file (default stdout)")
		pools    = fs.String("pools", "", "comma-separated pool names to keep (default: all)")
		traceOut = fs.String("trace-out", "", "write a Chrome trace_event JSON of the run (load at chrome://tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Invalid flag values print usage and exit non-zero instead of
	// proceeding with a garbage configuration.
	fail := func(format string, v ...any) error {
		fmt.Fprintf(fs.Output(), format+"\n\n", v...)
		fs.Usage()
		return fmt.Errorf(format, v...)
	}
	if *days <= 0 {
		return fail("days must be positive, got %d", *days)
	}
	if *format != "csv" && *format != "jsonl" {
		return fail("unknown format %q (want csv or jsonl)", *format)
	}

	cfg := headroom.DefaultFleet(*seed)
	if *pools != "" {
		keep := map[string]bool{}
		for _, p := range strings.Split(*pools, ",") {
			keep[strings.TrimSpace(p)] = true
		}
		var filtered []headroom.PoolConfig
		for _, pc := range cfg.Pools {
			if keep[pc.Name] {
				filtered = append(filtered, pc)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no pools match %q", *pools)
		}
		cfg.Pools = filtered
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}

	var write func(trace.Record) error
	var flush func() error
	switch *format {
	case "csv":
		cw := trace.NewCSVWriter(w)
		write, flush = cw.Write, cw.Flush
	case "jsonl":
		jw := trace.NewJSONLWriter(w)
		write, flush = jw.Write, jw.Flush
	default:
		return fmt.Errorf("unknown format %q (want csv or jsonl)", *format)
	}

	if *traceOut != "" {
		var finish func() error
		ctx, finish = obs.FileTrace(ctx, "capsim", *traceOut)
		defer func() {
			if err := finish(); err != nil {
				fmt.Fprintln(os.Stderr, "capsim:", err)
			}
		}()
	}

	s, err := headroom.New(ctx, headroom.WithSource(headroom.NewSimSource(cfg, *days)))
	if err != nil {
		return err
	}
	var n int
	sctx, sp := obs.StartSpan(ctx, "capsim.stream", obs.Int("days", *days))
	err = s.Stream(sctx, nil, func(r headroom.Record) error {
		n++
		return write(r)
	})
	sp.SetAttr(obs.Int("records", n))
	sp.RecordError(err)
	sp.End()
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "capsim: wrote %d records (%d pools, %d days, seed %d)\n",
		n, len(cfg.Pools), *days, *seed)
	return nil
}
