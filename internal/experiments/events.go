package experiments

import (
	"context"
	"fmt"

	"headroom/internal/metrics"
	"headroom/internal/optimize"
	"headroom/internal/sim"
	"headroom/internal/stats"
	"headroom/internal/workload"
)

// naturalPool is the subject of the paper's first natural experiment
// (Figures 4-5): a micro-service whose latency stays below ~26 ms even
// through the surge.
func naturalPool() sim.PoolConfig {
	return sim.PoolConfig{
		Name:        "N",
		Description: "natural-experiment pool (Figures 4-5)",
		Servers: map[string]int{
			"DC 1": 120, "DC 2": 80, "DC 3": 130, "DC 4": 100, "DC 5": 90, "DC 6": 70, "DC 7": 80,
		},
		Response: sim.ResponseParams{
			CPUSlope: 0.04, CPUIntercept: 2, CPUNoise: 0.3,
			LatQuad: [3]float64{22, -0.01, 1e-5}, LatNoise: 0.5,
			NetBytesPerReq: 15000, NetPktsPerReq: 15,
			MemPagesBase: 5000, DiskBytesPerPage: 1800, DiskQueueBase: 0.4,
		},
		Traffic: workload.Pattern{BaseRPS: 160000, PeakToTrough: 2, PeakHour: 13},
	}
}

// naturalEvent is the two-hour unplanned capacity event: two datacenters
// fail, the survivors absorb their traffic unevenly — the paper observed a
// median +56% with one datacenter at +127%.
func naturalEvent(startTick int) workload.Event {
	return workload.Event{
		Name:      "unplanned-capacity-event",
		StartTick: startTick,
		EndTick:   startTick + 60, // two hours of 120 s windows
		Multipliers: map[string]float64{
			"DC 1": 1.45, "DC 2": 1.50, "DC 3": 1.56, "DC 4": 1.62,
			"DC 5": 1.56, "DC 6": 2.27, "DC 7": 0,
		},
	}
}

// naturalRun simulates the event: two days before, the event mid-day-3,
// then the remainder of day 3 (paper: "2 days before and after").
func naturalRun(ctx context.Context, cfg Config) (*metrics.Aggregator, int, int, error) {
	days := 5
	eventStart := 2*720 + 390 // mid-afternoon of day 3
	if cfg.Fast {
		days = 3
		eventStart = 720 + 390
	}
	pool := naturalPool()
	ev := naturalEvent(eventStart)
	sched, err := workload.NewSchedule(ev)
	if err != nil {
		return nil, 0, 0, err
	}
	pool.Schedule = sched
	agg, err := poolAggregator(ctx, pool, cfg.Seed+500, days*720)
	if err != nil {
		return nil, 0, 0, err
	}
	return agg, ev.StartTick, ev.EndTick, nil
}

// Fig4 reproduces the workload time series around the unplanned event.
func Fig4(ctx context.Context, cfg Config) (*Result, error) {
	agg, start, end, err := naturalRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig4",
		Title:  "Pool workload (RPS/server) around the unplanned event",
		Header: []string{"tick", "dc1_rps", "dc3_rps", "dc6_rps"},
	}
	get := func(dc string) map[int]float64 {
		series, err := agg.PoolSeries(dc, "N")
		if err != nil {
			return nil
		}
		out := make(map[int]float64, len(series))
		for _, t := range series {
			out[t.Tick] = t.RPSPerServer
		}
		return out
	}
	d1, d3, d6 := get("DC 1"), get("DC 3"), get("DC 6")
	for tick := start - 720; tick < end+720; tick += 20 {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", tick), f1(d1[tick]), f1(d3[tick]), f1(d6[tick]),
		})
	}

	// Realized surge per surviving DC: mean in-event load over the mean
	// load in the same time-of-day window the previous day.
	var surges []float64
	var maxSurge float64
	for _, dc := range []string{"DC 1", "DC 2", "DC 3", "DC 4", "DC 5", "DC 6"} {
		series, err := agg.PoolSeries(dc, "N")
		if err != nil {
			return nil, err
		}
		var inEvent, ref float64
		var nIn, nRef int
		for _, t := range series {
			if t.Tick >= start && t.Tick < end {
				inEvent += t.RPSPerServer
				nIn++
			}
			if t.Tick >= start-720 && t.Tick < end-720 {
				ref += t.RPSPerServer
				nRef++
			}
		}
		if nIn == 0 || nRef == 0 {
			continue
		}
		s := inEvent / float64(nIn) / (ref / float64(nRef))
		surges = append(surges, s-1)
		if s-1 > maxSurge {
			maxSurge = s - 1
		}
	}
	res.Metric("median_surge_frac (paper 0.56)", stats.Median(surges))
	res.Metric("max_surge_frac (paper 1.27)", maxSurge)
	return res, nil
}

// Fig5 shows the pre-event linear CPU model holding through the surge, with
// latency staying below the paper's 26 ms.
func Fig5(ctx context.Context, cfg Config) (*Result, error) {
	agg, start, end, err := naturalRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig5",
		Title:  "CPU vs RPS across the unplanned event per datacenter",
		Header: []string{"dc", "pre_slope", "pre_R2", "event_cpu_mae", "event_lat_mae", "peak_rps_ratio", "max_latency_ms"},
	}
	var worstLat float64
	for _, dc := range []string{"DC 1", "DC 3", "DC 6"} {
		series, err := agg.PoolSeries(dc, "N")
		if err != nil {
			return nil, err
		}
		ev, err := optimize.ValidateOnEvent(series, func(tick int) bool { return tick >= start && tick < end })
		if err != nil {
			return nil, err
		}
		var maxLat float64
		for _, t := range series {
			if t.Tick >= start && t.Tick < end && t.LatencyMean > maxLat {
				maxLat = t.LatencyMean
			}
		}
		if maxLat > worstLat {
			worstLat = maxLat
		}
		res.Rows = append(res.Rows, []string{
			dc, g4(ev.Model.CPU.Slope), f3(ev.Model.CPU.R2),
			f2(ev.MeanAbsCPUErr), f2(ev.MeanAbsLatErr), f2(ev.PeakRPSRatio), f1(maxLat),
		})
		res.Metric("cpu_mae_"+dc, ev.MeanAbsCPUErr)
	}
	res.Metric("max_latency_ms (paper <26)", worstLat)
	res.Notes = append(res.Notes,
		"the +127% datacenter confirms the linear CPU model well beyond the normally observed load range")
	return res, nil
}

// Fig6 reproduces the 4x-load natural experiment: five datacenters' latency
// vs workload with one (DC 5) receiving four times its normal traffic, and
// its pre-event trend line predicting the behaviour.
func Fig6(ctx context.Context, cfg Config) (*Result, error) {
	pool := sim.PoolConfig{
		Name:        "W",
		Description: "4x natural-experiment pool (Figure 6)",
		Servers: map[string]int{
			"DC 2": 90, "DC 3": 110, "DC 5": 100, "DC 7": 80, "DC 8": 60,
		},
		Response: sim.ResponseParams{
			CPUSlope: 0.008, CPUIntercept: 2, CPUNoise: 0.25,
			// Elevated latency at low workload (cold caches), mild convex
			// rise toward 2500 RPS — the paper's Figure 6 shape.
			LatQuad: [3]float64{16, -0.004, 2.4e-6}, LatNoise: 0.4,
			NetBytesPerReq: 6000, NetPktsPerReq: 7,
			MemPagesBase: 3000, DiskBytesPerPage: 1500, DiskQueueBase: 0.3,
		},
		Traffic: workload.Pattern{BaseRPS: 1600000, PeakToTrough: 2.1, PeakHour: 13},
	}
	days := 2
	start := 720 + 390
	if cfg.Fast {
		days, start = 2, 720+390
	}
	ev := workload.Event{
		Name: "4x-event", StartTick: start, EndTick: start + 90,
		Multipliers: map[string]float64{"DC 5": 4},
	}
	sched, err := workload.NewSchedule(ev)
	if err != nil {
		return nil, err
	}
	pool.Schedule = sched
	agg, err := poolAggregator(ctx, pool, cfg.Seed+600, days*720)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig6",
		Title:  "Latency vs workload per datacenter; DC 5 at 4x during the event",
		Header: []string{"dc", "rps_band", "latency_ms"},
	}
	for _, dc := range []string{"DC 2", "DC 3", "DC 5", "DC 7", "DC 8"} {
		series, err := agg.PoolSeries(dc, "W")
		if err != nil {
			return nil, err
		}
		// Bucket (rps, latency) into coarse bands for the figure rows.
		bands := map[int][]float64{}
		for _, t := range series {
			b := int(t.RPSPerServer / 500)
			bands[b] = append(bands[b], t.LatencyMean)
		}
		for b := 0; b <= 5; b++ {
			if vals, ok := bands[b]; ok {
				res.Rows = append(res.Rows, []string{
					dc, fmt.Sprintf("%d-%d", b*500, (b+1)*500), f1(stats.Mean(vals)),
				})
			}
		}
	}

	// DC 5 trend line: fit on non-event windows, score on event windows.
	series, err := agg.PoolSeries("DC 5", "W")
	if err != nil {
		return nil, err
	}
	evd, err := optimize.ValidateOnEvent(series, func(tick int) bool { return tick >= start && tick < start+90 })
	if err != nil {
		return nil, err
	}
	res.Metric("dc5_peak_rps_ratio (paper ~4x)", evd.PeakRPSRatio)
	res.Metric("dc5_event_latency_mae_ms", evd.MeanAbsLatErr)
	res.Metric("dc5_trend_R2", evd.Model.Latency.R2)
	res.Notes = append(res.Notes,
		"DC 5 behaves as the pre-event trend predicts at 4x load; elevated latency at low workload comes from cache priming, as the paper notes")
	return res, nil
}
