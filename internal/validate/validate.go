// Package validate implements Step 4 of the capacity-planning methodology
// (§II-D of the paper): offline regression analysis of changes before they
// reach production.
//
// The harness runs two pools of the same size and hardware — one with the
// change, one without — under precisely identical synthetic workloads, makes
// small load increments across a sweep, and compares latency and resource
// utilisation level by level. This detects not just THAT a change regressed
// capacity or QoS but the curve describing the change, so capacity plans can
// be adjusted before deployment (§III-C's memory-leak case study: the fix
// was confirmed, but it introduced a latency regression under high load that
// offline analysis caught before rollout).
package validate

import (
	"context"
	"errors"
	"fmt"

	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/stats"
	"headroom/internal/trace"
)

// Change is a candidate modification to a micro-service, expressed as a
// transformation of its response parameters (the offline build with the
// change applied).
type Change struct {
	// Name labels the change in reports.
	Name string
	// Apply returns the changed response model.
	Apply func(sim.ResponseParams) sim.ResponseParams
}

// Config controls one A/B validation run.
type Config struct {
	// Pool is the micro-service under test.
	Pool sim.PoolConfig
	// Servers is the size of each of the two offline pools.
	Servers int
	// Loads is the per-server load sweep (RPS/server, ascending).
	Loads []float64
	// TicksPerLevel is how many windows each load level runs.
	TicksPerLevel int
	// LatencyTolMs and CPUTolPct bound the acceptable regression at any
	// level; defaults 2 ms and 1.5 percentage points.
	LatencyTolMs float64
	CPUTolPct    float64
	// Seed drives both pools deterministically. The two pools use
	// different derived seeds but identical offered loads, like the
	// paper's "precisely generate identical workloads to each pool".
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LatencyTolMs <= 0 {
		c.LatencyTolMs = 2
	}
	if c.CPUTolPct <= 0 {
		c.CPUTolPct = 1.5
	}
	if c.TicksPerLevel <= 0 {
		c.TicksPerLevel = 20
	}
	return c
}

// LevelResult compares the two pools at one load level (one column pair of
// the paper's Figure 16 box plot).
type LevelResult struct {
	// LoadRPSPerServer is the per-server offered load.
	LoadRPSPerServer float64
	// BaselineLatency and ChangeLatency summarise per-window pool-mean
	// latency at this level.
	BaselineLatency stats.Summary
	ChangeLatency   stats.Summary
	// BaselineCPU and ChangeCPU are the mean pool CPU percentages.
	BaselineCPU float64
	ChangeCPU   float64
	// BaselineMemPages and ChangeMemPages are mean paging rates (the
	// memory-leak signal of §III-C).
	BaselineMemPages float64
	ChangeMemPages   float64
}

// Report is the outcome of an offline validation run.
type Report struct {
	Change string
	Levels []LevelResult
	// LatencyRegression is true when the change's latency exceeds baseline
	// beyond tolerance at any level; FirstRegressionLoad is the lowest
	// such load.
	LatencyRegression   bool
	FirstRegressionLoad float64
	// CapacityImpactFrac estimates the relative capacity change from the
	// CPU slopes (positive = the change needs more servers for the same
	// load).
	CapacityImpactFrac float64
	// MemoryImproved is true when the change reduced paging at every
	// level (the intended effect of the §III-C fix).
	MemoryImproved bool
	// Acceptable is the deployment gate: no latency regression and no
	// capacity increase beyond 5%.
	Acceptable bool
}

// Run executes the A/B comparison. Cancellation is checked throughout both
// simulated runs; a cancelled ctx returns ctx.Err().
func Run(ctx context.Context, cfg Config, change Change) (Report, error) {
	cfg = cfg.withDefaults()
	if change.Apply == nil {
		return Report{}, errors.New("validate: change with nil Apply")
	}
	if cfg.Servers <= 0 {
		return Report{}, fmt.Errorf("validate: non-positive server count %d", cfg.Servers)
	}
	if len(cfg.Loads) < 2 {
		return Report{}, fmt.Errorf("validate: need >= 2 load levels, got %d", len(cfg.Loads))
	}
	for i := 1; i < len(cfg.Loads); i++ {
		if cfg.Loads[i] <= cfg.Loads[i-1] {
			return Report{}, errors.New("validate: loads must be ascending")
		}
	}

	offered := make([]float64, 0, len(cfg.Loads)*cfg.TicksPerLevel)
	for _, l := range cfg.Loads {
		for r := 0; r < cfg.TicksPerLevel; r++ {
			offered = append(offered, l*float64(cfg.Servers))
		}
	}

	baselinePool := cfg.Pool
	changedPool := cfg.Pool
	changedPool.Response = change.Apply(cfg.Pool.Response)
	if err := changedPool.Response.Validate(); err != nil {
		return Report{}, fmt.Errorf("validate: changed response invalid: %w", err)
	}

	baseRecs, err := sim.SimulatePoolContext(ctx, baselinePool, "offline-a", offered, cfg.Servers, cfg.Seed)
	if err != nil {
		return Report{}, fmt.Errorf("validate: baseline run: %w", err)
	}
	changeRecs, err := sim.SimulatePoolContext(ctx, changedPool, "offline-b", offered, cfg.Servers, cfg.Seed+1)
	if err != nil {
		return Report{}, fmt.Errorf("validate: change run: %w", err)
	}

	baseSeries, err := poolSeries(baseRecs, "offline-a", cfg.Pool.Name)
	if err != nil {
		return Report{}, err
	}
	changeSeries, err := poolSeries(changeRecs, "offline-b", cfg.Pool.Name)
	if err != nil {
		return Report{}, err
	}

	rep := Report{Change: change.Name, MemoryImproved: true}
	var baseX, baseCPU, chX, chCPU []float64
	for li, load := range cfg.Loads {
		lo, hi := li*cfg.TicksPerLevel, (li+1)*cfg.TicksPerLevel
		var bLat, cLat []float64
		var bCPU, cCPU, bMem, cMem float64
		for _, t := range baseSeries[lo:hi] {
			bLat = append(bLat, t.LatencyMean)
			bCPU += t.CPUMean
			bMem += t.MemPages
			baseX = append(baseX, t.RPSPerServer)
			baseCPU = append(baseCPU, t.CPUMean)
		}
		for _, t := range changeSeries[lo:hi] {
			cLat = append(cLat, t.LatencyMean)
			cCPU += t.CPUMean
			cMem += t.MemPages
			chX = append(chX, t.RPSPerServer)
			chCPU = append(chCPU, t.CPUMean)
		}
		n := float64(cfg.TicksPerLevel)
		lr := LevelResult{
			LoadRPSPerServer: load,
			BaselineLatency:  stats.Summarize(bLat),
			ChangeLatency:    stats.Summarize(cLat),
			BaselineCPU:      bCPU / n,
			ChangeCPU:        cCPU / n,
			BaselineMemPages: bMem / n,
			ChangeMemPages:   cMem / n,
		}
		rep.Levels = append(rep.Levels, lr)
		if lr.ChangeLatency.Mean-lr.BaselineLatency.Mean > cfg.LatencyTolMs {
			if !rep.LatencyRegression {
				rep.FirstRegressionLoad = load
			}
			rep.LatencyRegression = true
		}
		if lr.ChangeMemPages >= lr.BaselineMemPages {
			rep.MemoryImproved = false
		}
	}

	bFit, err := stats.LinearRegression(baseX, baseCPU)
	if err != nil {
		return Report{}, fmt.Errorf("validate: baseline cpu fit: %w", err)
	}
	cFit, err := stats.LinearRegression(chX, chCPU)
	if err != nil {
		return Report{}, fmt.Errorf("validate: change cpu fit: %w", err)
	}
	if bFit.Slope != 0 {
		rep.CapacityImpactFrac = cFit.Slope/bFit.Slope - 1
	}
	rep.Acceptable = !rep.LatencyRegression && rep.CapacityImpactFrac <= 0.05
	return rep, nil
}

// poolSeries aggregates raw records into per-tick pool stats, in tick
// order.
func poolSeries(recs []trace.Record, dc, pool string) ([]metrics.TickStat, error) {
	agg := metrics.NewAggregator()
	agg.AddAll(recs)
	series, err := agg.PoolSeries(dc, pool)
	if err != nil {
		return nil, fmt.Errorf("validate: %w", err)
	}
	return series, nil
}
