package optimize

import (
	"fmt"

	"headroom/internal/metrics"
	"headroom/internal/stats"
)

// BestPracticeAvailability is the availability of well-managed pools: the
// paper observed 98% (2% infrastructure maintenance is irreducible) and uses
// it as the target all pools could reach by improving planned-maintenance
// practices.
const BestPracticeAvailability = 0.98

// SavingsRow is one row of the paper's Table IV: the capacity savings
// opportunity for a pool across all datacenters.
type SavingsRow struct {
	Pool string
	// EfficiencySavings is the fraction of servers removable while the
	// latency forecast stays within the QoS budget ("Efficiency Savings").
	EfficiencySavings float64
	// LatencyImpactMs is the forecast latency increase at the reduced
	// count ("Latency (QoS) Impact").
	LatencyImpactMs float64
	// OnlineSavings is the capacity recoverable by raising availability to
	// best practice ("Online Savings").
	OnlineSavings float64
	// TotalSavings combines both ("Total Savings").
	TotalSavings float64
	// Servers is the pool's nominal server count across datacenters.
	Servers int
}

// SavingsConfig controls the Table IV computation.
type SavingsConfig struct {
	// LatencyBudgetMs is the acceptable latency increase over the current
	// operating point (the paper accepted an average of 5 ms, <1% of
	// end-to-end latency).
	LatencyBudgetMs float64
	// MaxReductionFrac caps the per-pool efficiency savings; the paper
	// treats 33% as the practical per-pool limit (headroom must survive
	// single-DC failures).
	MaxReductionFrac float64
}

func (c SavingsConfig) withDefaults() SavingsConfig {
	if c.LatencyBudgetMs <= 0 {
		c.LatencyBudgetMs = 5
	}
	if c.MaxReductionFrac <= 0 {
		c.MaxReductionFrac = 1.0 / 3
	}
	return c
}

// PoolObservation is one pool's data for the savings analysis: its history
// in one datacenter plus availability across the fleet.
type PoolObservation struct {
	Pool string
	// Series is the pool's aggregate history (any representative DC).
	Series []metrics.TickStat
	// Servers is the nominal server count across all datacenters.
	Servers int
	// Availability is the pool's mean server availability in [0, 1].
	Availability float64
}

// SummarizeSavings computes a Table IV row per pool: fit the workload
// models, find the largest reduction whose forecast latency stays within
// the budget above the current p95 operating point, and add the savings
// from lifting availability to best practice.
func SummarizeSavings(obs []PoolObservation, cfg SavingsConfig) ([]SavingsRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]SavingsRow, 0, len(obs))
	for _, o := range obs {
		if o.Servers <= 0 {
			return nil, fmt.Errorf("optimize: pool %s has %d servers", o.Pool, o.Servers)
		}
		model, err := FitPoolModel(o.Series)
		if err != nil {
			return nil, fmt.Errorf("optimize: pool %s: %w", o.Pool, err)
		}
		// Reference operating point: p95 of per-server load and the
		// latency there.
		var loads, totals []float64
		for _, t := range o.Series {
			if t.Servers == 0 {
				continue
			}
			loads = append(loads, t.RPSPerServer)
			totals = append(totals, t.TotalRPS)
		}
		refLoad := stats.Percentile(loads, 95)
		refTotal := stats.Percentile(totals, 95)
		baseLat := model.Latency.Predict(refLoad)
		qosLimit := baseLat + cfg.LatencyBudgetMs

		// Effective current server count at the p95 point (the series may
		// span maintenance dips); derive from total/perserver.
		current := int(refTotal/refLoad + 0.5)
		if current <= 0 {
			current = 1
		}
		minServers, frac, err := model.MaxReduction(refTotal, current, qosLimit)
		if err != nil {
			return nil, fmt.Errorf("optimize: pool %s: %w", o.Pool, err)
		}
		if frac > cfg.MaxReductionFrac {
			frac = cfg.MaxReductionFrac
			minServers = int(float64(current)*(1-frac) + 0.5)
		}
		fc, err := model.ForecastReduction(refTotal, current, minServers)
		if err != nil {
			return nil, fmt.Errorf("optimize: pool %s: %w", o.Pool, err)
		}
		latImpact := fc.LatencyMs - baseLat
		if latImpact < 0 {
			latImpact = 0
		}

		online := 0.0
		if o.Availability > 0 && o.Availability < BestPracticeAvailability {
			// A pool at availability a needs 1/a the capacity a pool at
			// best practice needs; the difference is recoverable.
			online = 1 - o.Availability/BestPracticeAvailability
		}
		row := SavingsRow{
			Pool:              o.Pool,
			EfficiencySavings: frac,
			LatencyImpactMs:   latImpact,
			OnlineSavings:     online,
			Servers:           o.Servers,
		}
		// Savings compose: first remove headroom, then recover the
		// availability tax on what remains.
		row.TotalSavings = 1 - (1-row.EfficiencySavings)*(1-row.OnlineSavings)
		rows = append(rows, row)
	}
	return rows, nil
}

// WeightedTotals returns the server-weighted mean efficiency, online and
// total savings plus the mean latency impact — the summary line of
// Table IV.
func WeightedTotals(rows []SavingsRow) (efficiency, latencyMs, online, total float64, err error) {
	if len(rows) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("optimize: no savings rows")
	}
	var wsum float64
	for _, r := range rows {
		w := float64(r.Servers)
		wsum += w
		efficiency += w * r.EfficiencySavings
		online += w * r.OnlineSavings
		total += w * r.TotalSavings
		latencyMs += r.LatencyImpactMs
	}
	if wsum == 0 {
		return 0, 0, 0, 0, fmt.Errorf("optimize: zero total servers")
	}
	return efficiency / wsum, latencyMs / float64(len(rows)), online / wsum, total / wsum, nil
}
