package server

// End-to-end distributed scale-out tests: an in-process cluster of capserved
// workers behind httptest, driven through the real HTTP surface. The
// acceptance criteria live here — byte-identity with single-node results,
// reroute on worker loss, partial-result degradation naming exactly the
// lost pools, remote shard spans in traces, and no goroutine leaks.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"headroom/internal/dist"
	"headroom/internal/faults"
	"headroom/internal/jobs"
	"headroom/internal/leakcheck"
	"headroom/internal/obs"
)

const e2eToken = "dist-e2e-token"

// distWorker is one worker node of a test cluster.
type distWorker struct {
	srv *Server
	ts  *httptest.Server
}

// newDistWorkers starts n capserved workers serving the internal shard
// endpoint, each with its own tracer so remote shard spans can be asserted
// per node.
func newDistWorkers(t testing.TB, n int, mutate func(i int, cfg *Config)) []distWorker {
	t.Helper()
	workers := make([]distWorker, n)
	for i := range workers {
		cfg := Config{
			Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute,
			DistToken: e2eToken,
			Tracer:    obs.NewTracer(64),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := New(cfg)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			srv.Shutdown(context.Background())
		})
		workers[i] = distWorker{srv: srv, ts: ts}
	}
	return workers
}

// newCoordinator starts a coordinator distributing to the given workers.
func newCoordinator(t testing.TB, workers []distWorker, mutate func(cfg *Config)) (*Server, *httptest.Server) {
	t.Helper()
	peers := make([]string, len(workers))
	for i, w := range workers {
		peers[i] = w.ts.URL
	}
	cfg := Config{
		Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute,
		Shards: 4, Peers: peers, DistToken: e2eToken,
		HedgeAfter: -1, // deterministic dispatch counts; hedging is unit-tested
		Tracer:     obs.NewTracer(64),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})
	return srv, ts
}

// submitWait posts a job with ?wait=true and returns the terminal job view.
func submitWait(t testing.TB, base, path, body string) (int, jobView) {
	t.Helper()
	code, raw := postJSON(t, base+path+"?wait=true", body)
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("unmarshal job view (%d: %s): %v", code, raw, err)
	}
	return code, v
}

// TestDistClusterByteIdentical is the headline acceptance test: a plan job
// distributed across a 3-worker cluster returns byte-for-byte the result a
// single-node server computes, the job status names the coordinator node
// and a worker per shard, and both sides' traces carry the shard spans.
func TestDistClusterByteIdentical(t *testing.T) {
	leakcheck.Check(t)
	const reqBody = `{"pools":["A","B","C","D"],"days":1,"seed":3}`

	// Single-node reference, same shard count.
	single := New(Config{Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute, Shards: 4})
	singleTS := httptest.NewServer(single.Handler())
	t.Cleanup(func() {
		singleTS.Close()
		single.Shutdown(context.Background())
	})
	code, want := submitWait(t, singleTS.URL, "/v1/plan", reqBody)
	if code != http.StatusOK || want.State != jobs.Done {
		t.Fatalf("single-node plan = %d state %s: %s", code, want.State, want.Error)
	}

	workers := newDistWorkers(t, 3, nil)
	_, coordTS := newCoordinator(t, workers, nil)
	code, got := submitWait(t, coordTS.URL, "/v1/plan", reqBody)
	if code != http.StatusOK || got.State != jobs.Done {
		t.Fatalf("distributed plan = %d state %s: %s", code, got.State, got.Error)
	}

	if !bytes.Equal(got.Result, want.Result) {
		t.Errorf("distributed result differs from single-node:\n dist:   %s\n single: %s", got.Result, want.Result)
	}

	// Job status provenance: the coordinator's hostname and one placement
	// entry per shard, each naming a real worker.
	if got.Node == "" {
		t.Error("job view missing node")
	}
	if len(got.Placement) != 4 {
		t.Fatalf("placement entries = %d, want one per shard: %+v", len(got.Placement), got.Placement)
	}
	workerURLs := map[string]bool{}
	for _, w := range workers {
		workerURLs[w.ts.URL] = true
	}
	seenShards := map[int]bool{}
	for _, p := range got.Placement {
		if !workerURLs[p.AssignedWorker] {
			t.Errorf("shard %d assigned to unknown worker %q", p.Shard, p.AssignedWorker)
		}
		if len(p.Pools) == 0 {
			t.Errorf("shard %d placement missing pools", p.Shard)
		}
		seenShards[p.Shard] = true
	}
	if len(seenShards) != 4 {
		t.Errorf("placement covers shards %v, want 0-3", seenShards)
	}

	// Coordinator trace: one remote dispatch span per shard, each naming
	// the worker that answered.
	td := fetchTrace(t, coordTS.URL, got.TraceID)
	var dispatch []spanJSON
	for _, sd := range td.Spans {
		if sd.Name == "dist.shard" {
			dispatch = append(dispatch, sd)
		}
	}
	if len(dispatch) != 4 {
		t.Fatalf("dist.shard spans = %d, want one per shard (have %v)", len(dispatch), spanNames(td.Spans))
	}
	for _, sd := range dispatch {
		if w, _ := sd.Attrs["worker"].(string); !workerURLs[w] {
			t.Errorf("dist.shard span worker = %v, want a cluster worker", sd.Attrs["worker"])
		}
	}

	// Worker traces: across the cluster, exactly one dist.shard.serve span
	// per shard, each tagged with the coordinator's trace id.
	served := 0
	for _, w := range workers {
		for _, tr := range w.srv.Tracer().Traces() {
			for _, sd := range tr.Spans {
				if sd.Name != "dist.shard.serve" {
					continue
				}
				served++
				attrs := sd.Attrs.Map()
				if attrs["coordinator_trace_id"] != got.TraceID {
					t.Errorf("worker shard span coordinator_trace_id = %v, want %s",
						attrs["coordinator_trace_id"], got.TraceID)
				}
			}
		}
	}
	if served != 4 {
		t.Errorf("dist.shard.serve spans across workers = %d, want 4", served)
	}
}

// TestDistWorkerLossReroutes kills one worker and verifies the job still
// completes with the full, byte-identical result: every shard the dead
// worker owned reroutes to its fallback.
func TestDistWorkerLossReroutes(t *testing.T) {
	leakcheck.Check(t)
	const reqBody = `{"pools":["A","B","C","D"],"days":1,"seed":5}`

	single := New(Config{Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute, Shards: 4})
	singleTS := httptest.NewServer(single.Handler())
	t.Cleanup(func() {
		singleTS.Close()
		single.Shutdown(context.Background())
	})
	_, want := submitWait(t, singleTS.URL, "/v1/simulate", reqBody)
	if want.State != jobs.Done {
		t.Fatalf("single-node simulate failed: %s", want.Error)
	}

	workers := newDistWorkers(t, 3, nil)
	coord, coordTS := newCoordinator(t, workers, nil)

	// Kill one worker before the job: its shards' dispatches fail at
	// connect and must reroute to the next-ranked worker.
	workers[1].ts.Close()

	code, got := submitWait(t, coordTS.URL, "/v1/simulate", reqBody)
	if code != http.StatusOK || got.State != jobs.Done {
		t.Fatalf("simulate with dead worker = %d state %s: %s", code, got.State, got.Error)
	}
	if !bytes.Equal(got.Result, want.Result) {
		t.Errorf("rerouted result differs from single-node:\n dist:   %s\n single: %s", got.Result, want.Result)
	}
	for _, p := range got.Placement {
		if p.AssignedWorker == workers[1].ts.URL {
			t.Errorf("shard %d reported as served by the dead worker", p.Shard)
		}
	}
	if open, total := coord.DistStats(); total != 3 {
		t.Errorf("DistStats total = %d, want 3 (open %d)", total, open)
	}
}

// TestDistPartialDegraded injects a permanent fault for pool B on every
// worker: with partial results enabled the distributed job must degrade,
// naming exactly the lost pool, and the degraded result must never be
// cached.
func TestDistPartialDegraded(t *testing.T) {
	leakcheck.Check(t)
	workers := newDistWorkers(t, 3, func(i int, cfg *Config) {
		cfg.Faults = faults.New(1,
			faults.Rule{Kind: faults.Permanent, Pools: []string{"B"}, At: []int{0}, Msg: "injected outage"})
	})
	coord, coordTS := newCoordinator(t, workers, func(cfg *Config) {
		cfg.PartialResults = true
	})

	code, got := submitWait(t, coordTS.URL, "/v1/simulate", `{"pools":["A","B","C","D"],"days":1}`)
	if code != http.StatusOK || got.State != jobs.Done {
		t.Fatalf("degraded simulate = %d state %s: %s", code, got.State, got.Error)
	}
	var res SimulateResult
	if err := json.Unmarshal(got.Result, &res); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded")
	}
	if len(res.FailedPools) != 1 || res.FailedPools[0] != "B" {
		t.Errorf("failed_pools = %v, want exactly [B]", res.FailedPools)
	}
	for _, p := range res.Pools {
		if p.Pool == "B" {
			t.Errorf("degraded result still contains failed pool B")
		}
	}
	pools := map[string]bool{}
	for _, p := range res.Pools {
		pools[p.Pool] = true
	}
	for _, p := range []string{"A", "C", "D"} {
		if !pools[p] {
			t.Errorf("degraded result missing surviving pool %s", p)
		}
	}
	if st := coord.CacheStats(); st.Uncacheable == 0 {
		t.Error("degraded distributed result was not marked uncacheable")
	}
}

// TestDistAllShardsFailedNoPartial: with partial results off, a permanent
// shard failure fails the whole job (422 on wait), mirroring single-node
// semantics.
func TestDistPermanentFailureFailsJob(t *testing.T) {
	leakcheck.Check(t)
	workers := newDistWorkers(t, 2, func(i int, cfg *Config) {
		cfg.Faults = faults.New(1,
			faults.Rule{Kind: faults.Permanent, Pools: []string{"B"}, At: []int{0}})
	})
	_, coordTS := newCoordinator(t, workers, nil)
	code, got := submitWait(t, coordTS.URL, "/v1/simulate", `{"pools":["A","B"],"days":1}`)
	if code != http.StatusUnprocessableEntity || got.State != jobs.Failed {
		t.Fatalf("simulate = %d state %s, want 422/failed", code, got.State)
	}
	if !strings.Contains(got.Error, "injected") && !strings.Contains(got.Error, "shard") {
		t.Errorf("job error does not surface the shard failure: %s", got.Error)
	}
}

// TestDistReadyzDegraded drives every peer's breaker open (all dispatches
// fail against dead addresses) and asserts /readyz flips to degraded once
// more than half the fleet is unavailable.
func TestDistReadyzDegraded(t *testing.T) {
	leakcheck.Check(t)
	// Two peers that refuse connections: every dispatch fails fast, and
	// the per-worker breakers (threshold 3) open within one 4-shard job.
	srv := New(Config{
		Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: 30 * time.Second,
		Shards: 4, HedgeAfter: -1, ShardTimeout: 5 * time.Second,
		Peers:     []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
		DistToken: e2eToken,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})

	if code, body := getJSON(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before any dispatch = %d: %s", code, body)
	}

	code, got := submitWait(t, ts.URL, "/v1/simulate", `{"pools":["A","B","C","D"],"days":1}`)
	if got.State != jobs.Failed {
		t.Fatalf("simulate against dead fleet = %d state %s, want failure", code, got.State)
	}
	open, total := srv.DistStats()
	if total != 2 || open != 2 {
		t.Fatalf("DistStats = %d/%d open, want 2/2 after repeated connect failures", open, total)
	}

	code, body := getJSON(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open fleet = %d: %s", code, body)
	}
	var rz struct {
		Status    string `json:"status"`
		PeersOpen int    `json:"peers_open"`
		Peers     int    `json:"peers"`
	}
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatalf("unmarshal readyz: %v", err)
	}
	if rz.Status != "degraded" || rz.PeersOpen != 2 || rz.Peers != 2 {
		t.Errorf("readyz = %+v, want degraded 2/2", rz)
	}
}

// TestDistInternalShardAuth: the internal endpoint rejects missing or wrong
// tokens and is absent entirely on nodes without a DistToken.
func TestDistInternalShardAuth(t *testing.T) {
	leakcheck.Check(t)
	workers := newDistWorkers(t, 1, nil)
	url := workers[0].ts.URL + dist.DefaultPath
	body := `{"days":1,"seed":1,"pools":["B"],"shard":0,"of":1}`

	for name, token := range map[string]string{"missing": "", "wrong": "not-the-token"} {
		req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
		if token != "" {
			req.Header.Set(dist.TokenHeader, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s token: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s token = %d, want 403", name, resp.StatusCode)
		}
	}

	// Correct token: the worker computes the shard and returns a decodable
	// aggregate.
	req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set(dist.TokenHeader, e2eToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid shard request = %d", resp.StatusCode)
	}
	var sr shardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode shard response: %v", err)
	}
	if sr.Records == 0 || len(sr.Agg) == 0 || sr.Node == "" {
		t.Errorf("shard response = %+v, want records, agg bytes and node", sr)
	}

	// A node without DistToken must not serve the endpoint at all.
	bare := New(Config{Workers: 1, QueueDepth: 4, CacheSize: 4, JobTimeout: time.Minute})
	bareTS := httptest.NewServer(bare.Handler())
	t.Cleanup(func() {
		bareTS.Close()
		bare.Shutdown(context.Background())
	})
	code, _ := postJSON(t, bareTS.URL+dist.DefaultPath, body)
	if code != http.StatusNotFound {
		t.Errorf("shard endpoint on tokenless node = %d, want 404", code)
	}
}

// TestDistMetricsExposed asserts the capserved_dist_* inventory appears on
// the coordinator's /metrics after a distributed job.
func TestDistMetricsExposed(t *testing.T) {
	leakcheck.Check(t)
	workers := newDistWorkers(t, 2, nil)
	_, coordTS := newCoordinator(t, workers, nil)
	if _, got := submitWait(t, coordTS.URL, "/v1/simulate", `{"pools":["A","B"],"days":1}`); got.State != jobs.Done {
		t.Fatalf("simulate failed: %s", got.Error)
	}
	_, body := getJSON(t, coordTS.URL+"/metrics")
	text := string(body)
	for _, family := range []string{
		"capserved_dist_shards_dispatched_total",
		"capserved_dist_shard_failures_total",
		"capserved_dist_shard_latency_seconds",
		"capserved_dist_reroutes_total",
		"capserved_dist_hedges_total",
		"capserved_dist_hedge_wins_total",
		"capserved_dist_breaker_skips_total",
		"capserved_dist_shards_exhausted_total",
		"capserved_dist_breaker_transitions_total",
		"capserved_dist_peers",
		"capserved_dist_peers_open",
		"capserved_dist_worker_breaker_state",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	// At least one dispatch happened.
	if !strings.Contains(text, `capserved_dist_shards_dispatched_total{peer="`) {
		t.Error("no per-peer dispatch counter rendered")
	}
	var dispatched float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "capserved_dist_shards_dispatched_total{") {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err == nil {
				dispatched += v
			}
		}
	}
	if dispatched < 1 {
		t.Errorf("total dispatched = %g, want >= 1", dispatched)
	}
}
