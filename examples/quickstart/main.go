// Quickstart: simulate two micro-service pools of a global online service
// for a day, run the black-box capacity-planning pipeline over the observed
// traces, and print the right-sizing recommendation for every pool in every
// datacenter.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"headroom"
)

func main() {
	ctx := context.Background()

	// The paper's two reduction-experiment subjects: pool B (query
	// modification) and pool D (traffic routing / page rendering).
	fleet := headroom.FleetConfig{
		DCs:               headroom.NineRegions(),
		Pools:             []headroom.PoolConfig{headroom.PoolB(), headroom.PoolD()},
		WorkloadNoiseFrac: 0.03,
		Seed:              1,
	}

	// The session carries the shared pipeline configuration: the fleet to
	// measure and the latency budget the planner may spend.
	s, err := headroom.New(ctx,
		headroom.WithFleet(fleet),
		headroom.WithPlanConfig(headroom.PlanConfig{LatencyBudgetMs: 5, Seed: 2}),
	)
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	// Step 0: collect a day of 120-second observation windows. The planner
	// sees only these records, never the simulator's ground truth.
	// Aggregation shards per pool across CPUs; results are identical to a
	// sequential pass.
	agg, err := s.Simulate(ctx, 1)
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}

	// Steps 1-2: validate metrics, group servers, fit workload models, and
	// right-size every pool within the 5 ms latency budget.
	plans, err := s.Plan(ctx, agg)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}

	fmt.Println("pool  dc     current -> target   savings  forecast latency")
	var cur, next int
	for _, p := range plans {
		if !p.Plannable {
			fmt.Printf("%-5s %-6s skipped: %s\n", p.Pool, p.DC, p.Reason)
			continue
		}
		cur += p.CurrentServers
		next += p.RecommendedServers
		fmt.Printf("%-5s %-6s %4d    -> %4d     %5.1f%%  %.1f ms (from %.1f ms)\n",
			p.Pool, p.DC, p.CurrentServers, p.RecommendedServers,
			100*p.SavingsFrac, p.ForecastLatencyMs, p.BaselineLatencyMs)
	}
	fmt.Printf("\nfleet: %d -> %d servers (%.0f%% savings), QoS impact within budget\n",
		cur, next, 100*(1-float64(next)/float64(cur)))
}
