package server

// Request decoding, validation, canonicalization and the compute functions
// that drive the headroom.Session pipeline. Every compute function returns
// its result pre-marshalled (json.RawMessage) so cached results are served
// byte-identical to the first computation.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"headroom"
	"headroom/internal/jobcache"
	"headroom/internal/jobs"
)

// maxDays bounds a single simulation job; longer horizons should be split
// into multiple jobs.
const maxDays = 30

// computeFunc produces a job result (a json.RawMessage).
type computeFunc func(ctx context.Context) (any, error)

// buildJob decodes and validates the request body for kind and returns the
// compute function plus the canonicalized request used as the cache key.
func (s *Server) buildJob(kind string, body []byte) (computeFunc, any, error) {
	switch kind {
	case "simulate":
		req, err := decodeSimulate(body)
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context) (any, error) { return s.computeSimulate(ctx, req) }, req, nil
	case "plan":
		req, err := decodePlan(body)
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context) (any, error) { return s.computePlan(ctx, req) }, req, nil
	case "validate":
		req, err := decodeValidate(body)
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context) (any, error) { return s.computeValidate(ctx, req) }, req, nil
	case "forecast":
		req, err := decodeForecast(body)
		if err != nil {
			return nil, nil, err
		}
		return func(ctx context.Context) (any, error) { return s.computeForecast(ctx, req) }, req, nil
	default:
		return nil, nil, fmt.Errorf("unknown job kind %q", kind)
	}
}

// decode unmarshals strictly: unknown fields are rejected so a typoed
// option fails loudly instead of silently planning the wrong scenario.
func decode(body []byte, into any) error {
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decode request: trailing data after JSON object")
	}
	return nil
}

// --- simulate ------------------------------------------------------------

// SimulateRequest parameterizes a fleet-simulation job. The fleet is the
// paper-shaped default fleet for the given seed, optionally filtered to
// named pools.
type SimulateRequest struct {
	// Days is the simulation horizon; default 1, max 30.
	Days int `json:"days"`
	// Seed drives the fleet deterministically; default 1.
	Seed int64 `json:"seed"`
	// Pools filters the fleet to the named pools (sorted and deduplicated
	// during canonicalization); empty keeps the whole fleet.
	Pools []string `json:"pools,omitempty"`
}

func decodeSimulate(body []byte) (SimulateRequest, error) {
	var req SimulateRequest
	if err := decode(body, &req); err != nil {
		return req, err
	}
	if err := req.Normalize(); err != nil {
		return req, err
	}
	// Resolve the fleet now so unknown pool names fail the submission (400)
	// instead of the job.
	_, err := req.Fleet()
	return req, err
}

func (r *SimulateRequest) Normalize() error {
	if r.Days == 0 {
		r.Days = 1
	}
	if r.Days < 0 || r.Days > maxDays {
		return fmt.Errorf("days must be in [1, %d], got %d", maxDays, r.Days)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if len(r.Pools) > 0 {
		seen := map[string]bool{}
		kept := r.Pools[:0]
		for _, p := range r.Pools {
			p = strings.TrimSpace(p)
			if p == "" {
				return fmt.Errorf("pools contains an empty name")
			}
			if !seen[p] {
				seen[p] = true
				kept = append(kept, p)
			}
		}
		sort.Strings(kept)
		r.Pools = kept
	}
	return nil
}

// fleet resolves the request's fleet configuration, failing on unknown pool
// names.
func (r SimulateRequest) Fleet() (headroom.FleetConfig, error) {
	cfg := headroom.DefaultFleet(r.Seed)
	if len(r.Pools) == 0 {
		return cfg, nil
	}
	keep := map[string]bool{}
	for _, p := range r.Pools {
		keep[p] = true
	}
	var filtered []headroom.PoolConfig
	for _, pc := range cfg.Pools {
		if keep[pc.Name] {
			filtered = append(filtered, pc)
			delete(keep, pc.Name)
		}
	}
	if len(keep) > 0 {
		missing := make([]string, 0, len(keep))
		for p := range keep {
			missing = append(missing, p)
		}
		sort.Strings(missing)
		return cfg, fmt.Errorf("unknown pools: %s", strings.Join(missing, ", "))
	}
	cfg.Pools = filtered
	return cfg, nil
}

// ShardFailure is the wire view of one failed shard of a degraded job.
type ShardFailure struct {
	// Shard is the failed shard's index in the aggregation fan-out.
	Shard int `json:"shard"`
	// Pools are the pool names the shard carried.
	Pools []string `json:"pools,omitempty"`
	// Error is the shard's failure.
	Error string `json:"error"`
}

func shardFailures(pe *headroom.PartialError) []ShardFailure {
	out := make([]ShardFailure, len(pe.Failed))
	for i, f := range pe.Failed {
		out[i] = ShardFailure{Shard: f.Shard, Pools: f.Pools, Error: f.Err.Error()}
	}
	return out
}

// PoolSummary condenses one (pool, datacenter) series for the wire.
type PoolSummary struct {
	Pool             string  `json:"pool"`
	DC               string  `json:"dc"`
	Windows          int     `json:"windows"`
	Servers          int     `json:"servers"`
	MeanRPSPerServer float64 `json:"mean_rps_per_server"`
	MeanCPUPct       float64 `json:"mean_cpu_pct"`
	MeanLatencyMs    float64 `json:"mean_latency_ms"`
	PeakLatencyMs    float64 `json:"peak_latency_ms"`
}

// SimulateResult is the wire result of a simulation job.
type SimulateResult struct {
	Days         int           `json:"days"`
	Seed         int64         `json:"seed"`
	PoolDCs      int           `json:"pool_dcs"`
	TotalWindows int           `json:"total_windows"`
	Pools        []PoolSummary `json:"pools"`
	// Degraded marks a partial result: some pools failed and are absent
	// from Pools. Degraded results are never cached.
	Degraded bool `json:"degraded,omitempty"`
	// FailedPools is the sorted union of pool names that failed.
	FailedPools []string `json:"failed_pools,omitempty"`
	// Failures details each failed shard.
	Failures []ShardFailure `json:"failures,omitempty"`
}

// simulateAggregate streams the request's fleet through the session layer
// and returns the aggregate. The source is wrapped, innermost first, with
// the chaos fault injector (Config.Faults) and the resilience layer
// (Config.RetryAttempts); with Config.PartialResults the aggregation
// tolerates failed pools and the returned *PartialError lists them
// (degraded result). Transient errors that escape the resilience layer are
// re-marked for the job queue so the job itself is retried.
func (s *Server) simulateAggregate(ctx context.Context, req SimulateRequest, plan *headroom.PlanConfig) (*headroom.Aggregator, *headroom.PartialError, error) {
	if s.dist != nil {
		// Distributed scale-out: shards run on the peer fleet (which applies
		// its own fault injection and resilience) and merge here, byte-
		// identical to the local computation below.
		return s.distSimulateAggregate(ctx, req)
	}
	cfg, err := req.Fleet()
	if err != nil {
		return nil, nil, err
	}
	src := s.wrapSource(headroom.NewSimSource(cfg, req.Days), req.Seed)
	opts := []headroom.Option{
		headroom.WithSource(src),
		headroom.WithShards(s.cfg.Shards),
		headroom.WithPartialResults(s.cfg.PartialResults),
	}
	if plan != nil {
		opts = append(opts, headroom.WithPlanConfig(*plan))
	}
	sess, err := headroom.New(context.Background(), opts...)
	if err != nil {
		return nil, nil, err
	}
	agg, err := sess.Simulate(ctx, 0)
	var pe *headroom.PartialError
	if errors.As(err, &pe) && agg != nil {
		return agg, pe, nil
	}
	if err != nil {
		if headroom.IsTransient(err) {
			// Retries inside the source exhausted; let the job queue retry
			// the whole computation.
			err = jobs.Transient(err)
		}
		return nil, nil, err
	}
	return agg, nil, nil
}

// planSession builds the session used by Plan over an already-computed
// aggregate.
func (s *Server) planSession(plan headroom.PlanConfig) (*headroom.Session, error) {
	return headroom.New(context.Background(), headroom.WithPlanConfig(plan))
}

// BuildSimulateResult condenses an aggregate into the wire result for req.
// It is the single summary builder for every execution path — sequential,
// sharded, distributed and cache-served — so equal aggregates always render
// to equal results (the differential harness in internal/diffcheck depends
// on this being the only implementation).
func BuildSimulateResult(req SimulateRequest, agg *headroom.Aggregator, pe *headroom.PartialError) (SimulateResult, error) {
	res := SimulateResult{Days: req.Days, Seed: req.Seed}
	for _, key := range agg.Pools() {
		series, err := agg.PoolSeries(key.DC, key.Pool)
		if err != nil {
			return res, err
		}
		sum := PoolSummary{Pool: key.Pool, DC: key.DC, Windows: len(series)}
		for _, ts := range series {
			if ts.Servers > sum.Servers {
				sum.Servers = ts.Servers
			}
			sum.MeanRPSPerServer += ts.RPSPerServer
			sum.MeanCPUPct += ts.CPUMean
			sum.MeanLatencyMs += ts.LatencyMean
			if ts.LatencyMean > sum.PeakLatencyMs {
				sum.PeakLatencyMs = ts.LatencyMean
			}
		}
		if n := float64(len(series)); n > 0 {
			sum.MeanRPSPerServer /= n
			sum.MeanCPUPct /= n
			sum.MeanLatencyMs /= n
		}
		res.TotalWindows += sum.Windows
		res.Pools = append(res.Pools, sum)
	}
	res.PoolDCs = len(res.Pools)
	if pe != nil {
		res.Degraded = true
		res.FailedPools = pe.FailedPools()
		res.Failures = shardFailures(pe)
	}
	return res, nil
}

func (s *Server) computeSimulate(ctx context.Context, req SimulateRequest) (any, error) {
	agg, pe, err := s.simulateAggregate(ctx, req, nil)
	if err != nil {
		return nil, err
	}
	res, err := BuildSimulateResult(req, agg, pe)
	if err != nil {
		return nil, err
	}
	return s.finishResult(ctx, "simulate", res, pe)
}

// finishResult pre-renders a job result, marking degraded (partial) results
// uncacheable so a later identical request recomputes instead of being
// served a partial answer as if it were complete.
func (s *Server) finishResult(ctx context.Context, kind string, v any, pe *headroom.PartialError) (any, error) {
	raw, err := marshalResult(v)
	if err != nil {
		return nil, err
	}
	if pe == nil {
		return raw, nil
	}
	if c, ok := s.m.degraded[kind]; ok {
		c.Inc()
	}
	s.cfg.Logger.WarnContext(ctx, "degraded result",
		"kind", kind, "failed_pools", pe.FailedPools(), "error", pe.Error())
	return jobcache.Uncacheable{Value: raw}, nil
}

// --- plan ----------------------------------------------------------------

// PlanRequest parameterizes a simulate+plan job.
type PlanRequest struct {
	SimulateRequest
	// LatencyBudgetMs is the acceptable latency increase; default 5.
	LatencyBudgetMs float64 `json:"latency_budget_ms,omitempty"`
	// PlanSeed drives clustering and robust fits; default 2.
	PlanSeed int64 `json:"plan_seed,omitempty"`
	// MaxGroups bounds server-group detection per pool (default 4).
	MaxGroups int `json:"max_groups,omitempty"`
	// MaxReductionFrac caps per-pool savings (default 1/3).
	MaxReductionFrac float64 `json:"max_reduction_frac,omitempty"`
}

func decodePlan(body []byte) (PlanRequest, error) {
	var req PlanRequest
	if err := decode(body, &req); err != nil {
		return req, err
	}
	if err := req.SimulateRequest.Normalize(); err != nil {
		return req, err
	}
	if _, err := req.Fleet(); err != nil {
		return req, err
	}
	if req.LatencyBudgetMs < 0 {
		return req, fmt.Errorf("latency_budget_ms must be >= 0, got %v", req.LatencyBudgetMs)
	}
	if req.LatencyBudgetMs == 0 {
		req.LatencyBudgetMs = 5
	}
	if req.PlanSeed == 0 {
		req.PlanSeed = 2
	}
	if req.MaxGroups < 0 {
		return req, fmt.Errorf("max_groups must be >= 0, got %d", req.MaxGroups)
	}
	if req.MaxReductionFrac < 0 || req.MaxReductionFrac > 1 {
		return req, fmt.Errorf("max_reduction_frac must be in [0, 1], got %v", req.MaxReductionFrac)
	}
	return req, nil
}

// PlanResult is the wire result of a planning job.
type PlanResult struct {
	Days               int                 `json:"days"`
	Seed               int64               `json:"seed"`
	LatencyBudgetMs    float64             `json:"latency_budget_ms"`
	Plans              []headroom.PoolPlan `json:"plans"`
	CurrentServers     int                 `json:"current_servers"`
	RecommendedServers int                 `json:"recommended_servers"`
	SavingsFrac        float64             `json:"savings_frac"`
	// Degraded marks a partial result: some pools failed to simulate and
	// were planned around. Degraded results are never cached.
	Degraded bool `json:"degraded,omitempty"`
	// FailedPools is the sorted union of pool names that failed.
	FailedPools []string `json:"failed_pools,omitempty"`
	// Failures details each failed shard.
	Failures []ShardFailure `json:"failures,omitempty"`
}

// PlanConfig resolves the request's planner configuration; the one mapping
// every execution path shares.
func (r PlanRequest) PlanConfig() headroom.PlanConfig {
	return headroom.PlanConfig{
		LatencyBudgetMs:  r.LatencyBudgetMs,
		Seed:             r.PlanSeed,
		MaxGroups:        r.MaxGroups,
		MaxReductionFrac: r.MaxReductionFrac,
	}
}

// BuildPlanResult assembles the wire result for a plan request from the
// planner's output. Like BuildSimulateResult, it is shared by every
// execution path so equal plans render to equal results.
func BuildPlanResult(req PlanRequest, plans []headroom.PoolPlan, pe *headroom.PartialError) PlanResult {
	res := PlanResult{
		Days:            req.Days,
		Seed:            req.Seed,
		LatencyBudgetMs: req.LatencyBudgetMs,
		Plans:           plans,
	}
	for _, p := range plans {
		if !p.Plannable {
			continue
		}
		res.CurrentServers += p.CurrentServers
		res.RecommendedServers += p.RecommendedServers
	}
	if res.CurrentServers > 0 {
		res.SavingsFrac = 1 - float64(res.RecommendedServers)/float64(res.CurrentServers)
	}
	if pe != nil {
		res.Degraded = true
		res.FailedPools = pe.FailedPools()
		res.Failures = shardFailures(pe)
	}
	return res
}

func (s *Server) computePlan(ctx context.Context, req PlanRequest) (any, error) {
	planCfg := req.PlanConfig()
	agg, pe, err := s.simulateAggregate(ctx, req.SimulateRequest, &planCfg)
	if err != nil {
		return nil, err
	}
	sess, err := s.planSession(planCfg)
	if err != nil {
		return nil, err
	}
	plans, err := sess.Plan(ctx, agg)
	if err != nil {
		return nil, err
	}
	res := BuildPlanResult(req, plans, pe)
	return s.finishResult(ctx, "plan", res, pe)
}

// --- validate ------------------------------------------------------------

// ChangeSpec is a JSON-expressible candidate change: deltas applied to the
// pool's ground-truth response model, mirroring the offline build the paper
// validates before deployment.
type ChangeSpec struct {
	// Name labels the change in reports; default "change".
	Name string `json:"name,omitempty"`
	// LatencyDeltaMs shifts the latency curve's constant term.
	LatencyDeltaMs float64 `json:"latency_delta_ms,omitempty"`
	// CPUSlopeFrac scales the CPU-per-load slope by (1 + frac).
	CPUSlopeFrac float64 `json:"cpu_slope_frac,omitempty"`
	// MemPagesDelta shifts the baseline paging rate.
	MemPagesDelta float64 `json:"mem_pages_delta,omitempty"`
	// ErrorRateDelta shifts the error rate.
	ErrorRateDelta float64 `json:"error_rate_delta,omitempty"`
}

func (c ChangeSpec) change() headroom.Change {
	name := c.Name
	if name == "" {
		name = "change"
	}
	return headroom.Change{
		Name: name,
		Apply: func(rp headroom.ResponseParams) headroom.ResponseParams {
			rp.LatQuad[0] += c.LatencyDeltaMs
			rp.CPUSlope *= 1 + c.CPUSlopeFrac
			rp.MemPagesBase += c.MemPagesDelta
			rp.ErrorRate += c.ErrorRateDelta
			return rp
		},
	}
}

// ValidateRequest parameterizes an offline A/B validation job against a
// named pool of the default fleet.
type ValidateRequest struct {
	// Pool names the micro-service under test ("A" … "I"); required.
	Pool string `json:"pool"`
	// Servers sizes each of the two offline pools; default 10.
	Servers int `json:"servers,omitempty"`
	// Loads is the per-server RPS sweep, ascending; required.
	Loads []float64 `json:"loads"`
	// TicksPerLevel is how many windows each level runs; default 20.
	TicksPerLevel int `json:"ticks_per_level,omitempty"`
	// Seed drives both pools deterministically; default 1.
	Seed int64 `json:"seed,omitempty"`
	// LatencyTolMs and CPUTolPct bound the acceptable regression.
	LatencyTolMs float64 `json:"latency_tol_ms,omitempty"`
	CPUTolPct    float64 `json:"cpu_tol_pct,omitempty"`
	// Change is the candidate modification under test.
	Change ChangeSpec `json:"change"`
}

func decodeValidate(body []byte) (ValidateRequest, error) {
	var req ValidateRequest
	if err := decode(body, &req); err != nil {
		return req, err
	}
	if req.Pool == "" {
		return req, fmt.Errorf("pool is required")
	}
	if req.Servers == 0 {
		req.Servers = 10
	}
	if req.Servers < 1 {
		return req, fmt.Errorf("servers must be >= 1, got %d", req.Servers)
	}
	if len(req.Loads) == 0 {
		return req, fmt.Errorf("loads is required (ascending RPS/server sweep)")
	}
	for i, l := range req.Loads {
		if l <= 0 {
			return req, fmt.Errorf("loads[%d] must be positive, got %v", i, l)
		}
		if i > 0 && l <= req.Loads[i-1] {
			return req, fmt.Errorf("loads must be strictly ascending (loads[%d]=%v <= loads[%d]=%v)",
				i, l, i-1, req.Loads[i-1])
		}
	}
	if req.TicksPerLevel < 0 {
		return req, fmt.Errorf("ticks_per_level must be >= 0, got %d", req.TicksPerLevel)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	// Resolve the pool now so unknown names fail the submission (400)
	// instead of the job.
	if _, err := headroom.NamedPool(headroom.DefaultFleet(req.Seed), req.Pool); err != nil {
		return req, err
	}
	return req, nil
}

// ValidateResult is the wire result of a validation job.
type ValidateResult struct {
	Pool   string                  `json:"pool"`
	Report headroom.ValidateReport `json:"report"`
}

func (s *Server) computeValidate(ctx context.Context, req ValidateRequest) (any, error) {
	pool, err := headroom.NamedPool(headroom.DefaultFleet(req.Seed), req.Pool)
	if err != nil {
		return nil, err
	}
	sess, err := headroom.New(context.Background())
	if err != nil {
		return nil, err
	}
	rep, err := sess.Validate(ctx, headroom.ValidateConfig{
		Pool:          pool,
		Servers:       req.Servers,
		Loads:         req.Loads,
		TicksPerLevel: req.TicksPerLevel,
		LatencyTolMs:  req.LatencyTolMs,
		CPUTolPct:     req.CPUTolPct,
		Seed:          req.Seed,
	}, req.Change.change())
	if err != nil {
		return nil, err
	}
	return marshalResult(ValidateResult{Pool: req.Pool, Report: rep})
}

// --- forecast ------------------------------------------------------------

// ForecastRequest parameterizes a workload-forecast job.
type ForecastRequest struct {
	// Series is the offered-load series, one sample per tick; required,
	// at least two days long.
	Series []float64 `json:"series"`
	// TicksPerDay is the series' sampling density; required.
	TicksPerDay int `json:"ticks_per_day"`
	// HorizonDays, when positive, adds a peak-load projection that many
	// days ahead.
	HorizonDays int `json:"horizon_days,omitempty"`
}

func decodeForecast(body []byte) (ForecastRequest, error) {
	var req ForecastRequest
	if err := decode(body, &req); err != nil {
		return req, err
	}
	if req.TicksPerDay <= 0 {
		return req, fmt.Errorf("ticks_per_day must be positive, got %d", req.TicksPerDay)
	}
	if len(req.Series) < 2*req.TicksPerDay {
		return req, fmt.Errorf("series needs >= 2 days (%d ticks), got %d",
			2*req.TicksPerDay, len(req.Series))
	}
	if req.HorizonDays < 0 {
		return req, fmt.Errorf("horizon_days must be >= 0, got %d", req.HorizonDays)
	}
	return req, nil
}

// ForecastResult is the wire result of a forecast job.
type ForecastResult struct {
	Model        headroom.ForecastModel `json:"model"`
	GrowthPerDay float64                `json:"growth_per_day"`
	// PeakForecast is the projected peak load HorizonDays ahead (with a
	// 2-sigma headroom margin); present only when horizon_days was set.
	PeakForecast *float64 `json:"peak_forecast,omitempty"`
}

func (s *Server) computeForecast(ctx context.Context, req ForecastRequest) (any, error) {
	sess, err := headroom.New(context.Background())
	if err != nil {
		return nil, err
	}
	model, err := sess.Forecast(ctx, req.Series, req.TicksPerDay)
	if err != nil {
		return nil, err
	}
	res := ForecastResult{Model: model, GrowthPerDay: model.GrowthPerDay()}
	if req.HorizonDays > 0 {
		peak, err := model.PeakOverHorizon(len(req.Series), req.HorizonDays*req.TicksPerDay, 2)
		if err != nil {
			return nil, err
		}
		res.PeakForecast = &peak
	}
	return marshalResult(res)
}

// marshalResult pre-renders a job result so cached repeats are served
// byte-identical.
func marshalResult(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("marshal result: %w", err)
	}
	return json.RawMessage(b), nil
}
