// Package measure implements Step 1 of the capacity-planning methodology
// (§II-A of the paper): validating that workload metrics are accurate enough
// for planning, and identifying groups of servers with the same
// workload→resource response.
//
// Metric validation assumes a proper workload metric has a tight linear
// correlation with the limiting resource (CPU). A weak correlation means the
// metric is contaminated — by background workloads such as periodic log
// uploads — and must be refined until the linear relationship appears.
//
// Grouping inspects each server's (p5, p95) CPU scatter: clusters indicate
// sub-populations (e.g. hardware generations) that must be planned
// separately. A decision tree over percentile + regression features
// automates the "is this pool one predictable group?" decision at fleet
// scale.
package measure

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"headroom/internal/cluster"
	"headroom/internal/dtree"
	"headroom/internal/metrics"
	"headroom/internal/stats"
)

// DefaultLinearR2 is the R² above which a workload↔resource correlation is
// considered "tight linear" and the metric validated.
const DefaultLinearR2 = 0.9

// CounterCorrelation is the workload↔counter relationship for one resource
// counter, as plotted in the paper's Figure 2 panels.
type CounterCorrelation struct {
	// Counter names the resource ("cpu", "net_bytes", ...).
	Counter string
	// Fit is the OLS line of counter value against RPS/server.
	Fit stats.LinearFit
	// Pearson is the correlation coefficient (NaN when undefined).
	Pearson float64
	// Linear reports whether the fit clears the R² threshold.
	Linear bool
}

// ValidationReport is the outcome of workload-metric validation for one
// pool in one datacenter.
type ValidationReport struct {
	// Counters holds one correlation per resource counter, in a fixed
	// order (cpu, net_bytes, net_pkts, mem_pages, disk_queue, disk_read,
	// errors).
	Counters []CounterCorrelation
	// LimitingResource is the counter with the strongest linear
	// correlation with workload ("cpu" for every pool the paper studied).
	LimitingResource string
	// Valid reports whether the limiting resource correlates linearly,
	// i.e. the workload metric isolates the primary workload well enough
	// for capacity planning.
	Valid bool
	// Windows is the number of observation windows used.
	Windows int
}

// counterExtractors lists the Figure 2 counters in report order.
var counterExtractors = []struct {
	name string
	get  func(metrics.TickStat) float64
}{
	{"cpu", func(t metrics.TickStat) float64 { return t.CPUMean }},
	{"net_bytes", func(t metrics.TickStat) float64 { return t.NetBytes }},
	{"net_pkts", func(t metrics.TickStat) float64 { return t.NetPkts }},
	{"mem_pages", func(t metrics.TickStat) float64 { return t.MemPages }},
	{"disk_queue", func(t metrics.TickStat) float64 { return t.DiskQueue }},
	{"disk_read", func(t metrics.TickStat) float64 { return t.DiskRead }},
	{"errors", func(t metrics.TickStat) float64 { return t.Errors }},
}

// ValidateWorkloadMetric evaluates the workload metric of a pool against
// every resource counter. r2Threshold <= 0 selects DefaultLinearR2.
func ValidateWorkloadMetric(series []metrics.TickStat, r2Threshold float64) (ValidationReport, error) {
	if len(series) < 3 {
		return ValidationReport{}, fmt.Errorf("measure: need >= 3 windows, got %d", len(series))
	}
	if r2Threshold <= 0 {
		r2Threshold = DefaultLinearR2
	}
	xs := make([]float64, len(series))
	for i, t := range series {
		xs[i] = t.RPSPerServer
	}
	rep := ValidationReport{Windows: len(series)}
	bestR2 := math.Inf(-1)
	for _, ce := range counterExtractors {
		ys := make([]float64, len(series))
		for i, t := range series {
			ys[i] = ce.get(t)
		}
		cc := CounterCorrelation{Counter: ce.name, Pearson: math.NaN()}
		// Constant counters (error and queue counters are "static in the
		// steady-state", per the paper) are anomaly-detection signals, not
		// limiting-resource candidates.
		if sd := stats.StdDev(ys); sd > 0 && !math.IsNaN(sd) {
			if fit, err := stats.LinearRegression(xs, ys); err == nil {
				cc.Fit = fit
				cc.Linear = fit.R2 >= r2Threshold
			}
			if r, err := stats.Pearson(xs, ys); err == nil {
				cc.Pearson = r
			}
			if cc.Fit.R2 > bestR2 {
				bestR2 = cc.Fit.R2
				rep.LimitingResource = cc.Counter
			}
		}
		rep.Counters = append(rep.Counters, cc)
	}
	rep.Valid = bestR2 >= r2Threshold
	return rep, nil
}

// Counter returns the named counter correlation from the report.
func (r ValidationReport) Counter(name string) (CounterCorrelation, error) {
	for _, c := range r.Counters {
		if c.Counter == name {
			return c, nil
		}
	}
	return CounterCorrelation{}, fmt.Errorf("measure: no counter %q in report", name)
}

// RefineResult is the outcome of one metric-refinement pass.
type RefineResult struct {
	// Clean is the series with contaminated windows removed.
	Clean []metrics.TickStat
	// Removed is the number of windows identified as contaminated.
	Removed int
	// Before and After are the CPU R² values pre/post refinement.
	Before float64
	After  float64
}

// RefineByOutlierRemoval implements the feedback loop of §II-A1: when the
// workload↔CPU correlation is weak, identify the windows contaminated by a
// secondary workload (CPU residuals far above a robust fit — e.g. the log-
// upload spikes) and remove their effect, then re-validate.
//
// Contamination is one-sided (a background workload only ever adds CPU) and
// can be dense — the log-upload case hits a third of all windows — so the
// clean-noise scale is estimated from the LOWER residual quantiles of a
// preliminary fit, a robust line is anchored on the clean cluster, and
// windows more than k·sigma above it are dropped. A k <= 0 selects 3.5.
func RefineByOutlierRemoval(series []metrics.TickStat, k float64) (RefineResult, error) {
	if len(series) < 10 {
		return RefineResult{}, fmt.Errorf("measure: need >= 10 windows to refine, got %d", len(series))
	}
	if k <= 0 {
		k = 3.5
	}
	xs := make([]float64, len(series))
	ys := make([]float64, len(series))
	for i, t := range series {
		xs[i] = t.RPSPerServer
		ys[i] = t.CPUMean
	}
	before, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return RefineResult{}, fmt.Errorf("measure: %w", err)
	}
	// Clean-side noise scale: contamination only inflates the upper tail,
	// so the p10..p50 residual spread of the preliminary fit estimates the
	// clean sigma (1.2816 = z(0.90)).
	resid := make([]float64, len(series))
	for i := range series {
		resid[i] = ys[i] - before.Predict(xs[i])
	}
	qs := stats.Percentiles(resid, 10, 50)
	sigma := (qs[1] - qs[0]) / 1.2816
	if sigma <= 0 || math.IsNaN(sigma) {
		abs := make([]float64, len(resid))
		for i, r := range resid {
			abs[i] = math.Abs(r)
		}
		sigma = stats.Median(abs)
		if sigma <= 0 {
			sigma = 1e-9
		}
	}
	robust, err := stats.RANSAC(xs, ys, stats.RANSACConfig{
		Degree: 1, Seed: 1, MaxIterations: 200, InlierThreshold: 3 * sigma,
	})
	if err != nil {
		return RefineResult{}, fmt.Errorf("measure: robust fit: %w", err)
	}
	res := RefineResult{Before: before.R2}
	for i, t := range series {
		// One-sided: contamination only adds CPU, never removes it.
		if ys[i]-robust.Model.Predict(xs[i]) > k*sigma {
			res.Removed++
			continue
		}
		res.Clean = append(res.Clean, t)
	}
	if len(res.Clean) < 3 {
		return RefineResult{}, errors.New("measure: refinement removed nearly all windows")
	}
	cx := make([]float64, len(res.Clean))
	cy := make([]float64, len(res.Clean))
	for i, t := range res.Clean {
		cx[i] = t.RPSPerServer
		cy[i] = t.CPUMean
	}
	after, err := stats.LinearRegression(cx, cy)
	if err != nil {
		return RefineResult{}, fmt.Errorf("measure: %w", err)
	}
	res.After = after.R2
	return res, nil
}

// Group is one capacity-planning server group inside a pool.
type Group struct {
	// Servers lists member server names.
	Servers []string
	// P5Centroid and P95Centroid are the group's centre in the (p5, p95)
	// CPU plane.
	P5Centroid  float64
	P95Centroid float64
}

// Grouping is the result of server-group identification for one pool.
type Grouping struct {
	Groups []Group
	// Silhouette is the clustering quality when more than one group was
	// found (0 for a single group).
	Silhouette float64
}

// GroupServers identifies capacity-planning groups from per-server daily
// summaries using the (p5, p95) CPU scatter of §II-A2 (Figure 3). maxK
// bounds the number of groups considered; minSilhouette is the score a
// multi-group split must beat to displace the single-group default.
func GroupServers(sums []metrics.ServerSummary, maxK int, minSilhouette float64, seed int64) (Grouping, error) {
	if len(sums) == 0 {
		return Grouping{}, errors.New("measure: no server summaries")
	}
	points := make([]cluster.Point, 0, len(sums))
	names := make([]string, 0, len(sums))
	for _, s := range sums {
		if s.CPU.N == 0 {
			continue // never online: nothing to group on
		}
		points = append(points, cluster.Point{s.CPU.P5, s.CPU.P95})
		names = append(names, s.Server)
	}
	if len(points) == 0 {
		return Grouping{}, errors.New("measure: no online servers to group")
	}
	res, err := cluster.SelectK(points, maxK, minSilhouette, seed)
	if err != nil {
		return Grouping{}, fmt.Errorf("measure: %w", err)
	}
	groups := make([]Group, res.K)
	for i, c := range res.Centroids {
		groups[i].P5Centroid = c[0]
		groups[i].P95Centroid = c[1]
	}
	for i, a := range res.Assignment {
		groups[a].Servers = append(groups[a].Servers, names[i])
	}
	g := Grouping{Groups: groups}
	if res.K > 1 {
		sil, err := cluster.Silhouette(points, res.Assignment, res.K)
		if err != nil {
			return Grouping{}, fmt.Errorf("measure: %w", err)
		}
		g.Silhouette = sil
	}
	// Deterministic order: by ascending p95 centroid.
	sort.Slice(g.Groups, func(i, j int) bool { return g.Groups[i].P95Centroid < g.Groups[j].P95Centroid })
	return g, nil
}

// PoolExample is one labelled training sample for the grouping classifier:
// a server's feature vector and whether its pool was manually labelled as a
// single predictable capacity-planning group.
type PoolExample struct {
	Features    []float64
	Predictable bool
}

// ClassifierResult bundles the fitted tree with its cross-validated scores,
// mirroring the paper's report (34 splits, R² = 0.746, AUC = 0.9804).
type ClassifierResult struct {
	Tree     *dtree.Tree
	Splits   int
	CV       dtree.CVResult
	Examples int
}

// TrainGroupClassifier fits the §II-A2 decision tree on labelled server
// feature vectors with k-fold cross-validation. minLeaf mirrors the paper's
// minimum leaf size (2000 machines at production scale; callers pass a value
// proportionate to their fleet).
func TrainGroupClassifier(examples []PoolExample, folds, minLeaf int, seed int64) (ClassifierResult, error) {
	if len(examples) < folds || folds < 2 {
		return ClassifierResult{}, fmt.Errorf("measure: need >= %d examples and >= 2 folds", folds)
	}
	xs := make([][]float64, len(examples))
	ys := make([]float64, len(examples))
	for i, e := range examples {
		xs[i] = e.Features
		ys[i] = 0
		if e.Predictable {
			ys[i] = 1
		}
	}
	cfg := dtree.Config{Task: dtree.Classification, MaxDepth: 8, MinLeafSize: minLeaf}
	kf, err := stats.KFold(len(examples), folds, seed)
	if err != nil {
		return ClassifierResult{}, fmt.Errorf("measure: %w", err)
	}
	dtFolds := make([]struct{ Train, Test []int }, len(kf))
	for i, f := range kf {
		dtFolds[i] = struct{ Train, Test []int }{Train: f.Train, Test: f.Test}
	}
	cv, err := dtree.CrossValidate(xs, ys, cfg, dtFolds)
	if err != nil {
		return ClassifierResult{}, fmt.Errorf("measure: cross-validation: %w", err)
	}
	tree, err := dtree.Fit(xs, ys, cfg)
	if err != nil {
		return ClassifierResult{}, fmt.Errorf("measure: final fit: %w", err)
	}
	return ClassifierResult{Tree: tree, Splits: tree.Splits(), CV: cv, Examples: len(examples)}, nil
}

// BuildExamples converts per-server summaries into classifier examples with
// a shared pool label.
func BuildExamples(sums []metrics.ServerSummary, predictable bool) []PoolExample {
	out := make([]PoolExample, 0, len(sums))
	for _, s := range sums {
		if s.CPU.N == 0 {
			continue
		}
		out = append(out, PoolExample{Features: s.FeatureVector(), Predictable: predictable})
	}
	return out
}
