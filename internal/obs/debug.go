package obs

// Debug HTTP surface: recent traces as JSON (or Chrome trace_event JSON),
// a filterable goroutine dump for diagnosing stuck jobs, and the pprof
// profiling endpoints — served by capserved on the main mux (traces,
// goroutines) and on the optional -debug-addr mux (everything, including
// pprof).

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"headroom/internal/leakcheck"
)

// TracesHandler serves the tracer's retained traces.
//
//	GET /debug/traces                 all retained traces, newest first
//	GET /debug/traces?id=<trace_id>   one trace
//	GET /debug/traces?format=chrome   Chrome trace_event JSON for chrome://tracing
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		var traces []TraceData
		if id := r.URL.Query().Get("id"); id != "" {
			td, ok := t.Trace(id)
			if !ok {
				writeDebugJSON(w, http.StatusNotFound, map[string]any{"error": "no trace " + id})
				return
			}
			traces = []TraceData{td}
		} else {
			traces = t.Traces()
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			WriteChrome(w, traces...)
			return
		}
		writeDebugJSON(w, http.StatusOK, map[string]any{
			"count":  len(traces),
			"traces": traces,
		})
	})
}

// GoroutinesHandler serves a parsed goroutine dump, filterable by blocked
// age — GET /debug/goroutines?min_age=5m keeps only goroutines the runtime
// reports blocked at least that long (minute granularity), which is how a
// stuck job looks in production.
func GoroutinesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var minAge time.Duration
		if v := r.URL.Query().Get("min_age"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				writeDebugJSON(w, http.StatusBadRequest,
					map[string]any{"error": "min_age must be a non-negative duration like 5m"})
				return
			}
			minAge = d
		}
		all := leakcheck.DumpGoroutines()
		gs := all
		if minAge > 0 {
			gs = gs[:0:0]
			for _, g := range all {
				if g.Wait >= minAge {
					gs = append(gs, g)
				}
			}
		}
		writeDebugJSON(w, http.StatusOK, map[string]any{
			"total":      len(all),
			"count":      len(gs),
			"min_age":    minAge.String(),
			"goroutines": gs,
		})
	})
}

// DebugMux bundles the full debug surface — traces, goroutines and pprof —
// for the standalone -debug-addr listener.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/traces", TracesHandler(t))
	mux.Handle("/debug/goroutines", GoroutinesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeDebugJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
