// Package synth implements Step 3 of the capacity-planning methodology
// (§II-C of the paper): building a reproducible synthetic workload whose
// QoS and resource-usage response matches production, so that changes can be
// validated offline before deployment.
//
// A synthetic workload is only trustworthy once verified: for the same
// volume of synthetic workload the offline pool must show the same QoS and
// resource usage as production. Without matching the request mix and
// dependency-response distribution, one could detect THAT a change shifted
// capacity or latency but not accurately measure BY HOW MUCH.
package synth

import (
	"context"
	"errors"
	"fmt"
	"math"

	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/stats"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

// Profile is a reproducible synthetic workload derived from production
// observations: an offered-load sweep and the production request mix.
type Profile struct {
	// Offered is the total pool RPS per tick to replay.
	Offered []float64
	// Servers is the offline pool size the profile was built for.
	Servers int
	// Mix is the production request mix the replay must reproduce.
	Mix workload.Mix
}

// BuildProfile derives a synthetic workload from production pool history:
// a load sweep covering the observed per-server range (plus optional
// extension for stress testing) at a controlled offline pool size.
//
// levels is the number of load steps; extendFrac stretches the sweep beyond
// the observed p99 load (0.25 = +25%), giving the "small workload increments
// over time to obtain a broad set of data" of §II-D.
func BuildProfile(series []metrics.TickStat, mix workload.Mix, servers, levels int, extendFrac float64) (Profile, error) {
	if servers <= 0 {
		return Profile{}, fmt.Errorf("synth: non-positive server count %d", servers)
	}
	if levels < 2 {
		return Profile{}, fmt.Errorf("synth: need >= 2 load levels, got %d", levels)
	}
	if extendFrac < 0 {
		return Profile{}, fmt.Errorf("synth: negative extension %v", extendFrac)
	}
	if err := mix.Validate(); err != nil {
		return Profile{}, fmt.Errorf("synth: %w", err)
	}
	var perServer []float64
	for _, t := range series {
		if t.Servers > 0 {
			perServer = append(perServer, t.RPSPerServer)
		}
	}
	if len(perServer) < 2 {
		return Profile{}, errors.New("synth: not enough production windows")
	}
	lo := stats.Percentile(perServer, 1)
	hi := stats.Percentile(perServer, 99) * (1 + extendFrac)
	if hi <= lo {
		return Profile{}, fmt.Errorf("synth: degenerate load range [%v, %v]", lo, hi)
	}
	offered := make([]float64, levels)
	for i := range offered {
		frac := float64(i) / float64(levels-1)
		offered[i] = (lo + (hi-lo)*frac) * float64(servers)
	}
	return Profile{Offered: offered, Servers: servers, Mix: mix}, nil
}

// Replay drives an offline pool with the synthetic workload, returning the
// trace records. ticksPerLevel repeats each load step to accumulate
// statistics.
func Replay(pc sim.PoolConfig, p Profile, ticksPerLevel int, seed int64) ([]trace.Record, error) {
	return ReplayContext(context.Background(), pc, p, ticksPerLevel, seed)
}

// ReplayContext is Replay with cancellation, checked per simulated tick.
func ReplayContext(ctx context.Context, pc sim.PoolConfig, p Profile, ticksPerLevel int, seed int64) ([]trace.Record, error) {
	if ticksPerLevel <= 0 {
		return nil, fmt.Errorf("synth: non-positive ticks per level %d", ticksPerLevel)
	}
	if len(p.Offered) == 0 {
		return nil, errors.New("synth: empty profile")
	}
	series := make([]float64, 0, len(p.Offered)*ticksPerLevel)
	for _, load := range p.Offered {
		for r := 0; r < ticksPerLevel; r++ {
			series = append(series, load)
		}
	}
	return sim.SimulatePoolContext(ctx, pc, "offline", series, p.Servers, seed)
}

// Equivalence reports whether the synthetic response matches production —
// the verification gate of §II-C.
type Equivalence struct {
	// CPUSlopeRelErr is |synthetic slope - production slope| / production.
	CPUSlopeRelErr float64
	// CPUAtRefAbsErr is the CPU gap (percentage points) at the reference
	// per-server load.
	CPUAtRefAbsErr float64
	// LatencyAtRefAbsErr is the latency gap (ms) at the reference load.
	LatencyAtRefAbsErr float64
	// MixDistance is the total-variation distance between production and
	// replayed request mixes.
	MixDistance float64
	// RefRPSPerServer is the per-server load the point checks used.
	RefRPSPerServer float64
	// Equivalent is true when all gaps are within tolerance.
	Equivalent bool
}

// Tolerance bounds the acceptable production↔synthetic gaps.
type Tolerance struct {
	CPUSlopeRel  float64 // default 0.10
	CPUAbs       float64 // default 1.5 percentage points
	LatencyAbsMs float64 // default 2 ms
	MixTV        float64 // default 0.05
}

func (t Tolerance) withDefaults() Tolerance {
	if t.CPUSlopeRel <= 0 {
		t.CPUSlopeRel = 0.10
	}
	if t.CPUAbs <= 0 {
		t.CPUAbs = 1.5
	}
	if t.LatencyAbsMs <= 0 {
		t.LatencyAbsMs = 2
	}
	if t.MixTV <= 0 {
		t.MixTV = 0.05
	}
	return t
}

// Verify compares production and synthetic pool aggregates. replayMix is
// the mix actually replayed (usually the profile's); pass the production mix
// to assert distributional fidelity.
func Verify(prod, synthSeries []metrics.TickStat, prodMix, replayMix workload.Mix, tol Tolerance) (Equivalence, error) {
	tol = tol.withDefaults()
	fitOf := func(series []metrics.TickStat, what string) (stats.LinearFit, stats.Polynomial, error) {
		var xs, cpu, lat []float64
		for _, t := range series {
			if t.Servers == 0 {
				continue
			}
			xs = append(xs, t.RPSPerServer)
			cpu = append(cpu, t.CPUMean)
			lat = append(lat, t.LatencyMean)
		}
		cf, err := stats.LinearRegression(xs, cpu)
		if err != nil {
			return stats.LinearFit{}, stats.Polynomial{}, fmt.Errorf("synth: %s cpu fit: %w", what, err)
		}
		lf, err := stats.PolyFit(xs, lat, 2)
		if err != nil {
			return stats.LinearFit{}, stats.Polynomial{}, fmt.Errorf("synth: %s latency fit: %w", what, err)
		}
		return cf, lf, nil
	}
	pc, pl, err := fitOf(prod, "production")
	if err != nil {
		return Equivalence{}, err
	}
	sc, sl, err := fitOf(synthSeries, "synthetic")
	if err != nil {
		return Equivalence{}, err
	}
	var prodLoads []float64
	for _, t := range prod {
		if t.Servers > 0 {
			prodLoads = append(prodLoads, t.RPSPerServer)
		}
	}
	ref := stats.Percentile(prodLoads, 75)

	eq := Equivalence{RefRPSPerServer: ref}
	if pc.Slope != 0 {
		eq.CPUSlopeRelErr = math.Abs(sc.Slope-pc.Slope) / math.Abs(pc.Slope)
	} else {
		eq.CPUSlopeRelErr = math.Abs(sc.Slope - pc.Slope)
	}
	eq.CPUAtRefAbsErr = math.Abs(sc.Predict(ref) - pc.Predict(ref))
	eq.LatencyAtRefAbsErr = math.Abs(sl.Predict(ref) - pl.Predict(ref))
	d, err := workload.Distance(prodMix, replayMix)
	if err != nil {
		return Equivalence{}, fmt.Errorf("synth: %w", err)
	}
	eq.MixDistance = d
	eq.Equivalent = eq.CPUSlopeRelErr <= tol.CPUSlopeRel &&
		eq.CPUAtRefAbsErr <= tol.CPUAbs &&
		eq.LatencyAtRefAbsErr <= tol.LatencyAbsMs &&
		eq.MixDistance <= tol.MixTV
	return eq, nil
}
