package sim

import (
	"math"
	"testing"

	"headroom/internal/metrics"
	"headroom/internal/stats"
	"headroom/internal/trace"
	"headroom/internal/workload"
)

// smallFleet is a one-pool fleet for focused engine tests.
func smallFleet(seed int64, pool PoolConfig) FleetConfig {
	return FleetConfig{
		DCs:               workload.NineRegions(),
		Pools:             []PoolConfig{pool},
		Tick:              workload.TickDuration,
		WorkloadNoiseFrac: 0.03,
		Seed:              seed,
	}
}

// tinyPool is a minimal pool in DC 1 for cheap tests.
func tinyPool(servers int) PoolConfig {
	return PoolConfig{
		Name:        "T",
		Description: "test pool",
		Servers:     map[string]int{"DC 1": servers},
		Response: ResponseParams{
			CPUSlope: 0.05, CPUIntercept: 2, CPUNoise: 0.2,
			LatQuad: [3]float64{20, -0.01, 1e-4}, LatNoise: 0.3,
			NetBytesPerReq: 1000, NetPktsPerReq: 1,
			MemPagesBase: 100, DiskBytesPerPage: 10, DiskQueueBase: 0.1,
		},
		// DC 1 carries 16% of this: ~160 RPS/server for a 10-server pool.
		Traffic:      workload.Pattern{BaseRPS: 10000, PeakToTrough: 2, PeakHour: 13},
		Availability: AvailabilityProfile{},
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  FleetConfig
	}{
		{"no DCs", FleetConfig{Pools: []PoolConfig{tinyPool(5)}}},
		{"no pools", FleetConfig{DCs: workload.NineRegions()}},
		{"duplicate pool", FleetConfig{
			DCs:   workload.NineRegions(),
			Pools: []PoolConfig{tinyPool(5), tinyPool(5)},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("want error")
			}
		})
	}

	bad := tinyPool(5)
	bad.Servers = map[string]int{"Mars": 5}
	if _, err := New(smallFleet(1, bad)); err == nil {
		t.Error("unknown datacenter should error")
	}
	bad = tinyPool(0)
	bad.Servers = map[string]int{"DC 1": 0}
	if _, err := New(smallFleet(1, bad)); err == nil {
		t.Error("zero servers should error")
	}
	bad = tinyPool(5)
	bad.Response.CPUSlope = -1
	if _, err := New(smallFleet(1, bad)); err == nil {
		t.Error("negative slope should error")
	}
	bad = tinyPool(5)
	bad.Availability.PlannedDailyFrac = 1.5
	if _, err := New(smallFleet(1, bad)); err == nil {
		t.Error("bad availability fraction should error")
	}
	bad = tinyPool(5)
	bad.Name = ""
	if _, err := New(smallFleet(1, bad)); err == nil {
		t.Error("empty pool name should error")
	}
	bad = tinyPool(5)
	bad.Generations = []Generation{{Name: "g", Share: -1, CPUFactor: 1}}
	if _, err := New(smallFleet(1, bad)); err == nil {
		t.Error("negative generation share should error")
	}
	bad = tinyPool(5)
	bad.Response.BackgroundDurTicks = 5
	bad.Response.BackgroundPeriodTicks = 2
	if _, err := New(smallFleet(1, bad)); err == nil {
		t.Error("background duration > period should error")
	}
}

func TestActionValidation(t *testing.T) {
	cfg := smallFleet(1, tinyPool(10))
	if _, err := New(cfg, Action{Pool: "nope", DC: "DC 1", Tick: 0, SetServers: 5}); err == nil {
		t.Error("unknown pool in action should error")
	}
	if _, err := New(cfg, Action{Pool: "T", DC: "DC 9", Tick: 0, SetServers: 5}); err == nil {
		t.Error("pool absent from DC should error")
	}
	if _, err := New(cfg, Action{Pool: "T", DC: "DC 1", Tick: 0, SetServers: 99}); err == nil {
		t.Error("oversize SetServers should error")
	}
	if _, err := New(cfg, Action{Pool: "T", DC: "DC 1", Tick: 0, SetServers: -1}); err == nil {
		t.Error("negative SetServers should error")
	}
}

func TestRunArgumentChecks(t *testing.T) {
	s, err := New(smallFleet(1, tinyPool(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(0, func(trace.Record) error { return nil }); err == nil {
		t.Error("zero ticks should error")
	}
	if err := s.Run(1, nil); err == nil {
		t.Error("nil emit should error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []trace.Record {
		s, err := New(smallFleet(42, tinyPool(8)))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := s.RunCollect(30)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestPoolBResponseRecoverable(t *testing.T) {
	// The black-box linear fit over simulated pool B in DC 1 must recover
	// the paper's published model cpu = 0.028*rps + 1.37 with high R².
	cfg := smallFleet(7, PoolB())
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	days := 3
	if err := s.Run(days*s.TicksPerDay(), func(r trace.Record) error {
		agg.Add(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	series, err := agg.PoolSeries("DC 1", "B")
	if err != nil {
		t.Fatal(err)
	}
	var xs, ys, lats []float64
	for _, ts := range series {
		xs = append(xs, ts.RPSPerServer)
		ys = append(ys, ts.CPUMean)
		lats = append(lats, ts.LatencyMean)
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.028) > 0.002 {
		t.Errorf("slope = %v, want 0.028 +/- 0.002", fit.Slope)
	}
	if math.Abs(fit.Intercept-1.37) > 0.6 {
		t.Errorf("intercept = %v, want 1.37 +/- 0.6", fit.Intercept)
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %v, want >= 0.95", fit.R2)
	}
	// Latency quadratic should match the paper's model at reference loads.
	quad, err := stats.PolyFit(xs, lats, 2)
	if err != nil {
		t.Fatal(err)
	}
	truth := stats.Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	for _, rps := range []float64{250, 377, 540} {
		if d := math.Abs(quad.Predict(rps) - truth.Predict(rps)); d > 1.5 {
			t.Errorf("latency at %v RPS: fit %v vs truth %v", rps, quad.Predict(rps), truth.Predict(rps))
		}
	}
	// Workload per server should sit in the paper's observed band
	// (Table II: p50 ~250, p95 ~377).
	sum := stats.Summarize(xs)
	if sum.P95 < 300 || sum.P95 > 460 {
		t.Errorf("p95 RPS/server = %v, want ~377", sum.P95)
	}
}

func TestCapacityActionRaisesPerServerLoad(t *testing.T) {
	pool := tinyPool(10)
	ticks := 100
	base, err := New(smallFleet(3, pool))
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New(smallFleet(3, pool), Action{Pool: "T", DC: "DC 1", Tick: 0, SetServers: 7})
	if err != nil {
		t.Fatal(err)
	}
	meanRPS := func(s *Simulator) (float64, int) {
		agg := metrics.NewAggregator()
		if err := s.Run(ticks, func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
			t.Fatal(err)
		}
		series, err := agg.PoolSeries("DC 1", "T")
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var servers int
		for _, ts := range series {
			sum += ts.RPSPerServer
			if ts.Servers > servers {
				servers = ts.Servers
			}
		}
		return sum / float64(len(series)), servers
	}
	rpsBase, serversBase := meanRPS(base)
	rpsRed, serversRed := meanRPS(reduced)
	if serversBase != 10 || serversRed != 7 {
		t.Errorf("server counts = %d/%d, want 10/7", serversBase, serversRed)
	}
	ratio := rpsRed / rpsBase
	if math.Abs(ratio-10.0/7) > 0.05 {
		t.Errorf("per-server load ratio = %v, want ~%v", ratio, 10.0/7)
	}
}

func TestRestoreServersAction(t *testing.T) {
	s, err := New(smallFleet(5, tinyPool(10)),
		Action{Pool: "T", DC: "DC 1", Tick: 0, SetServers: 5},
		Action{Pool: "T", DC: "DC 1", Tick: 10, RestoreServers: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	if err := s.Run(20, func(r trace.Record) error {
		if r.Online {
			counts[r.Tick]++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if counts[5] != 5 {
		t.Errorf("online at tick 5 = %d, want 5", counts[5])
	}
	if counts[15] != 10 {
		t.Errorf("online at tick 15 = %d, want 10", counts[15])
	}
}

func TestDeploymentShiftsIntercept(t *testing.T) {
	pool := tinyPool(6)
	pool.Response.CPUNoise = 0
	delta := 2.5
	s, err := New(smallFleet(9, pool),
		Action{Pool: "T", DC: "DC 1", Tick: 50, CPUInterceptDelta: delta})
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	if err := s.Run(100, func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	series, err := agg.PoolSeries("DC 1", "T")
	if err != nil {
		t.Fatal(err)
	}
	var beforeX, beforeY, afterX, afterY []float64
	for _, ts := range series {
		if ts.Tick < 50 {
			beforeX = append(beforeX, ts.RPSPerServer)
			beforeY = append(beforeY, ts.CPUMean)
		} else {
			afterX = append(afterX, ts.RPSPerServer)
			afterY = append(afterY, ts.CPUMean)
		}
	}
	fb, err := stats.LinearRegression(beforeX, beforeY)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := stats.LinearRegression(afterX, afterY)
	if err != nil {
		t.Fatal(err)
	}
	if d := fa.Intercept - fb.Intercept; math.Abs(d-delta) > 0.5 {
		t.Errorf("intercept shift = %v, want ~%v", d, delta)
	}
}

func TestAvailabilityProfiles(t *testing.T) {
	run := func(av AvailabilityProfile) float64 {
		pool := tinyPool(20)
		pool.Availability = av
		s, err := New(smallFleet(11, pool))
		if err != nil {
			t.Fatal(err)
		}
		agg := metrics.NewAggregator()
		if err := s.Run(2*s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
			t.Fatal(err)
		}
		sums, err := agg.ServerSummaries("DC 1", "T")
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, ss := range sums {
			total += ss.Availability
		}
		return total / float64(len(sums))
	}
	if av := run(AvailabilityProfile{}); av != 1 {
		t.Errorf("no-maintenance availability = %v, want 1", av)
	}
	if av := run(AvailabilityProfile{PlannedDailyFrac: 0.10}); math.Abs(av-0.90) > 0.02 {
		t.Errorf("10%% maintenance availability = %v, want ~0.90", av)
	}
	if av := run(AvailabilityProfile{PlannedDailyFrac: 0.02, RepurposedOffPeakFrac: 0.3}); math.Abs(av-0.68) > 0.03 {
		t.Errorf("repurposed availability = %v, want ~0.68", av)
	}
	// Guaranteed incident: probability 1, half the pool, half a day.
	av := run(AvailabilityProfile{IncidentProb: 1, IncidentFrac: 0.5, IncidentTicks: 360})
	if math.Abs(av-0.75) > 0.03 {
		t.Errorf("incident availability = %v, want ~0.75", av)
	}
}

func TestTwoGenerationsFormTwoClusters(t *testing.T) {
	s, err := New(smallFleet(13, PoolI()))
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	if err := s.Run(s.TicksPerDay(), func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	sums, err := agg.ServerSummaries("DC 1", "I")
	if err != nil {
		t.Fatal(err)
	}
	var oldP95, newP95 []float64
	for _, ss := range sums {
		switch ss.Generation {
		case "gen-old":
			oldP95 = append(oldP95, ss.CPU.P95)
		case "gen-new":
			newP95 = append(newP95, ss.CPU.P95)
		}
	}
	if len(oldP95) == 0 || len(newP95) == 0 {
		t.Fatal("both generations should be present")
	}
	mo, mn := stats.Mean(oldP95), stats.Mean(newP95)
	if mn >= mo*0.7 {
		t.Errorf("new-gen p95 CPU %v should be well below old-gen %v", mn, mo)
	}
}

func TestBackgroundWorkloadContaminatesCPU(t *testing.T) {
	pool := tinyPool(4)
	pool.Response.CPUNoise = 0.05
	pool.Response.BackgroundPeriodTicks = 10
	pool.Response.BackgroundDurTicks = 2
	pool.Response.BackgroundCPU = 15
	s, err := New(smallFleet(17, pool))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.RunCollect(200)
	if err != nil {
		t.Fatal(err)
	}
	// Per-server residuals from the true line: contaminated windows must
	// stand far above it roughly 20% of the time.
	var high, total int
	for _, r := range recs {
		if !r.Online {
			continue
		}
		resid := r.CPUPct - (0.05*r.RPS + 2)
		if resid > 8 {
			high++
		}
		total++
	}
	frac := float64(high) / float64(total)
	if frac < 0.12 || frac > 0.3 {
		t.Errorf("contaminated fraction = %v, want ~0.2", frac)
	}
}

func TestSimulatePoolControlledLoad(t *testing.T) {
	pool := tinyPool(5)
	offered := []float64{100, 200, 300}
	recs, err := SimulatePool(pool, "DC 1", offered, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 15 {
		t.Fatalf("records = %d, want 15", len(recs))
	}
	// Tick 2: each server sees ~60 RPS (300/5) modulo per-server jitter.
	var sum float64
	var n int
	for _, r := range recs {
		if r.Tick == 2 {
			sum += r.RPS
			n++
		}
	}
	if n != 5 {
		t.Fatalf("tick-2 records = %d, want 5", n)
	}
	if mean := sum / float64(n); math.Abs(mean-60) > 5 {
		t.Errorf("mean per-server RPS = %v, want ~60", mean)
	}
	if _, err := SimulatePool(pool, "DC 1", offered, 0, 1); err == nil {
		t.Error("zero servers should error")
	}
	if _, err := SimulatePool(pool, "DC 1", nil, 5, 1); err == nil {
		t.Error("empty load series should error")
	}
	if _, err := SimulatePool(pool, "DC 1", []float64{-1}, 5, 1); err == nil {
		t.Error("negative load should error")
	}
}

func TestDefaultFleetValidatesAndSizes(t *testing.T) {
	cfg := DefaultFleet(1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultFleet invalid: %v", err)
	}
	n := TotalServers(cfg)
	if n < 2000 || n > 10000 {
		t.Errorf("fleet size = %d, want a few thousand servers", n)
	}
	if _, err := NamedPool(cfg, "B"); err != nil {
		t.Errorf("NamedPool(B): %v", err)
	}
	if _, err := NamedPool(cfg, "ZZ"); err == nil {
		t.Error("unknown pool should error")
	}
}

func TestDCLatencyDelta(t *testing.T) {
	pool := tinyPool(4)
	pool.Servers = map[string]int{"DC 1": 4, "DC 4": 4}
	pool.DCLatencyDelta = map[string]float64{"DC 4": 7}
	pool.Response.LatNoise = 0
	s, err := New(smallFleet(19, pool))
	if err != nil {
		t.Fatal(err)
	}
	agg := metrics.NewAggregator()
	if err := s.Run(50, func(r trace.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	s1, err := agg.PoolSeries("DC 1", "T")
	if err != nil {
		t.Fatal(err)
	}
	s4, err := agg.PoolSeries("DC 4", "T")
	if err != nil {
		t.Fatal(err)
	}
	// Compare latency at a matched in-range per-server load via quadratic
	// fits (the truth model is quadratic).
	fit := func(series []metrics.TickStat) stats.Polynomial {
		var xs, ys []float64
		for _, ts := range series {
			xs = append(xs, ts.RPSPerServer)
			ys = append(ys, ts.LatencyMean)
		}
		p, err := stats.PolyFit(xs, ys, 2)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	f1, f4 := fit(s1), fit(s4)
	// Both DCs' observed load ranges include ~330 RPS/server.
	if d := f4.Predict(330) - f1.Predict(330); math.Abs(d-7) > 1.5 {
		t.Errorf("DC 4 latency offset = %v, want ~7", d)
	}
}
