package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RequestClass is one kind of request in a service's traffic mix. The
// synthetic-workload step of the methodology (§II-C) must reproduce the
// production diversity of requests (and of responses from downstream
// dependencies) so the offline system exhibits the same QoS and resource
// usage as production.
type RequestClass struct {
	// Name identifies the class (e.g. "cache-hit", "cache-miss",
	// "write", "auth").
	Name string
	// Weight is the relative frequency of this class in the mix.
	Weight float64
	// CostFactor scales CPU consumption relative to the pool's baseline
	// request cost.
	CostFactor float64
	// DependencyLatencyMs is the mean latency contributed by downstream
	// calls this class performs (mocked in offline replay).
	DependencyLatencyMs float64
}

// Mix is a distribution over request classes.
type Mix []RequestClass

// Validate checks the mix is non-empty with positive total weight and
// non-negative components.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return errors.New("workload: empty request mix")
	}
	var total float64
	for _, c := range m {
		if c.Weight < 0 {
			return fmt.Errorf("workload: class %q has negative weight", c.Name)
		}
		if c.CostFactor < 0 {
			return fmt.Errorf("workload: class %q has negative cost factor", c.Name)
		}
		if c.DependencyLatencyMs < 0 {
			return fmt.Errorf("workload: class %q has negative dependency latency", c.Name)
		}
		total += c.Weight
	}
	if total <= 0 {
		return errors.New("workload: request mix total weight is zero")
	}
	return nil
}

// Normalize returns a copy of the mix with weights summing to 1.
func (m Mix) Normalize() (Mix, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var total float64
	for _, c := range m {
		total += c.Weight
	}
	out := make(Mix, len(m))
	copy(out, m)
	for i := range out {
		out[i].Weight /= total
	}
	return out, nil
}

// MeanCost returns the weight-averaged cost factor of the mix.
func (m Mix) MeanCost() (float64, error) {
	n, err := m.Normalize()
	if err != nil {
		return 0, err
	}
	var s float64
	for _, c := range n {
		s += c.Weight * c.CostFactor
	}
	return s, nil
}

// MeanDependencyLatency returns the weight-averaged dependency latency.
func (m Mix) MeanDependencyLatency() (float64, error) {
	n, err := m.Normalize()
	if err != nil {
		return 0, err
	}
	var s float64
	for _, c := range n {
		s += c.Weight * c.DependencyLatencyMs
	}
	return s, nil
}

// Sample draws a request class according to the weights using the provided
// random source.
func (m Mix) Sample(rng *rand.Rand) (RequestClass, error) {
	n, err := m.Normalize()
	if err != nil {
		return RequestClass{}, err
	}
	target := rng.Float64()
	var acc float64
	for _, c := range n {
		acc += c.Weight
		if target <= acc {
			return c, nil
		}
	}
	return n[len(n)-1], nil
}

// Distance returns the total variation distance between two mixes over the
// union of their class names, in [0, 1]. The synthetic-workload validation
// step uses this to check the replayed mix matches production.
func Distance(a, b Mix) (float64, error) {
	na, err := a.Normalize()
	if err != nil {
		return 0, fmt.Errorf("workload: mix a: %w", err)
	}
	nb, err := b.Normalize()
	if err != nil {
		return 0, fmt.Errorf("workload: mix b: %w", err)
	}
	wa := make(map[string]float64, len(na))
	for _, c := range na {
		wa[c.Name] += c.Weight
	}
	wb := make(map[string]float64, len(nb))
	for _, c := range nb {
		wb[c.Name] += c.Weight
	}
	names := make(map[string]bool, len(wa)+len(wb))
	for n := range wa {
		names[n] = true
	}
	for n := range wb {
		names[n] = true
	}
	var tv float64
	for n := range names {
		tv += math.Abs(wa[n] - wb[n])
	}
	return tv / 2, nil
}

// EmpiricalMix tallies observed class names into a Mix with uniform cost
// factors, for comparing a replayed workload against its source.
func EmpiricalMix(names []string) (Mix, error) {
	if len(names) == 0 {
		return nil, errors.New("workload: no observations")
	}
	counts := make(map[string]int, 8)
	for _, n := range names {
		counts[n]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	m := make(Mix, 0, len(keys))
	for _, k := range keys {
		m = append(m, RequestClass{Name: k, Weight: float64(counts[k]), CostFactor: 1})
	}
	return m, nil
}
