// Package stats implements the statistical primitives required by the
// capacity-planning methodology: descriptive statistics, percentiles,
// histograms and empirical CDFs, ordinary least squares (simple linear and
// polynomial), robust regression via RANSAC, correlation measures, ROC/AUC,
// and k-fold splitting.
//
// Everything is implemented from scratch on top of the standard library so
// the module has no external dependencies. All functions are deterministic;
// the stochastic ones (RANSAC, KFold) take an explicit random source.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptyInput is returned by functions that cannot operate on an empty
// sample.
var ErrEmptyInput = errors.New("stats: empty input")

// ErrBadLength is returned when paired samples have mismatched lengths.
var ErrBadLength = errors.New("stats: mismatched input lengths")

// Sum returns the sum of xs. Sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns NaN when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It returns NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It returns NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks (the "exclusive" variant used by most
// monitoring systems). The input is not modified. It returns NaN for an
// empty slice or a p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is like Percentile but requires xs to be sorted
// ascending. It avoids the copy and sort, which matters in hot loops over
// 120-second windows.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles computes several percentiles in one pass over a single sorted
// copy. ps are percentile ranks in [0, 100]; the result is parallel to ps.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		if p < 0 || p > 100 {
			out[i] = math.NaN()
			continue
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Covariance returns the unbiased sample covariance of the paired samples
// (xs, ys). It returns an error when the lengths differ or n < 2.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("covariance: %w (%d vs %d)", ErrBadLength, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("covariance: %w", ErrEmptyInput)
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1), nil
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples (xs, ys). A zero-variance input yields an error because the
// coefficient is undefined.
func Pearson(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0, errors.New("stats: pearson undefined for zero-variance input")
	}
	return cov / (sx * sy), nil
}

// RSquared returns the coefficient of determination for observed values ys
// against model predictions preds: 1 - SS_res/SS_tot. When the observations
// have zero variance, RSquared returns 1 if the residuals are all zero and
// 0 otherwise.
func RSquared(ys, preds []float64) (float64, error) {
	if len(ys) != len(preds) {
		return 0, fmt.Errorf("rsquared: %w (%d vs %d)", ErrBadLength, len(ys), len(preds))
	}
	if len(ys) == 0 {
		return 0, fmt.Errorf("rsquared: %w", ErrEmptyInput)
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range ys {
		r := ys[i] - preds[i]
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

// Summary holds the descriptive statistics the measurement pipeline reports
// for each metric window.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P5     float64
	P25    float64
	P50    float64
	P75    float64
	P95    float64
}

// Summarize computes a Summary of xs. The zero Summary is returned for an
// empty input (with N == 0 and NaN moments).
func Summarize(xs []float64) Summary {
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
	ps := Percentiles(xs, 5, 25, 50, 75, 95)
	s.P5, s.P25, s.P50, s.P75, s.P95 = ps[0], ps[1], ps[2], ps[3], ps[4]
	return s
}
