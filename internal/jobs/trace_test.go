package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"headroom/internal/obs"
)

// submitTraced submits fn under a fresh tracer and returns the job and the
// tracer once the job is terminal.
func submitTraced(t *testing.T, q *Queue, fn Func) (*Job, *obs.Tracer) {
	t.Helper()
	tracer := obs.NewTracer(4)
	ctx := obs.WithTracer(context.Background(), tracer)
	ctx, root := obs.StartSpan(ctx, "test.request")
	j, err := q.SubmitCtx(ctx, "plan", fn)
	if err != nil {
		t.Fatalf("SubmitCtx: %v", err)
	}
	wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j.Wait(wctx)
	root.End()
	return j, tracer
}

func TestSubmitCtxLinksTrace(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())

	var jobTraceID, jobID string
	j, tracer := submitTraced(t, q, func(ctx context.Context) (any, error) {
		jobTraceID = obs.TraceIDFrom(ctx)
		jobID = obs.JobIDFrom(ctx)
		return 42, nil
	})

	if j.TraceID() == "" {
		t.Fatal("job should carry the submitting trace")
	}
	if jobTraceID != j.TraceID() {
		t.Fatalf("job fn saw trace %q, job records %q", jobTraceID, j.TraceID())
	}
	if jobID != j.ID {
		t.Fatalf("job fn saw job_id %q, want %q", jobID, j.ID)
	}
	if snap := j.Snapshot(); snap.TraceID != j.TraceID() {
		t.Fatalf("snapshot trace %q != job trace %q", snap.TraceID, j.TraceID())
	}

	td, ok := tracer.Trace(j.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	byName := map[string]obs.SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	for _, name := range []string{"test.request", "jobs.job", "jobs.attempt", "jobs.queued"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("trace missing span %q (have %v)", name, names(td.Spans))
		}
	}
	// The job span nests under the request; the queue-wait event under the
	// job span.
	if byName["jobs.job"].ParentID != byName["test.request"].SpanID {
		t.Error("jobs.job should be a child of the request span")
	}
	if byName["jobs.queued"].ParentID != byName["jobs.job"].SpanID {
		t.Error("jobs.queued should be a child of the job span")
	}
	attrs := byName["jobs.job"].Attrs.Map()
	if attrs["state"] != "done" {
		t.Errorf("job span state attr = %v", attrs["state"])
	}
	if attrs["queue_wait_ns"] == nil || attrs["run_ns"] == nil {
		t.Errorf("job span missing wait/run split: %v", attrs)
	}
}

func TestSubmitCtxDetachedFromCallerCancellation(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())

	tracer := obs.NewTracer(4)
	ctx := obs.WithTracer(context.Background(), tracer)
	ctx, root := obs.StartSpan(ctx, "req")
	cctx, cancel := context.WithCancel(ctx)

	started := make(chan struct{})
	j, err := q.SubmitCtx(cctx, "plan", func(jctx context.Context) (any, error) {
		close(started)
		select {
		case <-jctx.Done():
			return nil, jctx.Err()
		case <-time.After(100 * time.Millisecond):
			return obs.TraceIDFrom(jctx), nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel() // caller walks away; the job must keep running
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("job failed after caller cancellation: %v", err)
	}
	if res != root.TraceID() {
		t.Fatalf("job lost trace linkage after cancel: %v != %s", res, root.TraceID())
	}
	root.End()
}

func TestSubmitWithoutContextIsUntraced(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())
	j, err := q.Submit("plan", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	j.Wait(context.Background())
	if j.TraceID() != "" {
		t.Fatalf("untraced submit has trace %q", j.TraceID())
	}
	if snap := j.Snapshot(); snap.TraceID != "" {
		t.Fatalf("snapshot trace = %q", snap.TraceID)
	}
}

func TestFailedJobSpanRecordsError(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())
	boom := errors.New("boom")
	j, tracer := submitTraced(t, q, func(ctx context.Context) (any, error) { return nil, boom })
	td, _ := tracer.Trace(j.TraceID())
	var jobSpan obs.SpanData
	for _, sd := range td.Spans {
		if sd.Name == "jobs.job" {
			jobSpan = sd
		}
	}
	attrs := jobSpan.Attrs.Map()
	if attrs["state"] != "failed" {
		t.Errorf("state attr = %v", attrs["state"])
	}
	if attrs["error"] != "boom" {
		t.Errorf("error attr = %v", attrs["error"])
	}
}

func names(spans []obs.SpanData) []string {
	out := make([]string, len(spans))
	for i, sd := range spans {
		out[i] = sd.Name
	}
	return out
}
