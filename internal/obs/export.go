package obs

// Trace exporters: Chrome trace_event JSON for chrome://tracing (or
// ui.perfetto.dev), and the FileTrace helper the CLIs use for -trace-out.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// chromeEvent is one trace_event entry. Spans export as complete ("X")
// events with microsecond timestamps; each span gets its own tid so
// parallel shard spans render on separate rows instead of overlapping.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders traces as Chrome trace_event JSON, one process per
// trace. Load the file at chrome://tracing or ui.perfetto.dev.
func WriteChrome(w io.Writer, traces ...TraceData) error {
	var events []chromeEvent
	for pi, td := range traces {
		pid := pi + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": "trace " + td.TraceID},
		})
		for _, sd := range td.Spans {
			events = append(events, chromeEvent{
				Name: sd.Name,
				Cat:  "headroom",
				Ph:   "X",
				TS:   float64(sd.Start.UnixNano()) / 1e3,
				Dur:  float64(sd.Duration.Nanoseconds()) / 1e3,
				PID:  pid,
				TID:  sd.SpanID,
				Args: chromeArgs(sd),
			})
		}
	}
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func chromeArgs(sd SpanData) map[string]any {
	args := sd.Attrs.Map()
	if sd.ParentID != 0 {
		if args == nil {
			args = make(map[string]any, 1)
		}
		args["parent_span"] = sd.ParentID
	}
	return args
}

// FileTrace installs a fresh tracer on ctx and opens a root span named
// name. The returned finish function ends the root span and writes every
// recorded trace to path as Chrome trace_event JSON — the CLIs call it
// once, on exit, when -trace-out is set.
func FileTrace(ctx context.Context, name, path string) (context.Context, func() error) {
	tracer := NewTracer(16)
	ctx = WithTracer(ctx, tracer)
	ctx, root := StartSpan(ctx, name)
	return ctx, func() error {
		root.End()
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("trace out: %w", err)
		}
		if err := WriteChrome(f, tracer.Traces()...); err != nil {
			f.Close()
			return fmt.Errorf("trace out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace out: %w", err)
		}
		return nil
	}
}
