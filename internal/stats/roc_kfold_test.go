package stats

import (
	"math/rand"
	"testing"
)

func TestAUCPerfectClassifier(t *testing.T) {
	labels := []bool{false, false, true, true}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	auc, err := AUC(labels, scores)
	if err != nil {
		t.Fatalf("AUC: %v", err)
	}
	if auc != 1 {
		t.Errorf("AUC = %v, want 1", auc)
	}
}

func TestAUCInvertedClassifier(t *testing.T) {
	labels := []bool{true, true, false, false}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	auc, err := AUC(labels, scores)
	if err != nil {
		t.Fatalf("AUC: %v", err)
	}
	if auc != 0 {
		t.Errorf("AUC = %v, want 0", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 4000
	labels := make([]bool, n)
	scores := make([]float64, n)
	for i := range labels {
		labels[i] = rng.Intn(2) == 0
		scores[i] = rng.Float64()
	}
	auc, err := AUC(labels, scores)
	if err != nil {
		t.Fatalf("AUC: %v", err)
	}
	if auc < 0.45 || auc > 0.55 {
		t.Errorf("AUC = %v, want ~0.5 for random scores", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores identical: AUC must be exactly 0.5 by mid-rank handling.
	labels := []bool{true, false, true, false}
	scores := []float64{1, 1, 1, 1}
	auc, err := AUC(labels, scores)
	if err != nil {
		t.Fatalf("AUC: %v", err)
	}
	if !almostEqual(auc, 0.5, 1e-12) {
		t.Errorf("AUC with all ties = %v, want 0.5", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]bool{true}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := AUC(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := AUC([]bool{true, true}, []float64{1, 2}); err == nil {
		t.Error("single-class should error")
	}
}

func TestKFoldPartitions(t *testing.T) {
	tests := []struct {
		n, k int
	}{
		{10, 5}, {11, 5}, {100, 3}, {5, 5}, {7, 2},
	}
	for _, tt := range tests {
		folds, err := KFold(tt.n, tt.k, 1)
		if err != nil {
			t.Fatalf("KFold(%d, %d): %v", tt.n, tt.k, err)
		}
		if len(folds) != tt.k {
			t.Fatalf("got %d folds, want %d", len(folds), tt.k)
		}
		seen := make(map[int]int)
		for _, f := range folds {
			if len(f.Train)+len(f.Test) != tt.n {
				t.Errorf("fold sizes %d+%d != %d", len(f.Train), len(f.Test), tt.n)
			}
			for _, i := range f.Test {
				seen[i]++
			}
			// No overlap between train and test.
			inTest := make(map[int]bool, len(f.Test))
			for _, i := range f.Test {
				inTest[i] = true
			}
			for _, i := range f.Train {
				if inTest[i] {
					t.Errorf("index %d in both train and test", i)
				}
			}
		}
		// Every index is tested exactly once across folds.
		for i := 0; i < tt.n; i++ {
			if seen[i] != 1 {
				t.Errorf("index %d tested %d times, want 1", i, seen[i])
			}
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(10, 1, 0); err == nil {
		t.Error("k < 2 should error")
	}
	if _, err := KFold(3, 5, 0); err == nil {
		t.Error("n < k should error")
	}
}

func TestKFoldDeterminism(t *testing.T) {
	a, err := KFold(50, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KFold(50, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for f := range a {
		if len(a[f].Test) != len(b[f].Test) {
			t.Fatal("fold sizes differ across identical seeds")
		}
		for i := range a[f].Test {
			if a[f].Test[i] != b[f].Test[i] {
				t.Fatal("fold contents differ across identical seeds")
			}
		}
	}
}
