// Package core orchestrates the four-step capacity-planning methodology
// over a fleet trace: Measure (validate metrics, group servers), Optimize
// (fit workload→QoS models, size each pool), Model (synthetic workload) and
// Validate (offline regression gate). It is the paper's primary contribution
// assembled as a pipeline; the individual steps live in internal/measure,
// internal/optimize, internal/synth and internal/validate.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"headroom/internal/measure"
	"headroom/internal/metrics"
	"headroom/internal/optimize"
	"headroom/internal/sim"
	"headroom/internal/workload"
)

// PlanConfig controls a planning pass.
type PlanConfig struct {
	// LatencyBudgetMs is the acceptable latency increase over each pool's
	// current p95 operating point (the paper accepted ~5 ms on average).
	LatencyBudgetMs float64
	// MinR2 is the metric-validation threshold (default
	// measure.DefaultLinearR2).
	MinR2 float64
	// MaxGroups bounds server-group detection per pool (default 4).
	MaxGroups int
	// MaxReductionFrac caps per-pool savings (default 1/3, the paper's
	// practical limit).
	MaxReductionFrac float64
	// Seed drives clustering and robust fits.
	Seed int64
}

func (c PlanConfig) withDefaults() PlanConfig {
	if c.LatencyBudgetMs <= 0 {
		c.LatencyBudgetMs = 5
	}
	if c.MinR2 <= 0 {
		c.MinR2 = measure.DefaultLinearR2
	}
	if c.MaxGroups <= 0 {
		c.MaxGroups = 4
	}
	if c.MaxReductionFrac <= 0 {
		c.MaxReductionFrac = 1.0 / 3
	}
	return c
}

// PoolPlan is the planning outcome for one pool in one datacenter.
type PoolPlan struct {
	DC   string
	Pool string
	// Validation is the Step 1 metric-validation report.
	Validation measure.ValidationReport
	// Refined is true when the workload metric needed the outlier-removal
	// refinement loop before it validated.
	Refined bool
	// Groups is the number of capacity-planning server groups detected.
	Groups int
	// Model is the fitted workload model (Step 2).
	Model optimize.PoolModel
	// CurrentServers is the observed active server count at the p95
	// operating point; RecommendedServers is the right-sized count.
	CurrentServers     int
	RecommendedServers int
	// SavingsFrac is the relative reduction.
	SavingsFrac float64
	// ForecastLatencyMs is the predicted p95 latency at the recommended
	// count and reference load; BaselineLatencyMs is the current value.
	BaselineLatencyMs float64
	ForecastLatencyMs float64
	// Plannable is false when the pool failed metric validation even
	// after refinement, or had too little data — such pools keep their
	// current capacity.
	Plannable bool
	// Reason explains why a pool is not plannable.
	Reason string
}

// Plan runs Steps 1-2 for every pool in the aggregator and returns one plan
// per (pool, DC), sorted by pool then DC. Cancellation is checked between
// pools; a cancelled ctx returns ctx.Err().
func Plan(ctx context.Context, agg *metrics.Aggregator, cfg PlanConfig) ([]PoolPlan, error) {
	if agg == nil {
		return nil, errors.New("core: nil aggregator")
	}
	cfg = cfg.withDefaults()
	keys := agg.Pools()
	if len(keys) == 0 {
		return nil, errors.New("core: no pools in trace")
	}
	plans := make([]PoolPlan, 0, len(keys))
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan, err := planPool(agg, key, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: pool %s: %w", key, err)
		}
		plans = append(plans, plan)
	}
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].Pool != plans[j].Pool {
			return plans[i].Pool < plans[j].Pool
		}
		return plans[i].DC < plans[j].DC
	})
	return plans, nil
}

func planPool(agg *metrics.Aggregator, key metrics.PoolKey, cfg PlanConfig) (PoolPlan, error) {
	plan := PoolPlan{DC: key.DC, Pool: key.Pool}
	series, err := agg.PoolSeries(key.DC, key.Pool)
	if err != nil {
		return PoolPlan{}, err
	}
	if len(series) < 10 {
		plan.Reason = fmt.Sprintf("insufficient data (%d windows)", len(series))
		return plan, nil
	}

	// Step 1a: validate the workload metric, refining if needed.
	rep, err := measure.ValidateWorkloadMetric(series, cfg.MinR2)
	if err != nil {
		return PoolPlan{}, err
	}
	plan.Validation = rep
	working := series
	if cpu, err := rep.Counter("cpu"); err == nil && !cpu.Linear {
		ref, err := measure.RefineByOutlierRemoval(series, 0)
		if err != nil {
			plan.Reason = "metric refinement failed: " + err.Error()
			return plan, nil
		}
		if ref.After >= cfg.MinR2 {
			plan.Refined = true
			working = ref.Clean
			rep2, err := measure.ValidateWorkloadMetric(working, cfg.MinR2)
			if err != nil {
				return PoolPlan{}, err
			}
			plan.Validation = rep2
		} else {
			plan.Reason = fmt.Sprintf("workload metric not linear (R2 %.2f before, %.2f after refinement)", ref.Before, ref.After)
			return plan, nil
		}
	}

	// Step 1b: identify server groups.
	sums, err := agg.ServerSummaries(key.DC, key.Pool)
	if err != nil {
		return PoolPlan{}, err
	}
	grouping, err := measure.GroupServers(sums, cfg.MaxGroups, 0.6, cfg.Seed)
	if err != nil {
		return PoolPlan{}, err
	}
	plan.Groups = len(grouping.Groups)

	// Step 2: fit models and right-size.
	model, err := optimize.FitPoolModel(working)
	if err != nil {
		return PoolPlan{}, err
	}
	plan.Model = model
	obs := optimize.PoolObservation{
		Pool:    key.Pool,
		Series:  working,
		Servers: len(sums),
	}
	rows, err := optimize.SummarizeSavings([]optimize.PoolObservation{obs}, optimize.SavingsConfig{
		LatencyBudgetMs:  cfg.LatencyBudgetMs,
		MaxReductionFrac: cfg.MaxReductionFrac,
	})
	if err != nil {
		return PoolPlan{}, err
	}
	row := rows[0]

	// Reference operating point for reporting.
	var loads, totals []float64
	for _, t := range working {
		if t.Servers > 0 {
			loads = append(loads, t.RPSPerServer)
			totals = append(totals, t.TotalRPS)
		}
	}
	refLoad := percentile(loads, 95)
	refTotal := percentile(totals, 95)
	current := int(refTotal/refLoad + 0.5)
	if current < 1 {
		current = 1
	}
	recommended := int(float64(current)*(1-row.EfficiencySavings) + 0.5)
	if recommended < 1 {
		recommended = 1
	}
	fc, err := model.ForecastReduction(refTotal, current, recommended)
	if err != nil {
		return PoolPlan{}, err
	}
	plan.CurrentServers = current
	plan.RecommendedServers = recommended
	plan.SavingsFrac = row.EfficiencySavings
	plan.BaselineLatencyMs = model.Latency.Predict(refLoad)
	plan.ForecastLatencyMs = fc.LatencyMs
	plan.Plannable = true
	return plan, nil
}

// percentile is a tiny local helper to avoid exporting stats through core's
// API surface.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(rank)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// SimPlant adapts the simulator's controlled pool harness to the
// optimize.Plant interface so RSM experiments can run against it. Each
// Observe call replays the pool's organic diurnal load at the requested
// server count.
type SimPlant struct {
	// Pool is the micro-service under experiment.
	Pool sim.PoolConfig
	// DC is the datacenter whose share of traffic drives the pool.
	DC workload.Datacenter
	// NoiseFrac adds workload noise per tick.
	NoiseFrac float64
	// Seed is advanced on every Observe so successive iterations see fresh
	// (but reproducible) traffic.
	Seed int64

	calls int
}

var _ optimize.Plant = (*SimPlant)(nil)

// Observe implements optimize.Plant.
func (p *SimPlant) Observe(ctx context.Context, servers, ticks int) ([]metrics.TickStat, error) {
	if servers <= 0 {
		return nil, fmt.Errorf("core: non-positive server count %d", servers)
	}
	if ticks <= 0 {
		return nil, fmt.Errorf("core: non-positive tick count %d", ticks)
	}
	p.calls++
	gen, err := workload.NewGenerator(p.Pool.Traffic, []workload.Datacenter{p.DC}, p.Pool.Schedule,
		workload.TickDuration, p.NoiseFrac, p.Seed+int64(p.calls))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	offered := make([]float64, ticks)
	for t := 0; t < ticks; t++ {
		v, err := gen.RPS(0, t)
		if err != nil {
			return nil, err
		}
		// The plant's DC receives its fleet share of the pool's traffic.
		offered[t] = v * p.DC.Weight
	}
	recs, err := sim.SimulatePoolContext(ctx, p.Pool, p.DC.Name, offered, servers, p.Seed+int64(p.calls))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	agg := metrics.NewAggregator()
	agg.AddAll(recs)
	return agg.PoolSeries(p.DC.Name, p.Pool.Name)
}
