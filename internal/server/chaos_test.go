package server

// Chaos end-to-end tests: a real server with a deterministic fault injector
// under its record sources, exercising degraded serving, the circuit
// breaker lifecycle, readiness, and goroutine hygiene.

import (
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"headroom/internal/breaker"
	"headroom/internal/faults"
	"headroom/internal/jobs"
	"headroom/internal/leakcheck"
)

// chaosConfig sizes a partial-results server with fast source retries and
// the given injector under every job's record source.
func chaosConfig(inj *faults.Injector) Config {
	return Config{
		Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute,
		Shards: 8, PartialResults: true,
		RetryAttempts: 3, RetryBackoff: time.Millisecond,
		Faults: inj,
	}
}

// waitFor polls cond until it holds or the deadline passes. Breaker state
// is fed by job-finish callbacks that can land just after an HTTP response,
// so assertions on it must tolerate that window.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// submitSimulate posts a simulate job with ?wait=true and decodes the
// terminal envelope.
func submitSimulate(t *testing.T, base, body string) (jobView, SimulateResult) {
	t.Helper()
	code, resp := postJSON(t, base+"/v1/simulate?wait=true", body)
	if code != http.StatusOK {
		t.Fatalf("simulate = %d: %s", code, resp)
	}
	var v jobView
	if err := json.Unmarshal(resp, &v); err != nil {
		t.Fatalf("unmarshal envelope: %v", err)
	}
	if v.State != jobs.Done {
		t.Fatalf("job state = %s (%s), want done", v.State, v.Error)
	}
	var res SimulateResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	return v, res
}

// TestChaosDegradedServing is the acceptance chaos run: permanent faults in
// 2 of 8 pools, each pool its own shard. The degraded result must name
// exactly the two injured pools, the six survivors must be bit-identical to
// a fault-free run restricted to them, a fresh injector with the same seed
// must replay the exact same bytes, degraded results must never be served
// from the cache, and the server must drain cleanly without leaking a
// goroutine.
func TestChaosDegradedServing(t *testing.T) {
	leakcheck.Check(t)
	const seed = 42
	rules := []faults.Rule{{Kind: faults.Permanent, Pools: []string{"B", "F"}, At: []int{0}, Msg: "injected outage"}}
	// 8 pools across 8 shards: the round-robin deal gives every pool its
	// own shard, so a killed pool maps to exactly one failed shard.
	body := `{"days":1,"seed":1,"pools":["A","B","C","D","E","F","G","H"]}`

	s := New(chaosConfig(faults.New(seed, rules...)))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	waitFor(t, "listener", func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return true
	})

	v1, degraded := submitSimulate(t, base, body)
	if !degraded.Degraded {
		t.Fatal("result not marked degraded")
	}
	if got := degraded.FailedPools; !reflect.DeepEqual(got, []string{"B", "F"}) {
		t.Fatalf("failed_pools = %v, want [B F]", got)
	}
	if len(degraded.Failures) != 2 {
		t.Fatalf("failures = %+v, want exactly the two injured shards", degraded.Failures)
	}
	for _, f := range degraded.Failures {
		if len(f.Pools) != 1 || f.Error == "" {
			t.Fatalf("failure = %+v, want single-pool shard with its error", f)
		}
	}
	var survivors []string
	seen := map[string]bool{}
	for _, p := range degraded.Pools {
		if !seen[p.Pool] {
			seen[p.Pool] = true
			survivors = append(survivors, p.Pool)
		}
	}
	sort.Strings(survivors)
	if want := []string{"A", "C", "D", "E", "G", "H"}; !reflect.DeepEqual(survivors, want) {
		t.Fatalf("surviving pools = %v, want %v", survivors, want)
	}

	// Degraded results are never cache hits: the identical resubmission
	// recomputes.
	v2, _ := submitSimulate(t, base, body)
	if v2.State != jobs.Done {
		t.Fatalf("resubmit state = %s", v2.State)
	}
	if st := s.CacheStats(); st.Hits != 0 || st.Misses != 2 || st.Uncacheable != 2 {
		t.Fatalf("cache stats = %+v, want 2 uncached recomputations and no hits", st)
	}

	// The chaos metrics observed the injections and the degraded responses.
	_, mtext := getJSON(t, base+"/metrics")
	if n := metricValue(t, string(mtext), "capserved_injected_faults_total"); n < 2 {
		t.Errorf("injected_faults_total = %v, want >= 2", n)
	}
	if n := metricValue(t, string(mtext), `capserved_degraded_responses_total{kind="simulate"}`); n != 2 {
		t.Errorf("degraded_responses_total = %v, want 2", n)
	}

	// Clean drain: Serve must return nil after cancellation.
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve = %v, want clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}

	// Bit-identical survivors: a fault-free server over only the surviving
	// pools must produce exactly the same per-pool summaries.
	clean := New(chaosConfig(nil))
	tsClean := httptest.NewServer(clean.Handler())
	defer func() {
		tsClean.Close()
		clean.Shutdown(context.Background())
	}()
	_, cleanRes := submitSimulate(t, tsClean.URL, `{"days":1,"seed":1,"pools":["A","C","D","E","G","H"]}`)
	if cleanRes.Degraded {
		t.Fatal("fault-free run reported degraded")
	}
	if !reflect.DeepEqual(degraded.Pools, cleanRes.Pools) {
		t.Errorf("degraded run's surviving pools differ from the fault-free run")
	}

	// Reproducibility: a fresh injector with the same seed and rules
	// replays the identical degraded result, byte for byte.
	replay := New(chaosConfig(faults.New(seed, rules...)))
	tsReplay := httptest.NewServer(replay.Handler())
	defer func() {
		tsReplay.Close()
		replay.Shutdown(context.Background())
	}()
	vr, _ := submitSimulate(t, tsReplay.URL, body)
	if string(vr.Result) != string(v1.Result) {
		t.Error("same-seed replay produced different result bytes")
	}
}

// TestChaosBreakerLifecycle drives an endpoint's jobs into consecutive
// failure until its breaker opens, verifies fast-fail 503s with a derived
// Retry-After, then advances the clock so a half-open probe closes it.
func TestChaosBreakerLifecycle(t *testing.T) {
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	s := New(Config{
		Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute,
		BreakerThreshold: 2, BreakerOpenFor: 10 * time.Second, Clock: clock,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	// A valid-length forecast series containing a negative value passes
	// HTTP validation but fails the fit — a deterministic failing job.
	failing := func(mark int) string {
		series := make([]float64, 48)
		for i := range series {
			series[i] = float64(100 + mark)
		}
		series[40] = -5
		b, _ := json.Marshal(map[string]any{"series": series, "ticks_per_day": 24})
		return string(b)
	}

	for i := 0; i < 2; i++ {
		code, body := postJSON(t, ts.URL+"/v1/forecast?wait=true", failing(i))
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("failing job %d = %d: %s", i, code, body)
		}
	}
	waitFor(t, "breaker to open", func() bool {
		st, _ := s.BreakerState("forecast")
		return st == breaker.Open
	})

	// Open: submissions fast-fail 503 without queueing, with Retry-After
	// derived from the time until the half-open probe.
	code, body := postJSON(t, ts.URL+"/v1/forecast?wait=true", failing(2))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fast-fail = %d: %s", code, body)
	}
	_, mtext := getJSON(t, ts.URL+"/metrics")
	if n := metricValue(t, string(mtext), `capserved_breaker_fast_fails_total{kind="forecast"}`); n != 1 {
		t.Errorf("fast_fails = %v, want 1", n)
	}
	if n := metricValue(t, string(mtext), `capserved_breaker_transitions_total{kind="forecast",to="open"}`); n != 1 {
		t.Errorf("transitions to open = %v, want 1", n)
	}

	// Other endpoints are unaffected: breakers are per-endpoint.
	if st, _ := s.BreakerState("simulate"); st != breaker.Closed {
		t.Errorf("simulate breaker = %s, want closed", st)
	}

	// After the open interval a probe is admitted; its success closes the
	// breaker again.
	advance(11 * time.Second)
	good := buildForecastBody(t)
	code, body = postJSON(t, ts.URL+"/v1/forecast?wait=true", good)
	if code != http.StatusOK {
		t.Fatalf("probe = %d: %s", code, body)
	}
	waitFor(t, "breaker to close", func() bool {
		st, _ := s.BreakerState("forecast")
		return st == breaker.Closed
	})
	_, mtext = getJSON(t, ts.URL+"/metrics")
	if n := metricValue(t, string(mtext), `capserved_breaker_transitions_total{kind="forecast",to="half_open"}`); n != 1 {
		t.Errorf("transitions to half_open = %v, want 1", n)
	}
	if n := metricValue(t, string(mtext), `capserved_breaker_transitions_total{kind="forecast",to="closed"}`); n != 1 {
		t.Errorf("transitions to closed = %v, want 1", n)
	}
}

// TestChaosBreakerFastFailBurstNoLeak hammers an open breaker with
// concurrent submissions: every one must be rejected immediately and no
// goroutine may outlive the burst.
func TestChaosBreakerFastFailBurstNoLeak(t *testing.T) {
	leakcheck.Check(t)
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s := New(Config{
		Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute,
		BreakerThreshold: 1, BreakerOpenFor: time.Hour, Clock: clock,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	series := make([]float64, 48)
	for i := range series {
		series[i] = 100
	}
	series[40] = -5
	b, _ := json.Marshal(map[string]any{"series": series, "ticks_per_day": 24})
	if code, body := postJSON(t, ts.URL+"/v1/forecast?wait=true", string(b)); code != http.StatusUnprocessableEntity {
		t.Fatalf("failing job = %d: %s", code, body)
	}
	waitFor(t, "breaker to open", func() bool {
		st, _ := s.BreakerState("forecast")
		return st == breaker.Open
	})

	var wg sync.WaitGroup
	codes := make([]int, 30)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postJSON(t, ts.URL+"/v1/forecast", string(b))
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusServiceUnavailable {
			t.Fatalf("burst request %d = %d, want 503", i, code)
		}
	}
	if depth := s.queue.Stats().Depth; depth != 0 {
		t.Errorf("queue depth after burst = %d, want 0 (nothing queued)", depth)
	}
}

// TestFaultTransientSourceRetriedInvisibly checks the resilience layer hides
// a one-shot transient source fault completely: the job succeeds, the result
// is NOT degraded, and the retry is counted.
func TestFaultTransientSourceRetriedInvisibly(t *testing.T) {
	inj := faults.New(7, faults.Rule{Kind: faults.Transient, Pools: []string{"B"}, At: []int{0}})
	s := New(chaosConfig(inj))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	_, res := submitSimulate(t, ts.URL, `{"days":1,"seed":1,"pools":["B","D"]}`)
	if res.Degraded || len(res.FailedPools) != 0 {
		t.Fatalf("result = %+v, want complete result after in-source retry", res)
	}
	_, mtext := getJSON(t, ts.URL+"/metrics")
	if n := metricValue(t, string(mtext), "capserved_source_retries_total"); n < 1 {
		t.Errorf("source_retries_total = %v, want >= 1", n)
	}
	if st := s.CacheStats(); st.Uncacheable != 0 {
		t.Errorf("uncacheable = %d, want 0: a recovered result is cacheable", st.Uncacheable)
	}
}

// TestReadyzStates walks /readyz through ready → overloaded → draining.
func TestReadyzStates(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheSize: 4, JobTimeout: time.Minute, ReadyHighWatermark: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close() })

	code, body := getJSON(t, ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, body)
	}

	// Occupy the single worker, then park one job in the queue: depth 1
	// reaches the watermark.
	block := make(chan struct{})
	release := func() { close(block) }
	if _, err := s.queue.Submit("t", func(ctx context.Context) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return s.queue.Stats().Running == 1 })
	if _, err := s.queue.Submit("t", func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded readyz = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("overloaded readyz missing Retry-After")
	}
	var over struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&over)
	if over.Status != "overloaded" {
		t.Errorf("status = %q, want overloaded", over.Status)
	}
	release()
	waitFor(t, "queue to drain", func() bool {
		st := s.queue.Stats()
		return st.Depth == 0 && st.Running == 0
	})

	// Liveness stays OK while readiness flips to draining on shutdown.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, body = getJSON(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d: %s", code, body)
	}
	var drain struct {
		Status string `json:"status"`
	}
	json.Unmarshal(body, &drain)
	if drain.Status != "draining" {
		t.Errorf("status = %q, want draining", drain.Status)
	}
	if code, _ := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (liveness is separate)", code)
	}
}

// TestRetryAfterDerivedFromServiceRate pins the Retry-After formula: queue
// depth times observed mean service time over the worker pool, clamped.
func TestRetryAfterDerivedFromServiceRate(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheSize: 4})
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	// No completions yet: conservative 1 s fallback.
	if got := s.retryAfterSeconds(5); got != 1 {
		t.Errorf("retryAfter before any completion = %d, want 1", got)
	}
	// Mean 4 s over 2 workers with 3 queued: ceil((3+1)*4/2) = 8.
	s.rate.observe(4 * time.Second)
	if got := s.retryAfterSeconds(3); got != 8 {
		t.Errorf("retryAfter = %d, want 8", got)
	}
	// Clamped to 120 s for pathological backlogs.
	if got := s.retryAfterSeconds(1000); got != 120 {
		t.Errorf("retryAfter backlog = %d, want 120 clamp", got)
	}
	// Fast service: sub-second drains still advertise at least 1 s.
	s2 := New(Config{Workers: 4, QueueDepth: 8, CacheSize: 4})
	t.Cleanup(func() { s2.Shutdown(context.Background()) })
	s2.rate.observe(10 * time.Millisecond)
	if got := s2.retryAfterSeconds(0); got != 1 {
		t.Errorf("retryAfter fast = %d, want 1 floor", got)
	}
}

// TestRetryAfterEdgeCases pins the boundary behavior of both Retry-After
// helpers: every path must yield a value in [1, 120] — including a
// pathological EWMA mean, where the old float→int conversion overflowed to
// minInt and advertised 1 s instead of the 120 s cap.
func TestRetryAfterEdgeCases(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheSize: 4})
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	// Zero depth with a cold EWMA: still the 1 s fallback.
	if got := s.retryAfterSeconds(0); got != 1 {
		t.Errorf("retryAfter cold+zero depth = %d, want 1", got)
	}
	// Pathological mean (simulating clock weirdness feeding the EWMA): the
	// estimate overflows float→int range and must clamp to 120, not wrap.
	s.rate.observe(time.Duration(math.MaxInt64)) // ~292 years
	for i := 0; i < 8; i++ {
		s.rate.observe(time.Duration(math.MaxInt64))
	}
	if got := s.retryAfterSeconds(1 << 30); got != 120 {
		t.Errorf("retryAfter with huge mean and depth = %d, want 120 cap", got)
	}
	if got := s.retryAfterSeconds(0); got != 120 {
		t.Errorf("retryAfter with huge mean, zero depth = %d, want 120 cap", got)
	}

	// retryAfterCeil: zero, negative and sub-second durations floor to 1;
	// long ones round up exactly.
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-5 * time.Second, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{90 * time.Second, 90},
	} {
		if got := retryAfterCeil(tc.d); got != tc.want {
			t.Errorf("retryAfterCeil(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// FuzzValidateRequest fuzzes the strict request decoder: no body may panic
// it, and any accepted request must satisfy the documented invariants.
func FuzzValidateRequest(f *testing.F) {
	f.Add(`{"pool":"A","loads":[10,20,30],"change":{"latency_delta_ms":3}}`)
	f.Add(`{"pool":"B","servers":2,"loads":[1.5],"ticks_per_level":4,"seed":9,"change":{}}`)
	f.Add(`{"pool":"","loads":[]}`)
	f.Add(`{"pool":"Z","loads":[10]}`)
	f.Add(`{"loads":[3,2,1],"pool":"A"}`)
	f.Add(`not json at all`)
	f.Add(`{"pool":"A","loads":[10],"unknown_field":true}`)
	f.Add(`{"pool":"A","loads":[1e308,2e308]}`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := decodeValidate([]byte(body))
		if err != nil {
			return
		}
		if req.Pool == "" {
			t.Fatalf("accepted request with empty pool: %q", body)
		}
		if len(req.Loads) == 0 {
			t.Fatalf("accepted request with no loads: %q", body)
		}
		for i := 1; i < len(req.Loads); i++ {
			if req.Loads[i] <= req.Loads[i-1] {
				t.Fatalf("accepted non-ascending loads %v: %q", req.Loads, body)
			}
		}
		if req.Servers < 1 || req.Seed == 0 {
			t.Fatalf("accepted request without defaults applied: %+v", req)
		}
	})
}
