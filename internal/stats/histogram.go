package stats

import (
	"fmt"
	"math"
	"sort"
)

// Bin is one histogram bucket over [Lo, Hi) (the last bin is inclusive of
// its upper edge).
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Histogram is a fixed-width histogram over a closed range.
type Histogram struct {
	Bins  []Bin
	Total int
}

// NewHistogram builds a histogram of xs with n equal-width bins spanning
// [lo, hi]. Values outside the range are clamped into the edge bins, which
// matches how the paper buckets CPU utilisation (0..100%).
func NewHistogram(xs []float64, n int, lo, hi float64) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("histogram: non-positive bin count %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("histogram: empty range [%v, %v]", lo, hi)
	}
	h := &Histogram{Bins: make([]Bin, n)}
	w := (hi - lo) / float64(n)
	for i := range h.Bins {
		h.Bins[i].Lo = lo + float64(i)*w
		h.Bins[i].Hi = lo + float64(i+1)*w
	}
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		h.Bins[i].Count++
		h.Total++
	}
	return h, nil
}

// Fractions returns each bin's share of the total count. An empty histogram
// yields all zeros.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Bins))
	if h.Total == 0 {
		return out
	}
	for i, b := range h.Bins {
		out[i] = float64(b.Count) / float64(h.Total)
	}
	return out
}

// FractionAbove returns the share of observations in bins whose lower edge
// is >= x.
func (h *Histogram) FractionAbove(x float64) float64 {
	if h.Total == 0 {
		return 0
	}
	var c int
	for _, b := range h.Bins {
		if b.Lo >= x {
			c += b.Count
		}
	}
	return float64(c) / float64(h.Total)
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs. The input is copied.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("ecdf: %w", ErrEmptyInput)
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest value v with At(v) >= q, for q in (0, 1].
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// Len returns the number of observations backing the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// CDFPoint is one (x, cumulative fraction) point of a sampled CDF curve,
// used to render the paper's Figure 12-style charts.
type CDFPoint struct {
	X    float64
	Frac float64
}

// SampleCDF evaluates the ECDF at n evenly spaced points across the data
// range, returning a plot-ready curve.
func (e *ECDF) SampleCDF(n int) []CDFPoint {
	if n < 2 {
		n = 2
	}
	lo, hi := e.sorted[0], e.sorted[len(e.sorted)-1]
	out := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = CDFPoint{X: x, Frac: e.At(x)}
	}
	return out
}
