package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"headroom/internal/jobs"
	"headroom/internal/obs"
)

// spanJSON mirrors obs.SpanData's wire shape; attrs decode as a generic map
// (AttrList marshals to an object, so it can't round-trip into the slice).
type spanJSON struct {
	SpanID   uint64         `json:"span_id"`
	ParentID uint64         `json:"parent_id"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"duration_ns"`
	Attrs    map[string]any `json:"attrs"`
}

type traceJSON struct {
	TraceID string     `json:"trace_id"`
	Spans   []spanJSON `json:"spans"`
}

// TestPlanJobEndToEndObservability runs a sharded plan job through the full
// HTTP surface and asserts the acceptance criteria: the response carries a
// trace id, /debug/traces contains that trace with one span per aggregation
// shard plus the queue-wait and stage spans with consistent durations, and
// /metrics exposes a stage histogram for every stage that ran.
func TestPlanJobEndToEndObservability(t *testing.T) {
	tracer := obs.NewTracer(32)
	s := New(Config{
		Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute,
		Shards: 2, Tracer: tracer,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	// Two pools on two shards so the trace must carry two simulate.pool
	// spans.
	resp, err := http.Post(ts.URL+"/v1/plan?wait=true", "application/json",
		strings.NewReader(`{"pools":["B","D"],"days":1}`))
	if err != nil {
		t.Fatalf("POST plan: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan = %d", resp.StatusCode)
	}
	headerTrace := resp.Header.Get("X-Trace-Id")
	if headerTrace == "" {
		t.Fatal("response missing X-Trace-Id")
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id")
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	if v.State != jobs.Done {
		t.Fatalf("job state = %s: %s", v.State, v.Error)
	}
	if v.TraceID == "" {
		t.Fatal("job JSON missing trace_id")
	}
	if v.TraceID != headerTrace {
		t.Fatalf("job trace_id %q != X-Trace-Id %q", v.TraceID, headerTrace)
	}

	td := fetchTrace(t, ts.URL, v.TraceID)

	spans := map[string][]spanJSON{}
	byID := map[uint64]spanJSON{}
	for _, sd := range td.Spans {
		spans[sd.Name] = append(spans[sd.Name], sd)
		byID[sd.SpanID] = sd
	}
	for _, name := range []string{
		"jobs.job", "jobs.queued", "jobs.attempt",
		"session.simulate", "session.aggregate", "session.merge", "session.plan",
	} {
		if len(spans[name]) == 0 {
			t.Errorf("trace missing span %q (have %v)", name, spanNames(td.Spans))
		}
	}
	// One simulate.pool span per shard, each naming its pool.
	shardSpans := spans["simulate.pool"]
	if len(shardSpans) != 2 {
		t.Fatalf("simulate.pool spans = %d, want one per shard", len(shardSpans))
	}
	pools := map[string]bool{}
	for _, sd := range shardSpans {
		for _, p := range strings.Split(fmt.Sprint(sd.Attrs["pool"]), ",") {
			pools[p] = true
		}
		if sd.Attrs["records"] == nil {
			t.Errorf("shard span missing records attr: %v", sd.Attrs)
		}
	}
	if !pools["B"] || !pools["D"] {
		t.Errorf("shard spans cover pools %v, want B and D", pools)
	}
	// Queue-wait span carries the measured wait and matches the job span's
	// attribute; JSON numbers decode as float64.
	queued := spans["jobs.queued"][0]
	jobSpan := spans["jobs.job"][0]
	qw, _ := queued.Attrs["queue_wait_ns"].(float64)
	jw, _ := jobSpan.Attrs["queue_wait_ns"].(float64)
	if qw != jw {
		t.Errorf("queue_wait_ns disagree: queued span %v, job span %v", qw, jw)
	}
	if queued.Duration != time.Duration(qw) {
		t.Errorf("jobs.queued duration %d != queue_wait_ns %v", queued.Duration, qw)
	}
	// Duration consistency: every child fits inside its parent's window
	// (with a small tolerance for clock reads on either side of End).
	for _, sd := range td.Spans {
		p, ok := byID[sd.ParentID]
		if !ok {
			continue
		}
		if sd.Start.Before(p.Start.Add(-time.Millisecond)) {
			t.Errorf("span %s starts before parent %s", sd.Name, p.Name)
		}
		if end, pend := sd.Start.Add(sd.Duration), p.Start.Add(p.Duration); end.After(pend.Add(time.Millisecond)) {
			t.Errorf("span %s (ends %v) outruns parent %s (ends %v)", sd.Name, end, p.Name, pend)
		}
	}

	// Every executed stage must have a histogram series on /metrics.
	_, mbody := getJSON(t, ts.URL+"/metrics")
	metrics := string(mbody)
	for _, stage := range []string{"simulate", "aggregate", "merge", "plan"} {
		want := fmt.Sprintf(`headroom_stage_duration_seconds_count{stage="%s"}`, stage)
		line := metricLine(metrics, want)
		if line == "" {
			t.Errorf("metrics missing %s", want)
			continue
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("stage %s ran but histogram count is zero: %s", stage, line)
		}
	}
	if !strings.Contains(metrics, `headroom_simulate_pool_duration_seconds_count{pool=`) {
		t.Error("metrics missing per-pool simulate histogram")
	}
	for _, want := range []string{
		"headroom_jobs_queue_wait_seconds_count",
		"headroom_jobs_run_seconds_count",
		`capserved_http_requests_total{handler="plan"}`,
		`capserved_jobs_completed_total{kind="plan",state="done"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestRequestIDPropagationAndErrorTraceID(t *testing.T) {
	tracer := obs.NewTracer(8)
	s := New(Config{Workers: 1, QueueDepth: 4, CacheSize: 4, JobTimeout: time.Minute, Tracer: tracer})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})

	// A caller-supplied request id is echoed back, not replaced.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", strings.NewReader(`{"bad json`))
	req.Header.Set("X-Request-Id", "req-e2e-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-e2e-42" {
		t.Errorf("X-Request-Id = %q, want echo", got)
	}
	// Error bodies carry the trace id so a failing client report can be
	// matched to its trace.
	var e struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if e.TraceID == "" || e.TraceID != resp.Header.Get("X-Trace-Id") {
		t.Errorf("error body trace_id %q != header %q", e.TraceID, resp.Header.Get("X-Trace-Id"))
	}
}

func TestDebugGoroutinesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getJSON(t, ts.URL+"/debug/goroutines")
	if code != http.StatusOK {
		t.Fatalf("goroutines = %d: %s", code, body)
	}
	var g struct {
		Total      int               `json:"total"`
		Count      int               `json:"count"`
		Goroutines []json.RawMessage `json:"goroutines"`
	}
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if g.Total == 0 || g.Count != len(g.Goroutines) {
		t.Fatalf("dump = total %d count %d len %d", g.Total, g.Count, len(g.Goroutines))
	}
	// min_age filters out every young goroutine in a fresh test process.
	code, body = getJSON(t, ts.URL+"/debug/goroutines?min_age=10m")
	if code != http.StatusOK {
		t.Fatalf("filtered = %d", code)
	}
	if err := json.Unmarshal(body, &g); err != nil {
		t.Fatal(err)
	}
	if g.Count != 0 {
		t.Errorf("min_age=10m kept %d goroutines", g.Count)
	}
	code, _ = getJSON(t, ts.URL+"/debug/goroutines?min_age=banana")
	if code != http.StatusBadRequest {
		t.Errorf("bad min_age = %d, want 400", code)
	}
}

func TestDebugTracesChromeExport(t *testing.T) {
	tracer := obs.NewTracer(8)
	s := New(Config{Workers: 1, QueueDepth: 4, CacheSize: 4, JobTimeout: time.Minute, Tracer: tracer})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	code, body := postJSON(t, ts.URL+"/v1/simulate?wait=true", `{"pools":["B"],"days":1}`)
	if code != http.StatusOK {
		t.Fatalf("simulate = %d: %s", code, body)
	}
	code, body = getJSON(t, ts.URL+"/debug/traces?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome export = %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var sawComplete bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "session.simulate" {
			sawComplete = true
		}
	}
	if !sawComplete {
		t.Error("chrome export missing session.simulate complete event")
	}
}

// fetchTrace polls /debug/traces?id= until the middleware has ended the
// root span (its Duration turns nonzero) — the trace is registered at root
// start, so it is visible before the request fully unwinds.
func fetchTrace(t *testing.T, base, id string) traceJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getJSON(t, base+"/debug/traces?id="+id)
		if code == http.StatusOK {
			var out struct {
				Traces []traceJSON `json:"traces"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("unmarshal traces: %v", err)
			}
			if len(out.Traces) == 1 {
				td := out.Traces[0]
				for _, sd := range td.Spans {
					if strings.HasPrefix(sd.Name, "http.") && sd.Duration > 0 {
						return td
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func spanNames(spans []spanJSON) []string {
	out := make([]string, len(spans))
	for i, sd := range spans {
		out[i] = sd.Name
	}
	return out
}

func metricLine(out, substr string) string {
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, substr) {
			return ln
		}
	}
	return ""
}
