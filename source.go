package headroom

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"headroom/internal/metrics"
	"headroom/internal/sim"
	"headroom/internal/synth"
	"headroom/internal/trace"
)

// Source is a stream of trace records — the uniform input of every pipeline
// step. The methodology is deliberately black-box: it consumes only records,
// so any system able to produce them can be measured, planned and validated.
// Three implementations ship with the facade: the fleet simulator
// (NewSimSource), synthetic-workload replay (NewSynthSource, Step 3 of the
// paper) and in-memory trace replay (NewReplaySource, for traces read from
// disk or built by hand).
type Source interface {
	// Stream emits every record through emit in deterministic order. It
	// honours ctx: when the context is cancelled mid-stream, Stream stops
	// and returns ctx.Err(). A non-nil error from emit aborts the stream
	// and is returned as-is.
	Stream(ctx context.Context, emit func(Record) error) error
}

// ShardedSource is a Source that can split itself into disjoint sub-sources
// for parallel consumption, one (pool, datacenter) group per shard at most.
// The shards' record sets union to the full stream and every shard preserves
// the unsharded per-(pool, datacenter) emission order, which is what makes
// sharded aggregation bit-identical to sequential aggregation (see
// metrics.Aggregator.Merge).
type ShardedSource interface {
	Source
	// Shards partitions the source into at most n sub-sources. It may
	// return fewer (down to one) when the source has less parallelism
	// available than requested.
	Shards(n int) []Source
}

// simSource streams the fleet simulator: the paper's 100K-server production
// substitute.
type simSource struct {
	cfg     FleetConfig
	days    int
	actions []Action
}

// NewSimSource returns a Source that simulates the configured fleet for the
// given number of days, applying the scheduled actions. The source shards by
// pool: every stochastic stream in the simulator is seeded per pool name, so
// a pool's records are identical whether the fleet around it is simulated
// whole or split.
func NewSimSource(cfg FleetConfig, days int, actions ...Action) ShardedSource {
	return &simSource{cfg: cfg, days: days, actions: append([]Action(nil), actions...)}
}

func (s *simSource) Stream(ctx context.Context, emit func(Record) error) error {
	sm, err := sim.New(s.cfg, s.actions...)
	if err != nil {
		return err
	}
	if s.days <= 0 {
		return fmt.Errorf("headroom: non-positive simulation horizon %d days", s.days)
	}
	return sm.RunContext(ctx, s.days*sm.TicksPerDay(), emit)
}

// PoolNames lists the configured pools, attributing shard failures to pool
// names (see PoolNamer).
func (s *simSource) PoolNames() []string {
	out := make([]string, len(s.cfg.Pools))
	for i, pc := range s.cfg.Pools {
		out[i] = pc.Name
	}
	return out
}

func (s *simSource) Shards(n int) []Source {
	if n > len(s.cfg.Pools) {
		n = len(s.cfg.Pools)
	}
	if n <= 1 {
		return []Source{s}
	}
	// An invalid fleet must fail identically sharded or not: splitting a
	// config whose error spans pools (e.g. a duplicated pool name) could
	// otherwise yield shards that are individually valid. Let the unsharded
	// stream report the error.
	if err := s.cfg.Validate(); err != nil {
		return []Source{s}
	}
	// Pools are dealt round-robin in configuration order so large and small
	// pools spread across shards.
	groups := make([][]sim.PoolConfig, n)
	owner := make(map[string]int, len(s.cfg.Pools))
	for i, pc := range s.cfg.Pools {
		groups[i%n] = append(groups[i%n], pc)
		owner[pc.Name] = i % n
	}
	actions := make([][]Action, n)
	for _, a := range s.actions {
		if shard, ok := owner[a.Pool]; ok {
			actions[shard] = append(actions[shard], a)
		} else {
			// Unknown pool: keep the action on shard 0 so sim.New reports
			// the same configuration error the unsharded stream would.
			actions[0] = append(actions[0], a)
		}
	}
	out := make([]Source, n)
	for i := range groups {
		sub := s.cfg
		sub.Pools = groups[i]
		out[i] = &simSource{cfg: sub, days: s.days, actions: actions[i]}
	}
	return out
}

// synthSource streams a synthetic-workload replay (Step 3): an offline pool
// driven through a reproducible offered-load sweep.
type synthSource struct {
	pool          PoolConfig
	profile       Profile
	ticksPerLevel int
	seed          int64
}

// NewSynthSource returns a Source that replays a synthetic workload profile
// (see BuildProfile in internal/synth) against an offline pool. Each of the
// profile's load levels runs for ticksPerLevel windows.
func NewSynthSource(pool PoolConfig, profile Profile, ticksPerLevel int, seed int64) Source {
	return &synthSource{pool: pool, profile: profile, ticksPerLevel: ticksPerLevel, seed: seed}
}

// PoolNames identifies the single pool the replay drives.
func (s *synthSource) PoolNames() []string { return []string{s.pool.Name} }

func (s *synthSource) Stream(ctx context.Context, emit func(Record) error) error {
	recs, err := synth.ReplayContext(ctx, s.pool, s.profile, s.ticksPerLevel, s.seed)
	if err != nil {
		return err
	}
	return emitAll(ctx, recs, emit)
}

// replaySource streams an in-memory record slice: traces decoded from CSV /
// JSONL files or assembled by tests.
type replaySource struct {
	recs []Record
}

// NewReplaySource returns a Source that replays the given records in order.
// The slice is not copied; the caller must not mutate it while the source is
// in use. The source shards by (pool, datacenter) key, preserving per-key
// record order.
func NewReplaySource(recs []Record) ShardedSource {
	return &replaySource{recs: recs}
}

func (s *replaySource) Stream(ctx context.Context, emit func(Record) error) error {
	return emitAll(ctx, s.recs, emit)
}

// PoolNames lists the distinct pool names in the trace, in first-seen order.
func (s *replaySource) PoolNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range s.recs {
		if !seen[r.Pool] {
			seen[r.Pool] = true
			out = append(out, r.Pool)
		}
	}
	return out
}

func (s *replaySource) Shards(n int) []Source {
	// Pass 1: collect the key set only; records are not copied yet.
	seen := make(map[metrics.PoolKey]int)
	order := make([]metrics.PoolKey, 0, 8)
	for _, r := range s.recs {
		k := metrics.PoolKey{DC: r.DC, Pool: r.Pool}
		if _, ok := seen[k]; !ok {
			seen[k] = 0 // shard assigned after sorting
			order = append(order, k)
		}
	}
	if n > len(order) {
		n = len(order)
	}
	if n <= 1 {
		return []Source{s}
	}
	// Deterministic assignment independent of input order.
	sort.Slice(order, func(i, j int) bool {
		if order[i].Pool != order[j].Pool {
			return order[i].Pool < order[j].Pool
		}
		return order[i].DC < order[j].DC
	})
	for i, k := range order {
		seen[k] = i % n
	}
	// Pass 2: append each record straight to its shard. Per-key record
	// order is preserved, which is all Merge's bit-identity needs.
	shards := make([][]Record, n)
	for _, r := range s.recs {
		i := seen[metrics.PoolKey{DC: r.DC, Pool: r.Pool}]
		shards[i] = append(shards[i], r)
	}
	out := make([]Source, n)
	for i := range shards {
		out[i] = &replaySource{recs: shards[i]}
	}
	return out
}

// emitAll streams a record slice through emit with periodic cancellation
// checks.
func emitAll(ctx context.Context, recs []trace.Record, emit func(Record) error) error {
	for i, r := range recs {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := emit(r); err != nil {
			return err
		}
	}
	return ctx.Err()
}

var (
	_ ShardedSource = (*simSource)(nil)
	_ Source        = (*synthSource)(nil)
	_ ShardedSource = (*replaySource)(nil)
	_ PoolNamer     = (*simSource)(nil)
	_ PoolNamer     = (*synthSource)(nil)
	_ PoolNamer     = (*replaySource)(nil)
)

// ErrNoSource reports an operation on a session configured with neither
// WithSource nor WithFleet. Callers building services on the library (such
// as cmd/capserved) can errors.Is against it to classify the failure as a
// configuration error rather than an execution error.
var ErrNoSource = errors.New("headroom: session has no record source (configure WithSource or WithFleet)")
