// Command experiments regenerates the paper's evaluation artifacts — every
// table and figure plus the ablations — from the simulated fleet, printing
// the same rows/series the paper reports.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -fast
package main

import (
	"flag"
	"fmt"
	"os"

	"headroom/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id   = fs.String("run", "all", "experiment ID to run, or 'all'")
		seed = fs.Int64("seed", 1, "deterministic seed")
		fast = fs.Bool("fast", false, "shorten observation horizons")
		list = fs.Bool("list", false, "list experiment IDs and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}
	cfg := experiments.Config{Seed: *seed, Fast: *fast}
	if *id != "all" {
		exp, err := experiments.ByID(*id)
		if err != nil {
			return err
		}
		res, err := exp.Run(cfg)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	}
	for _, e := range experiments.Registry {
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
