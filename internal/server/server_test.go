package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"headroom/internal/jobs"
)

// newTestServer builds a server sized for tests and returns it with an
// httptest front-end.
func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, QueueDepth: 8, CacheSize: 16, JobTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func postJSON(t testing.TB, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, b
}

func getJSON(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, b
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}
	var h struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if h.Status != "ok" || h.Workers != 2 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestSubmitPlanAsyncAndPoll(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/plan", `{"pools":["B"],"days":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal envelope: %v", err)
	}
	if v.JobID == "" || v.Kind != "plan" || v.Self != "/v1/jobs/"+v.JobID {
		t.Fatalf("envelope = %+v", v)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body = getJSON(t, ts.URL+v.Self)
		if code != http.StatusOK {
			t.Fatalf("poll = %d: %s", code, body)
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("unmarshal job: %v", err)
		}
		if v.State == jobs.Done || v.State == jobs.Failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if v.State != jobs.Done {
		t.Fatalf("job failed: %s", v.Error)
	}
	var res PlanResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if len(res.Plans) != 2 { // pool B runs in two datacenters
		t.Fatalf("plans = %d, want 2", len(res.Plans))
	}
	if res.SavingsFrac <= 0 {
		t.Errorf("savings = %v, want > 0", res.SavingsFrac)
	}
}

// metricValue extracts one un-labelled (or exactly-labelled) sample from
// Prometheus exposition text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parse %s value %q: %v", name, m[1], err)
	}
	return v
}

func TestPlanCacheHitIsByteIdenticalAndCounted(t *testing.T) {
	_, ts := newTestServer(t)
	const req = `{"pools":["B"],"days":1,"seed":7}`

	code, body1 := postJSON(t, ts.URL+"/v1/plan?wait=true", req)
	if code != http.StatusOK {
		t.Fatalf("first submit = %d: %s", code, body1)
	}
	var v1 jobView
	json.Unmarshal(body1, &v1)

	// Same request with different key order and whitespace must hit.
	code, body2 := postJSON(t, ts.URL+"/v1/plan?wait=true",
		`{ "seed": 7, "days": 1, "pools": ["B"] }`)
	if code != http.StatusOK {
		t.Fatalf("second submit = %d: %s", code, body2)
	}
	var v2 jobView
	json.Unmarshal(body2, &v2)

	if !bytes.Equal(v1.Result, v2.Result) {
		t.Error("cached result differs from first computation")
	}
	if v1.JobID == v2.JobID {
		t.Error("both submissions share a job ID; every submit must create a job")
	}

	_, metricsBody := getJSON(t, ts.URL+"/metrics")
	text := string(metricsBody)
	if hits := metricValue(t, text, "capserved_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}
	if misses := metricValue(t, text, "capserved_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %v, want 1", misses)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, path, body string
	}{
		{"negative days", "/v1/simulate", `{"days":-3}`},
		{"days too large", "/v1/simulate", `{"days":31}`},
		{"unknown pool", "/v1/plan?wait=true", `{"pools":["ZZ"]}`},
		{"unknown field", "/v1/plan", `{"dayz":1}`},
		{"negative budget", "/v1/plan", `{"latency_budget_ms":-1}`},
		{"missing pool", "/v1/validate", `{"loads":[100]}`},
		{"unsorted loads", "/v1/validate", `{"pool":"B","loads":[300,100]}`},
		{"short series", "/v1/forecast", `{"series":[1,2,3],"ticks_per_day":24}`},
		{"no ticks", "/v1/forecast", `{"series":[1,2,3]}`},
		{"not json", "/v1/plan", `days=1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+tc.path, tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("code = %d, want 400: %s", code, body)
			}
		})
	}
	// Unknown-pool requests must fail fast at submit, not as failed jobs.
	_, metricsBody := getJSON(t, ts.URL+"/metrics")
	if bad := metricValue(t, string(metricsBody), "capserved_bad_requests_total"); bad != float64(len(cases)) {
		t.Errorf("bad_requests_total = %v, want %d", bad, len(cases))
	}
}

func TestUnknownPoolRejectedBeforeQueue(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/plan", `{"pools":["nope"]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("code = %d: %s", code, body)
	}
	if !strings.Contains(string(body), "unknown pools: nope") {
		t.Errorf("body = %s", body)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	code, _ := getJSON(t, ts.URL+"/v1/jobs/j-424242")
	if code != http.StatusNotFound {
		t.Errorf("code = %d, want 404", code)
	}
}

func TestValidateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/validate?wait=true",
		`{"pool":"B","servers":10,"loads":[100,300,500],"ticks_per_level":10,"seed":4,
		  "change":{"name":"noop"}}`)
	if code != http.StatusOK {
		t.Fatalf("validate = %d: %s", code, body)
	}
	var v jobView
	json.Unmarshal(body, &v)
	if v.State != jobs.Done {
		t.Fatalf("state = %s: %s", v.State, v.Error)
	}
	var res ValidateResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.Report.LatencyRegression {
		t.Error("no-op change regressed")
	}
	if !res.Report.Acceptable {
		t.Error("no-op change not acceptable")
	}
}

func TestValidateDetectsRegression(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/validate?wait=true",
		`{"pool":"B","servers":10,"loads":[100,300,500],"ticks_per_level":10,"seed":4,
		  "change":{"name":"slow build","latency_delta_ms":10}}`)
	if code != http.StatusOK {
		t.Fatalf("validate = %d: %s", code, body)
	}
	var v jobView
	json.Unmarshal(body, &v)
	var res ValidateResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !res.Report.LatencyRegression {
		t.Error("+10ms change not flagged as a latency regression")
	}
}

func TestForecastEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Three days of a rising diurnal series, 24 ticks per day.
	var series []float64
	for i := 0; i < 72; i++ {
		day := float64(i / 24)
		hour := float64(i % 24)
		series = append(series, 1000+50*day+200*hour/24)
	}
	req := map[string]any{"series": series, "ticks_per_day": 24, "horizon_days": 7}
	b, _ := json.Marshal(req)
	code, body := postJSON(t, ts.URL+"/v1/forecast?wait=true", string(b))
	if code != http.StatusOK {
		t.Fatalf("forecast = %d: %s", code, body)
	}
	var v jobView
	json.Unmarshal(body, &v)
	if v.State != jobs.Done {
		t.Fatalf("state = %s: %s", v.State, v.Error)
	}
	var res ForecastResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.GrowthPerDay <= 0 {
		t.Errorf("growth/day = %v, want > 0 for a rising series", res.GrowthPerDay)
	}
	if res.PeakForecast == nil || *res.PeakForecast <= 0 {
		t.Errorf("peak forecast = %v", res.PeakForecast)
	}
}

func TestFailedJobReports422OnWait(t *testing.T) {
	_, ts := newTestServer(t)
	// Validate a pool that exists but with loads far beyond anything the
	// ten-server pool can serve still succeeds, so instead drive a failure
	// through forecast: a valid-length series containing a negative value
	// passes HTTP validation width checks but fails the fit.
	var series []float64
	for i := 0; i < 48; i++ {
		series = append(series, 100)
	}
	series[40] = -5
	req := map[string]any{"series": series, "ticks_per_day": 24}
	b, _ := json.Marshal(req)
	code, body := postJSON(t, ts.URL+"/v1/forecast?wait=true", string(b))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("code = %d, want 422: %s", code, body)
	}
	var v jobView
	json.Unmarshal(body, &v)
	if v.State != jobs.Failed || v.Error == "" {
		t.Errorf("job = %+v, want failed with error", v)
	}
}

func TestQueueFullReturns503(t *testing.T) {
	s, ts := newTestServer(t)
	// Occupy both workers, wait until they are running, then fill the
	// pending queue with blocked jobs.
	block := make(chan struct{})
	defer close(block)
	blocked := func(ctx context.Context) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}
	for i := 0; i < 2; i++ {
		if _, err := s.queue.Submit("simulate", blocked); err != nil {
			t.Fatalf("occupy workers: %v", err)
		}
	}
	for s.queue.Stats().Running < 2 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.queue.Submit("simulate", blocked); err != nil {
			t.Fatalf("fill queue: %v", err)
		}
	}
	code, body := postJSON(t, ts.URL+"/v1/simulate", `{"days":1}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503: %s", code, body)
	}
	_, metricsBody := getJSON(t, ts.URL+"/metrics")
	if n := metricValue(t, string(metricsBody), "capserved_queue_rejections_total"); n != 1 {
		t.Errorf("queue_rejections_total = %v, want 1", n)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		"# TYPE capserved_jobs_submitted_total counter",
		"# TYPE capserved_jobs_running gauge",
		"# TYPE capserved_queue_depth gauge",
		"# TYPE capserved_cache_hits_total counter",
		"# TYPE capserved_request_duration_seconds histogram",
		`capserved_jobs_submitted_total{kind="plan"}`,
		`capserved_request_duration_seconds_bucket{handler="metrics",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestServeDrainsOnCancel(t *testing.T) {
	s := New(Config{Workers: 2, DrainTimeout: time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Wait for the listener to answer.
	for i := 0; ; i++ {
		if _, err := http.Get(base + "/healthz"); err == nil {
			break
		}
		if i > 100 {
			t.Fatal("server never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, body := postJSON(t, base+"/v1/forecast", buildForecastBody(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var v jobView
	json.Unmarshal(body, &v)

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve = %v, want nil after clean drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	// The submitted job must have been drained to completion.
	j, ok := s.queue.Get(v.JobID)
	if !ok {
		t.Fatal("job vanished during drain")
	}
	if st := j.State(); st != jobs.Done {
		t.Errorf("job state after drain = %s, want done", st)
	}
}

func buildForecastBody(t testing.TB) string {
	t.Helper()
	var series []float64
	for i := 0; i < 48; i++ {
		series = append(series, 1000+10*float64(i))
	}
	b, err := json.Marshal(map[string]any{"series": series, "ticks_per_day": 24})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// BenchmarkServePlanCached measures the cache-hit serving path end to end:
// HTTP decode, canonicalization, job scheduling and a result-cache hit.
// The first (priming) request pays the simulation; iterations must not.
func BenchmarkServePlanCached(b *testing.B) {
	s, ts := newTestServer(b)
	const req = `{"pools":["B"],"days":1}`
	code, body := postJSON(b, ts.URL+"/v1/plan?wait=true", req)
	if code != http.StatusOK {
		b.Fatalf("prime = %d: %s", code, body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _ := postJSON(b, ts.URL+"/v1/plan?wait=true", req)
		if code != http.StatusOK {
			b.Fatalf("iteration = %d", code)
		}
	}
	b.StopTimer()
	if st := s.CacheStats(); st.Hits < int64(b.N) {
		b.Fatalf("cache hits = %d, want >= %d", st.Hits, b.N)
	}
}
