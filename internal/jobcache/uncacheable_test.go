package jobcache

import "testing"

func TestUncacheableReturnedButNeverStored(t *testing.T) {
	c := New(4)
	runs := 0
	degraded := func() (any, error) {
		runs++
		return Uncacheable{Value: "partial"}, nil
	}

	v, hit, err := c.Do("k", degraded)
	if err != nil || hit {
		t.Fatalf("Do = (%v, %v, %v), want fresh execution", v, hit, err)
	}
	if v != "partial" {
		t.Fatalf("value = %v, want the unwrapped inner value", v)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("degraded result was stored in the cache")
	}

	// An identical later request recomputes instead of being served the
	// partial answer as if it were complete.
	v, hit, err = c.Do("k", degraded)
	if err != nil || hit || v != "partial" {
		t.Fatalf("second Do = (%v, %v, %v), want recomputed value", v, hit, err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
	st := c.Stats()
	if st.Uncacheable != 2 || st.Hits != 0 || st.Misses != 2 || st.Size != 0 {
		t.Errorf("stats = %+v, want 2 uncacheable misses and an empty cache", st)
	}

	// A healthy (unwrapped) result on the same key caches normally again.
	v, hit, err = c.Do("k", func() (any, error) { return "full", nil })
	if err != nil || hit || v != "full" {
		t.Fatalf("healthy Do = (%v, %v, %v)", v, hit, err)
	}
	if got, ok := c.Get("k"); !ok || got != "full" {
		t.Fatalf("healthy result not cached: (%v, %v)", got, ok)
	}
}
