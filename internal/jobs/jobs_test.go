package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsJob(t *testing.T) {
	q := New(Config{Workers: 2})
	defer q.Close(context.Background())

	j, err := q.Submit("test", func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got != 42 {
		t.Errorf("result = %v, want 42", got)
	}
	if s := j.State(); s != Done {
		t.Errorf("state = %s, want done", s)
	}
	snap := j.Snapshot()
	if snap.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", snap.Attempts)
	}
}

func TestGetByID(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())

	j, err := q.Submit("test", func(ctx context.Context) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, ok := q.Get(j.ID)
	if !ok || got != j {
		t.Fatalf("Get(%s) = %v, %v; want the submitted job", j.ID, got, ok)
	}
	if _, ok := q.Get("j-999999"); ok {
		t.Error("Get of unknown ID succeeded")
	}
}

func TestPermanentFailureDoesNotRetry(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 5, Backoff: time.Millisecond})
	defer q.Close(context.Background())

	var calls atomic.Int32
	boom := errors.New("boom")
	j, _ := q.Submit("test", func(ctx context.Context) (any, error) {
		calls.Add(1)
		return nil, boom
	})
	_, err := j.Wait(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("calls = %d, want 1 (permanent errors must not retry)", n)
	}
	if s := j.State(); s != Failed {
		t.Errorf("state = %s, want failed", s)
	}
}

func TestTransientFailureRetriesWithBackoff(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 3, Backoff: time.Millisecond})
	defer q.Close(context.Background())

	var calls atomic.Int32
	j, _ := q.Submit("test", func(ctx context.Context) (any, error) {
		if calls.Add(1) < 3 {
			return nil, Transient(errors.New("flaky"))
		}
		return "recovered", nil
	})
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got != "recovered" {
		t.Errorf("result = %v", got)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("calls = %d, want 3", n)
	}
	if a := j.Snapshot().Attempts; a != 3 {
		t.Errorf("attempts = %d, want 3", a)
	}
}

func TestTransientFailureExhaustsAttempts(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 2, Backoff: time.Millisecond})
	defer q.Close(context.Background())

	var calls atomic.Int32
	j, _ := q.Submit("test", func(ctx context.Context) (any, error) {
		calls.Add(1)
		return nil, Transient(errors.New("always flaky"))
	})
	_, err := j.Wait(context.Background())
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("calls = %d, want MaxAttempts = 2", n)
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	q := New(Config{Workers: 1, QueueDepth: 1})
	defer func() {
		close(block)
		q.Close(context.Background())
	}()

	// Occupy the single worker, then fill the depth-1 queue.
	started := make(chan struct{})
	q.Submit("test", func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	if _, err := q.Submit("test", func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	j, err := q.Submit("test", func(ctx context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if j != nil {
		t.Error("rejected submit returned a job")
	}
}

func TestJobTimeout(t *testing.T) {
	q := New(Config{Workers: 1, Timeout: 20 * time.Millisecond})
	defer q.Close(context.Background())

	j, _ := q.Submit("test", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, err := j.Wait(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	q := New(Config{Workers: 2})
	var done atomic.Int32
	var js []*Job
	for i := 0; i < 6; i++ {
		j, err := q.Submit("test", func(ctx context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			done.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		js = append(js, j)
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := done.Load(); n != 6 {
		t.Errorf("completed = %d, want 6 (Close must drain)", n)
	}
	for _, j := range js {
		if s := j.State(); s != Done {
			t.Errorf("job %s state = %s after drain", j.ID, s)
		}
	}
	if _, err := q.Submit("test", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestCloseDeadlineCancelsRunningJobs(t *testing.T) {
	q := New(Config{Workers: 1})
	j, _ := q.Submit("test", func(ctx context.Context) (any, error) {
		<-ctx.Done() // runs until the drain deadline kills it
		return nil, ctx.Err()
	})
	// Wait until the job is actually running so Close observes it in flight.
	for j.State() != Running {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want deadline exceeded", err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Error("killed job reported success")
	}
}

func TestPanicBecomesFailure(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())

	j, _ := q.Submit("test", func(ctx context.Context) (any, error) {
		panic("kaboom")
	})
	_, err := j.Wait(context.Background())
	if err == nil || j.State() != Failed {
		t.Fatalf("err = %v, state = %s; want failure", err, j.State())
	}
	// The worker must survive the panic.
	j2, _ := q.Submit("test", func(ctx context.Context) (any, error) { return "alive", nil })
	if got, err := j2.Wait(context.Background()); err != nil || got != "alive" {
		t.Fatalf("worker died after panic: %v, %v", got, err)
	}
}

func TestOnStateChangeCallback(t *testing.T) {
	var mu sync.Mutex
	var states []State
	q := New(Config{Workers: 1, OnStateChange: func(s Snapshot) {
		mu.Lock()
		states = append(states, s.State)
		mu.Unlock()
	}})
	defer q.Close(context.Background())

	j, _ := q.Submit("test", func(ctx context.Context) (any, error) { return nil, nil })
	j.Wait(context.Background())
	mu.Lock()
	defer mu.Unlock()
	if len(states) != 2 || states[0] != Running || states[1] != Done {
		t.Errorf("transitions = %v, want [running done]", states)
	}
}

func TestForget(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())

	j, _ := q.Submit("test", func(ctx context.Context) (any, error) { return nil, nil })
	j.Wait(context.Background())
	q.Forget(j.ID)
	if _, ok := q.Get(j.ID); ok {
		t.Error("job still visible after Forget")
	}
}

func TestConcurrentSubmitAndGet(t *testing.T) {
	q := New(Config{Workers: 4, QueueDepth: 256})
	defer q.Close(context.Background())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				j, err := q.Submit("test", func(ctx context.Context) (any, error) {
					return fmt.Sprintf("r%d", i), nil
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if _, ok := q.Get(j.ID); !ok {
					t.Errorf("job %s invisible right after Submit", j.ID)
					return
				}
				j.Wait(context.Background())
			}
		}(i)
	}
	wg.Wait()
}

func TestAnnotateAttachesMetadata(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close(context.Background())
	j, err := q.Submit("test", func(ctx context.Context) (any, error) {
		if !Annotate(ctx, "placement", []string{"http://w1", "http://w2"}) {
			return nil, errors.New("Annotate did not find the job in ctx")
		}
		Annotate(ctx, "node", "coord-1")
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := j.Snapshot()
	if snap.Meta["node"] != "coord-1" {
		t.Errorf("meta node = %v, want coord-1", snap.Meta["node"])
	}
	placement, ok := snap.Meta["placement"].([]string)
	if !ok || len(placement) != 2 {
		t.Errorf("meta placement = %v, want two workers", snap.Meta["placement"])
	}
	// Snapshots are copies: mutating one must not affect the job.
	snap.Meta["node"] = "tampered"
	if j.Snapshot().Meta["node"] != "coord-1" {
		t.Error("snapshot meta aliases the job's map")
	}
}

func TestAnnotateOutsideJobIsNoop(t *testing.T) {
	if Annotate(context.Background(), "k", "v") {
		t.Error("Annotate succeeded outside a job context")
	}
}
