package headroom_test

import (
	"context"
	"testing"

	"headroom"
)

func TestFacadeEndToEnd(t *testing.T) {
	ctx := context.Background()
	cfg := headroom.FleetConfig{
		DCs:               headroom.NineRegions(),
		Pools:             []headroom.PoolConfig{headroom.PoolB()},
		WorkloadNoiseFrac: 0.03,
		Seed:              1,
	}
	s, err := headroom.New(ctx,
		headroom.WithFleet(cfg),
		headroom.WithPlanConfig(headroom.PlanConfig{LatencyBudgetMs: 5, Seed: 2}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	agg, err := s.Simulate(ctx, 1)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	plans, err := s.Plan(ctx, agg)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(plans) != 2 { // pool B runs in two datacenters
		t.Fatalf("plans = %d, want 2", len(plans))
	}
	for _, p := range plans {
		if !p.Plannable {
			t.Errorf("pool %s@%s not plannable: %s", p.Pool, p.DC, p.Reason)
		}
		if p.SavingsFrac <= 0 {
			t.Errorf("pool %s@%s no savings", p.Pool, p.DC)
		}
	}
}

func TestFacadeStream(t *testing.T) {
	ctx := context.Background()
	cfg := headroom.FleetConfig{
		DCs:   headroom.NineRegions(),
		Pools: []headroom.PoolConfig{headroom.PoolD()},
		Seed:  3,
	}
	s, err := headroom.New(ctx, headroom.WithFleet(cfg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var n int
	if err := s.Stream(ctx, headroom.NewSimSource(cfg, 1), func(headroom.Record) error {
		n++
		return nil
	}); err != nil {
		t.Fatalf("Stream: %v", err)
	}
	// 960 pool-D servers x 720 windows.
	if n != 960*720 {
		t.Errorf("records = %d, want %d", n, 960*720)
	}
}

func TestFacadeValidate(t *testing.T) {
	ctx := context.Background()
	s, err := headroom.New(ctx)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Validate(ctx, headroom.ValidateConfig{
		Pool:          headroom.PoolB(),
		Servers:       10,
		Loads:         []float64{100, 300, 500},
		TicksPerLevel: 10,
		Seed:          4,
	}, headroom.Change{
		Name: "noop",
		Apply: func(rp headroom.ResponseParams) headroom.ResponseParams {
			return rp
		},
	})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rep.LatencyRegression {
		t.Error("no-op change should not regress")
	}
	if !rep.Acceptable {
		t.Error("no-op change should be acceptable")
	}
}

func TestFacadeRSM(t *testing.T) {
	ctx := context.Background()
	plant := &headroom.SimPlant{
		Pool: headroom.PoolB(),
		DC:   headroom.NineRegions()[0],
		Seed: 5,
	}
	s, err := headroom.New(ctx)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.RunRSM(ctx, plant, headroom.RSMConfig{
		InitialServers: 300,
		QoSLimitMs:     36,
		StepFrac:       0.15,
		ObserveTicks:   120,
		MaxIterations:  6,
		Seed:           6,
	})
	if err != nil {
		t.Fatalf("RunRSM: %v", err)
	}
	if res.FinalServers >= 300 {
		t.Errorf("no reduction: %d", res.FinalServers)
	}
	if res.SavingsFrac <= 0 {
		t.Errorf("savings = %v", res.SavingsFrac)
	}
}

func TestFacadeNamedPool(t *testing.T) {
	cfg := headroom.DefaultFleet(1)
	p, err := headroom.NamedPool(cfg, "B")
	if err != nil {
		t.Fatalf("NamedPool(B): %v", err)
	}
	if p.Name != "B" {
		t.Errorf("pool = %q, want B", p.Name)
	}
	if _, err := headroom.NamedPool(cfg, "nope"); err == nil {
		t.Error("NamedPool(nope) should fail")
	}
}
