// Package leakcheck asserts that tests leave no goroutines behind: chaos
// and resilience tests drive panics, cancellations and fast-fail bursts
// through the pipeline, and every one of those paths must release its
// goroutines. The helper snapshots the goroutine count at test start and
// fails the test if the count has not returned to the snapshot (with a
// grace period for connection teardown) by cleanup time.
package leakcheck

import (
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and registers a cleanup that
// fails the test if more goroutines are still running after the grace
// period. Call it first in a test so its cleanup runs last (after server
// and client shutdown registered later). Not compatible with t.Parallel:
// sibling tests' goroutines would pollute the count.
func Check(t testing.TB) {
	t.Helper()
	start := runtime.NumGoroutine()
	t.Cleanup(func() {
		if err := Settle(start, 5*time.Second); err != nil {
			t.Error(err)
		}
	})
}

// Settle waits up to grace for the goroutine count to return to start and
// returns an error (with parsed stacks) if it never does. It is the
// non-testing half of Check, usable from tools like cmd/capcheck that need
// leak detection outside a *testing.T.
func Settle(start int, grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var n int
	for {
		// Idle HTTP keep-alive connections park client goroutines; drop
		// them before each count — a connection may become idle only
		// after the previous sweep.
		http.DefaultClient.CloseIdleConnections()
		n = runtime.NumGoroutine()
		if n <= start {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("leakcheck: %d goroutines at settle, %d at start (%s); stacks:\n%s",
		n, start, summarize(ParseStacks(buf)), buf)
}
