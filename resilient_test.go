package headroom_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"headroom"
)

// scriptedSource deterministically replays recs, failing each attempt
// according to failures: failures[attempt-1] = (#records to emit before
// failing, error to fail with). Attempts beyond the script succeed.
type scriptedSource struct {
	recs     []headroom.Record
	failures []scriptedFailure
	attempts int
}

type scriptedFailure struct {
	after int
	err   error
}

func (s *scriptedSource) Stream(ctx context.Context, emit func(headroom.Record) error) error {
	attempt := s.attempts
	s.attempts++
	for i, r := range s.recs {
		if attempt < len(s.failures) && i == s.failures[attempt].after {
			return s.failures[attempt].err
		}
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

func nRecords(n int) []headroom.Record {
	recs := make([]headroom.Record, n)
	for i := range recs {
		recs[i] = headroom.Record{Tick: i, DC: "DC 1", Pool: "A", Server: "s0", Online: true, RPS: float64(i)}
	}
	return recs
}

// fastRetry keeps test retries in the microsecond range.
var fastRetry = headroom.RetryPolicy{MaxAttempts: 3, Backoff: time.Microsecond, MaxBackoff: time.Millisecond}

func TestResilientSourceRetriesTransientExactlyOnce(t *testing.T) {
	src := &scriptedSource{
		recs: nRecords(5),
		failures: []scriptedFailure{
			{after: 2, err: headroom.Transient(errors.New("blip 1"))},
			{after: 4, err: headroom.Transient(errors.New("blip 2"))},
		},
	}
	var retries []int
	policy := fastRetry
	policy.OnRetry = func(attempt int, err error) { retries = append(retries, attempt) }
	rs := headroom.ResilientSource(src, policy)

	var got []int
	err := rs.Stream(context.Background(), func(r headroom.Record) error {
		got = append(got, r.Tick)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream = %v, want nil after retries", err)
	}
	// Each record exactly once, in order, despite two mid-stream failures.
	if len(got) != 5 {
		t.Fatalf("records = %v, want 5 exactly-once records", got)
	}
	for i, tick := range got {
		if tick != i {
			t.Fatalf("records = %v, want in-order ticks 0..4", got)
		}
	}
	if src.attempts != 3 {
		t.Errorf("attempts = %d, want 3", src.attempts)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

func TestResilientSourcePermanentNotRetried(t *testing.T) {
	boom := errors.New("disk on fire")
	src := &scriptedSource{recs: nRecords(3), failures: []scriptedFailure{{after: 1, err: boom}}}
	rs := headroom.ResilientSource(src, fastRetry)
	err := rs.Stream(context.Background(), func(headroom.Record) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the permanent error", err)
	}
	if src.attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry of permanent errors)", src.attempts)
	}
}

func TestResilientSourceExhaustsAttempts(t *testing.T) {
	always := headroom.Transient(errors.New("still down"))
	src := &scriptedSource{recs: nRecords(2), failures: []scriptedFailure{
		{after: 0, err: always}, {after: 0, err: always}, {after: 0, err: always}, {after: 0, err: always},
	}}
	rs := headroom.ResilientSource(src, fastRetry)
	err := rs.Stream(context.Background(), func(headroom.Record) error { return nil })
	if !headroom.IsTransient(err) {
		t.Fatalf("err = %v, want the transient error surfaced after exhaustion", err)
	}
	if src.attempts != 3 {
		t.Errorf("attempts = %d, want MaxAttempts=3", src.attempts)
	}
}

func TestResilientSourceConsumerErrorNotRetried(t *testing.T) {
	src := &scriptedSource{recs: nRecords(3)}
	rs := headroom.ResilientSource(src, fastRetry)
	sentinel := errors.New("consumer said stop")
	err := rs.Stream(context.Background(), func(r headroom.Record) error {
		if r.Tick == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the consumer error as-is", err)
	}
	if src.attempts != 1 {
		t.Errorf("attempts = %d, want 1 (consumer errors are not source failures)", src.attempts)
	}
}

// stallingSource blocks until the context is cancelled on its first attempt
// and streams cleanly on later ones.
type stallingSource struct {
	recs     []headroom.Record
	attempts int
}

func (s *stallingSource) Stream(ctx context.Context, emit func(headroom.Record) error) error {
	s.attempts++
	if s.attempts == 1 {
		<-ctx.Done()
		return ctx.Err()
	}
	for _, r := range s.recs {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

func TestResilientSourceAttemptTimeoutUnsticksStall(t *testing.T) {
	src := &stallingSource{recs: nRecords(3)}
	policy := fastRetry
	policy.AttemptTimeout = 20 * time.Millisecond
	rs := headroom.ResilientSource(src, policy)
	var got int
	err := rs.Stream(context.Background(), func(headroom.Record) error { got++; return nil })
	if err != nil {
		t.Fatalf("Stream = %v, want nil after the stalled attempt is retried", err)
	}
	if got != 3 || src.attempts != 2 {
		t.Errorf("records = %d attempts = %d, want 3 records over 2 attempts", got, src.attempts)
	}
}

type panicSource struct{}

func (panicSource) Stream(context.Context, func(headroom.Record) error) error {
	panic("wild pointer")
}

func TestResilientSourcePanicBecomesPermanentError(t *testing.T) {
	rs := headroom.ResilientSource(panicSource{}, fastRetry)
	err := rs.Stream(context.Background(), func(headroom.Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want recovered panic error", err)
	}
}

func TestResilientSourceCancellationWins(t *testing.T) {
	always := headroom.Transient(errors.New("down"))
	src := &scriptedSource{recs: nRecords(1), failures: []scriptedFailure{
		{after: 0, err: always}, {after: 0, err: always}, {after: 0, err: always},
	}}
	policy := fastRetry
	policy.Backoff = time.Hour // the retry sleep must yield to cancellation
	rs := headroom.ResilientSource(src, policy)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := rs.Stream(ctx, func(headroom.Record) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ctx deadline", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry backoff ignored context cancellation")
	}
}

func TestResilientSourcePreservesShardingAndPoolNames(t *testing.T) {
	recs := []headroom.Record{
		{Tick: 0, DC: "DC 1", Pool: "A", Server: "s0", Online: true},
		{Tick: 0, DC: "DC 1", Pool: "B", Server: "s0", Online: true},
	}
	rs := headroom.ResilientSource(headroom.NewReplaySource(recs), fastRetry)
	sh, ok := rs.(headroom.ShardedSource)
	if !ok {
		t.Fatal("resilient wrapper lost ShardedSource")
	}
	shards := sh.Shards(2)
	if len(shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(shards))
	}
	pn, ok := rs.(headroom.PoolNamer)
	if !ok {
		t.Fatal("resilient wrapper lost PoolNamer")
	}
	if names := pn.PoolNames(); len(names) != 2 {
		t.Fatalf("PoolNames = %v, want both pools", names)
	}
}
