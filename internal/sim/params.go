// Package sim is a discrete-time simulator of a global online service:
// datacenters containing micro-service server pools whose servers respond to
// offered load with CPU, latency, secondary resource counters and an
// availability state, in 120-second windows.
//
// It is the substitute for the production fleet the paper measured (100K+
// servers, 9 regions, 90 days, 30 PB of counters). The capacity-planning
// methodology in internal/measure and internal/optimize treats the simulator
// as a black box: it consumes only the emitted trace records, never the
// ground-truth parameters configured here.
package sim

import (
	"errors"
	"fmt"
	"time"

	"headroom/internal/workload"
)

// Generation describes a hardware generation present in a pool. The paper's
// Figure 3 shows a pool whose (p5, p95) CPU scatter forms two clusters
// because newer, more powerful servers run the same workload at lower
// utilisation.
type Generation struct {
	// Name identifies the generation in trace records.
	Name string
	// Share is the fraction of the pool's servers on this generation.
	// Shares are normalised across the pool's generations.
	Share float64
	// CPUFactor scales the CPU response (slope and intercept); newer
	// hardware has a factor below 1.
	CPUFactor float64
}

// ResponseParams is the ground-truth response model of one micro-service's
// servers. The methodology must rediscover these relationships from traces.
type ResponseParams struct {
	// CPUSlope is %CPU per request/second/server; CPUIntercept is the idle
	// baseline. The paper's pool B fit was cpu = 0.028*rps + 1.37.
	CPUSlope     float64
	CPUIntercept float64
	// CPUNoise is the standard deviation of additive Gaussian CPU noise.
	CPUNoise float64

	// LatQuad holds [a0, a1, a2] of the truth p95-latency quadratic
	// lat = a2*rps^2 + a1*rps + a0 (milliseconds). A negative a1 produces
	// the elevated latency at low workload the paper attributes to cache
	// priming and managed-code compilation.
	LatQuad [3]float64
	// LatNoise is the standard deviation of additive Gaussian latency
	// noise (ms).
	LatNoise float64

	// Secondary counters (Figure 2 set).
	NetBytesPerReq   float64 // network bytes per request
	NetPktsPerReq    float64 // packets per request
	MemPagesBase     float64 // max of uniform paging noise (pages/sec)
	DiskBytesPerPage float64 // disk read bytes per paged page
	DiskQueueBase    float64 // mean disk queue length
	ErrorRate        float64 // mean errors per window

	// SpikeProb is the per-server per-window probability of a transient
	// CPU spike (process restart, cache refill); SpikeAmp is its maximum
	// amplitude in CPU percentage points. The paper found such spikes rare
	// (<0.1% of samples above 40% CPU).
	SpikeProb float64
	SpikeAmp  float64

	// Background models a periodic secondary workload sharing the server —
	// the paper's example was log uploads of many GB/hour whose resource
	// spikes made the primary workload metric look uncorrelated until the
	// effect was identified and removed (§II-A1). Every
	// BackgroundPeriodTicks, for BackgroundDurTicks windows, the server
	// burns BackgroundCPU extra CPU and BackgroundNetBytes extra network
	// bytes, uncorrelated with request load.
	BackgroundPeriodTicks int
	BackgroundDurTicks    int
	BackgroundCPU         float64
	BackgroundNetBytes    float64
}

// Validate checks the parameters are physically sensible.
func (p ResponseParams) Validate() error {
	if p.CPUSlope < 0 {
		return fmt.Errorf("sim: negative CPU slope %v", p.CPUSlope)
	}
	if p.CPUIntercept < 0 {
		return fmt.Errorf("sim: negative CPU intercept %v", p.CPUIntercept)
	}
	if p.CPUNoise < 0 || p.LatNoise < 0 {
		return errors.New("sim: negative noise")
	}
	if p.SpikeProb < 0 || p.SpikeProb > 1 {
		return fmt.Errorf("sim: spike probability %v outside [0,1]", p.SpikeProb)
	}
	if p.BackgroundPeriodTicks < 0 || p.BackgroundDurTicks < 0 {
		return errors.New("sim: negative background workload timing")
	}
	if p.BackgroundDurTicks > 0 && p.BackgroundPeriodTicks < p.BackgroundDurTicks {
		return fmt.Errorf("sim: background duration %d exceeds period %d",
			p.BackgroundDurTicks, p.BackgroundPeriodTicks)
	}
	return nil
}

// AvailabilityProfile models why servers are offline. The paper (§III-B2)
// found fleet-average availability of 83%, with modes at 85% (heavy
// deployment churn) and 98% (well-managed pools, ~2% infrastructure
// maintenance), and pools repurposed off-peak for offline validation
// dropping below 80%.
type AvailabilityProfile struct {
	// PlannedDailyFrac is the fraction of each day each server spends in
	// planned maintenance (deployments: drain, update, restart). Windows
	// are staggered across servers so the pool never drains at once.
	PlannedDailyFrac float64
	// RepurposedOffPeakFrac is the additional fraction of the local day
	// the server is lent out for offline work during the traffic trough.
	RepurposedOffPeakFrac float64
	// IncidentProb is the per-day probability of a pool-wide incident in
	// one datacenter.
	IncidentProb float64
	// IncidentFrac is the fraction of the pool's servers an incident takes
	// offline.
	IncidentFrac float64
	// IncidentTicks is the incident duration in ticks.
	IncidentTicks int
}

// Validate checks the profile is a valid set of fractions.
func (a AvailabilityProfile) Validate() error {
	for _, f := range []float64{a.PlannedDailyFrac, a.RepurposedOffPeakFrac, a.IncidentProb, a.IncidentFrac} {
		if f < 0 || f > 1 {
			return fmt.Errorf("sim: availability fraction %v outside [0,1]", f)
		}
	}
	if a.PlannedDailyFrac+a.RepurposedOffPeakFrac > 1 {
		return errors.New("sim: combined offline fractions exceed a full day")
	}
	if a.IncidentTicks < 0 {
		return errors.New("sim: negative incident duration")
	}
	return nil
}

// PoolConfig describes one micro-service pool.
type PoolConfig struct {
	// Name is the pool identifier ("A".."I" for the paper's pools).
	Name string
	// Description matches the paper's Table I.
	Description string
	// Servers is the nominal server count per datacenter name.
	Servers map[string]int
	// Response is the truth response model.
	Response ResponseParams
	// Generations lists the hardware generations in the pool. Empty means
	// a single generation with factor 1.
	Generations []Generation
	// Availability is the pool's maintenance behaviour.
	Availability AvailabilityProfile
	// Traffic is the pool's global workload pattern (mean total RPS across
	// all datacenters, peak/trough ratio, peak hour).
	Traffic workload.Pattern
	// Schedule holds pool-specific traffic events (composed with the
	// fleet-wide schedule).
	Schedule *workload.Schedule
	// DCLatencyDelta adds a per-datacenter latency offset (ms); the paper
	// notes pools can exhibit different performance characteristics per
	// datacenter (its pool D behaved ~7 ms slower in DC 4).
	DCLatencyDelta map[string]float64
	// Mix is the pool's production request mix (used by the synthetic
	// workload step).
	Mix workload.Mix
}

// Validate checks the pool configuration.
func (p PoolConfig) Validate(dcs []workload.Datacenter) error {
	if p.Name == "" {
		return errors.New("sim: pool with empty name")
	}
	if len(p.Servers) == 0 {
		return fmt.Errorf("sim: pool %s has no servers", p.Name)
	}
	known := make(map[string]bool, len(dcs))
	for _, dc := range dcs {
		known[dc.Name] = true
	}
	for dc, n := range p.Servers {
		if !known[dc] {
			return fmt.Errorf("sim: pool %s references unknown datacenter %q", p.Name, dc)
		}
		if n <= 0 {
			return fmt.Errorf("sim: pool %s has %d servers in %s", p.Name, n, dc)
		}
	}
	if err := p.Response.Validate(); err != nil {
		return fmt.Errorf("pool %s: %w", p.Name, err)
	}
	if err := p.Availability.Validate(); err != nil {
		return fmt.Errorf("pool %s: %w", p.Name, err)
	}
	var share float64
	for _, g := range p.Generations {
		if g.Share < 0 {
			return fmt.Errorf("sim: pool %s generation %s has negative share", p.Name, g.Name)
		}
		if g.CPUFactor <= 0 {
			return fmt.Errorf("sim: pool %s generation %s has non-positive CPU factor", p.Name, g.Name)
		}
		share += g.Share
	}
	if len(p.Generations) > 0 && share <= 0 {
		return fmt.Errorf("sim: pool %s generations have zero total share", p.Name)
	}
	return nil
}

// FleetConfig describes the whole simulated service.
type FleetConfig struct {
	// DCs is the datacenter topology.
	DCs []workload.Datacenter
	// Pools is the set of micro-service pools.
	Pools []PoolConfig
	// Tick is the metric window duration; defaults to 120 s.
	Tick time.Duration
	// WorkloadNoiseFrac is the relative noise on offered load per tick.
	WorkloadNoiseFrac float64
	// Schedule holds fleet-wide traffic events (natural experiments).
	Schedule *workload.Schedule
	// Seed drives every stochastic component deterministically.
	Seed int64
}

// Validate checks the fleet configuration.
func (c FleetConfig) Validate() error {
	if len(c.DCs) == 0 {
		return errors.New("sim: no datacenters")
	}
	if len(c.Pools) == 0 {
		return errors.New("sim: no pools")
	}
	seen := make(map[string]bool, len(c.Pools))
	for _, p := range c.Pools {
		if seen[p.Name] {
			return fmt.Errorf("sim: duplicate pool %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Validate(c.DCs); err != nil {
			return err
		}
	}
	return nil
}
