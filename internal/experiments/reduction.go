package experiments

import (
	"context"
	"fmt"

	"headroom/internal/metrics"
	"headroom/internal/optimize"
	"headroom/internal/sim"
	"headroom/internal/stats"
	"headroom/internal/workload"
)

// reductionRun executes one of the paper's production server-reduction
// experiments against the simulator and returns the per-stage series.
type reductionRun struct {
	pool        sim.PoolConfig
	dc          string
	original    []metrics.TickStat
	reduced     []metrics.TickStat
	origServers int
	redServers  int
}

// runReduction simulates a pool, then applies a capacity reduction plus the
// confounds the paper reports (organic traffic growth during the experiment
// and, for pool B, a deployment shifting the CPU intercept).
func runReduction(ctx context.Context, pool sim.PoolConfig, dc string, reduceFrac, surgeFrac, interceptShift float64,
	origTicks, redTicks int, seed int64) (*reductionRun, error) {
	origServers := pool.Servers[dc]
	if origServers == 0 {
		return nil, fmt.Errorf("experiments: pool %s not in %s", pool.Name, dc)
	}
	redServers := int(float64(origServers) * (1 - reduceFrac))

	// Organic traffic increase during the reduced stage.
	if surgeFrac > 0 {
		ev := workload.Event{
			Name:      "organic-growth",
			StartTick: origTicks,
			EndTick:   origTicks + redTicks,
			Multipliers: map[string]float64{
				dc: 1 + surgeFrac,
			},
		}
		sched, err := workload.NewSchedule(append(pool.Schedule.Events(), ev)...)
		if err != nil {
			return nil, err
		}
		pool.Schedule = sched
	}

	actions := []sim.Action{
		{Pool: pool.Name, DC: dc, Tick: origTicks, SetServers: redServers},
	}
	if interceptShift != 0 {
		actions = append(actions, sim.Action{
			Pool: pool.Name, DC: dc, Tick: origTicks, CPUInterceptDelta: interceptShift,
		})
	}
	agg, err := poolAggregator(ctx, pool, seed, origTicks+redTicks, actions...)
	if err != nil {
		return nil, err
	}
	series, err := agg.PoolSeries(dc, pool.Name)
	if err != nil {
		return nil, err
	}
	run := &reductionRun{pool: pool, dc: dc, origServers: origServers, redServers: redServers}
	for _, ts := range series {
		if ts.Tick < origTicks {
			run.original = append(run.original, ts)
		} else {
			run.reduced = append(run.reduced, ts)
		}
	}
	return run, nil
}

func loads(series []metrics.TickStat) []float64 {
	out := make([]float64, 0, len(series))
	for _, t := range series {
		out = append(out, t.RPSPerServer)
	}
	return out
}

// stageTable builds a Table II/III-style percentile comparison.
func stageTable(run *reductionRun, reduceLabel string) *Result {
	op := stats.Percentiles(loads(run.original), 50, 75, 95)
	rp := stats.Percentiles(loads(run.reduced), 50, 75, 95)
	res := &Result{
		Header: []string{"experiment_stage", "p50_rps", "p75_rps", "p95_rps"},
		Rows: [][]string{
			{"Original Server Count", f1(op[0]), f1(op[1]), f1(op[2])},
			{reduceLabel, f1(rp[0]), f1(rp[1]), f1(rp[2])},
			{"% Change", pct(rp[0]/op[0] - 1), pct(rp[1]/op[1] - 1), pct(rp[2]/op[2] - 1)},
		},
	}
	res.Metric("orig_servers", float64(run.origServers))
	res.Metric("reduced_servers", float64(run.redServers))
	res.Metric("p95_rps_original", op[2])
	res.Metric("p95_rps_reduced", rp[2])
	res.Metric("p95_change_frac", rp[2]/op[2]-1)
	return res
}

// poolBRun is the shared pool-B experiment behind Table II and Figures 8-9:
// a 30% reduction in DC 1 coinciding with a production traffic increase and
// a deployment that shifts the CPU intercept (the paper's observed 1.37 ->
// 1.7 confound).
func poolBRun(ctx context.Context, cfg Config) (*reductionRun, error) {
	origTicks, redTicks := 5*720, 3*720 // 5 weekdays original, 3 days reduced
	if cfg.Fast {
		origTicks, redTicks = 720, 720
	}
	return runReduction(ctx, sim.PoolB(), "DC 1", 0.30, 0.05, 0.33, origTicks, redTicks, cfg.Seed+100)
}

// poolDRun backs Table III and Figures 10-11: a 10% reduction of the
// routing pool for two days, with a 10% organic load shift.
func poolDRun(ctx context.Context, cfg Config) (*reductionRun, error) {
	origTicks, redTicks := 2*720, 2*720
	if cfg.Fast {
		origTicks, redTicks = 720, 720
	}
	return runReduction(ctx, sim.PoolD(), "DC 1", 0.10, 0.10, 0, origTicks, redTicks, cfg.Seed+200)
}

// Table2 reproduces the paper's Table II (pool B, paper values: p95 376.8 ->
// 540.3, +43%).
func Table2(ctx context.Context, cfg Config) (*Result, error) {
	run, err := poolBRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res := stageTable(run, "30% Server Reduction")
	res.ID = "table2"
	res.Title = "Pool B RPS/server percentiles across experiment stages"
	res.Notes = append(res.Notes,
		"paper: p50 249.5->390.4 (+56%), p75 309.3->461.1 (+49%), p95 376.8->540.3 (+43%)")
	return res, nil
}

// Table3 reproduces Table III (pool D, paper: p95 77.7 -> 94.9, +22%).
func Table3(ctx context.Context, cfg Config) (*Result, error) {
	run, err := poolDRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res := stageTable(run, "10% Server Reduction")
	res.ID = "table3"
	res.Title = "Pool D RPS/server percentiles across experiment stages"
	res.Notes = append(res.Notes,
		"paper: p50 56.8->63.5 (+12%), p75 74.8->89.0 (+19%), p95 77.7->94.9 (+22%)")
	return res, nil
}

// cpuFigure builds the Figure 8/10 artifact: per-stage linear CPU fits plus
// the forecast check at the reduced stage's p95 load.
func cpuFigure(run *reductionRun) (*Result, error) {
	origFit, err := fitCPU(run.original)
	if err != nil {
		return nil, err
	}
	redFit, err := fitCPU(run.reduced)
	if err != nil {
		return nil, err
	}
	redP95 := stats.Percentile(loads(run.reduced), 95)
	forecast := origFit.Predict(redP95)

	// Observed CPU near the p95 load of the reduced stage.
	observed := meanNear(run.reduced, redP95, 0.05, func(t metrics.TickStat) float64 { return t.CPUMean })

	res := &Result{
		Header: []string{"stage", "fit", "R2", "N"},
		Rows: [][]string{
			{"Original Server Count", fmt.Sprintf("y = %.4g*x + %.4g", origFit.Slope, origFit.Intercept), f3(origFit.R2), fmt.Sprintf("%d", origFit.N)},
			{"Reduced Server Count", fmt.Sprintf("y = %.4g*x + %.4g", redFit.Slope, redFit.Intercept), f3(redFit.R2), fmt.Sprintf("%d", redFit.N)},
		},
	}
	res.Metric("orig_slope", origFit.Slope)
	res.Metric("orig_intercept", origFit.Intercept)
	res.Metric("orig_R2", origFit.R2)
	res.Metric("forecast_cpu_at_reduced_p95", forecast)
	res.Metric("observed_cpu_at_reduced_p95", observed)
	return res, nil
}

// latencyFigure builds the Figure 9/11 artifact: the original-stage
// quadratic latency fit and its forecast against the observed reduced-stage
// latency.
func latencyFigure(run *reductionRun) (*Result, error) {
	quad, err := fitLatency(run.original)
	if err != nil {
		return nil, err
	}
	redP95 := stats.Percentile(loads(run.reduced), 95)
	forecast := quad.Predict(redP95)
	observed := meanNear(run.reduced, redP95, 0.05, func(t metrics.TickStat) float64 { return t.LatencyMean })

	res := &Result{
		Header: []string{"model", "value"},
		Rows: [][]string{
			{"quadratic fit", quad.String()},
			{"fit R2", f3(quad.R2)},
			{"reduced-stage p95 RPS/server", f1(redP95)},
			{"forecast latency (ms)", f2(forecast)},
			{"observed latency (ms)", f2(observed)},
		},
	}
	res.Metric("a2", quad.Coeffs[2])
	res.Metric("a1", quad.Coeffs[1])
	res.Metric("a0", quad.Coeffs[0])
	res.Metric("forecast_latency_ms", forecast)
	res.Metric("observed_latency_ms", observed)
	res.Metric("forecast_abs_error_ms", abs(forecast-observed))
	return res, nil
}

func fitCPU(series []metrics.TickStat) (stats.LinearFit, error) {
	var xs, ys []float64
	for _, t := range series {
		if t.Servers == 0 {
			continue
		}
		xs = append(xs, t.RPSPerServer)
		ys = append(ys, t.CPUMean)
	}
	return stats.LinearRegression(xs, ys)
}

func fitLatency(series []metrics.TickStat) (stats.Polynomial, error) {
	var xs, ys []float64
	for _, t := range series {
		if t.Servers == 0 {
			continue
		}
		xs = append(xs, t.RPSPerServer)
		ys = append(ys, t.LatencyMean)
	}
	return stats.PolyFit(xs, ys, 2)
}

// meanNear averages get(t) over windows whose load is within relTol of ref.
func meanNear(series []metrics.TickStat, ref, relTol float64, get func(metrics.TickStat) float64) float64 {
	var sum float64
	var n int
	for _, t := range series {
		if t.Servers == 0 {
			continue
		}
		if abs(t.RPSPerServer-ref) <= relTol*ref {
			sum += get(t)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Fig8 reproduces Figure 8. Paper: original fit y = 0.028x + 1.37
// (R2 0.984), forecast 16.5% CPU at 540 RPS, measured 17.4% (the intercept
// shifted with a deployment).
func Fig8(ctx context.Context, cfg Config) (*Result, error) {
	run, err := poolBRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res, err := cpuFigure(run)
	if err != nil {
		return nil, err
	}
	res.ID = "fig8"
	res.Title = "Pool B %CPU vs RPS/server, original vs 30% reduction"
	res.Notes = append(res.Notes,
		"paper: y = 0.028x + 1.37 (R2 0.984); reduced stage intercept rose to 1.7 with a deployment — the same confound is injected here")
	return res, nil
}

// Fig9 reproduces Figure 9. Paper: quadratic 4.028e-5x^2 - 0.031x + 36.68,
// forecast 31.5 ms vs measured 30.9 ms.
func Fig9(ctx context.Context, cfg Config) (*Result, error) {
	run, err := poolBRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res, err := latencyFigure(run)
	if err != nil {
		return nil, err
	}
	res.ID = "fig9"
	res.Title = "Pool B p95 latency vs RPS/server with quadratic forecast"
	res.Notes = append(res.Notes, "paper: forecast 31.5 ms, measured 30.9 ms")
	return res, nil
}

// Fig10 reproduces Figure 10. Paper: y = 0.0916x + 5.006 (R2 0.940),
// forecast 13.7% at 94.9 RPS, measured 13.3%.
func Fig10(ctx context.Context, cfg Config) (*Result, error) {
	run, err := poolDRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res, err := cpuFigure(run)
	if err != nil {
		return nil, err
	}
	res.ID = "fig10"
	res.Title = "Pool D %CPU vs RPS/server, original vs 10% reduction"
	res.Notes = append(res.Notes, "paper: y = 0.0916x + 5.006 (R2 0.940); forecast 13.7%, observed 13.3%")
	return res, nil
}

// Fig11 reproduces Figure 11 and the DC 4 replication. Paper: quadratic
// 4.66e-3x^2 - 0.80x + 86.50 (R2 0.90), forecast 52.6 ms vs observed
// 50.7 ms; the DC 4 replication shifted 59 -> 61 ms at +29% RPS.
func Fig11(ctx context.Context, cfg Config) (*Result, error) {
	run, err := poolDRun(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res, err := latencyFigure(run)
	if err != nil {
		return nil, err
	}
	res.ID = "fig11"
	res.Title = "Pool D p95 latency vs RPS/server with quadratic forecast"
	res.Notes = append(res.Notes, "paper: forecast 52.6 ms, observed 50.7 ms")

	// DC 4 replication with a 29% load increase.
	origTicks, redTicks := 2*720, 2*720
	if cfg.Fast {
		origTicks, redTicks = 720, 720
	}
	rep, err := runReduction(ctx, sim.PoolD(), "DC 4", 0.10, 0.17, 0, origTicks, redTicks, cfg.Seed+300)
	if err != nil {
		return nil, err
	}
	repQuad, err := fitLatency(rep.original)
	if err != nil {
		return nil, err
	}
	repP95 := stats.Percentile(loads(rep.reduced), 95)
	origP95 := stats.Percentile(loads(rep.original), 95)
	res.Metric("dc4_forecast_latency_ms", repQuad.Predict(repP95))
	res.Metric("dc4_observed_latency_ms",
		meanNear(rep.reduced, repP95, 0.05, func(t metrics.TickStat) float64 { return t.LatencyMean }))
	res.Metric("dc4_baseline_latency_ms", repQuad.Predict(origP95))
	res.Metric("dc4_rps_increase_frac", repP95/origP95-1)
	res.Notes = append(res.Notes, "paper DC 4 replication: 59 -> 61 ms after +29% RPS/server")
	return res, nil
}

// Fig7 reproduces the RSM iteration chart: successive reductions raise
// latency until the 14 ms QoS limit is reached.
func Fig7(ctx context.Context, cfg Config) (*Result, error) {
	// A low-latency pool tuned so the QoS limit of 14 ms binds, like the
	// paper's Figure 7 subject.
	pool := sim.PoolConfig{
		Name:        "R",
		Description: "RSM experiment pool",
		Servers:     map[string]int{"DC 1": 200},
		Response: sim.ResponseParams{
			CPUSlope: 0.03, CPUIntercept: 2, CPUNoise: 0.3,
			LatQuad: [3]float64{7, 0.001, 2e-5}, LatNoise: 0.25,
			NetBytesPerReq: 10000, NetPktsPerReq: 10,
			MemPagesBase: 4000, DiskBytesPerPage: 1800, DiskQueueBase: 0.4,
		},
		Traffic: workload.Pattern{BaseRPS: 312500, PeakToTrough: 1.8, PeakHour: 13},
	}
	observeTicks := 720
	if cfg.Fast {
		observeTicks = 180
	}
	plant := &rsmPlant{pool: pool, seed: cfg.Seed + 400}
	rsm, err := optimize.RunRSM(ctx, plant, optimize.RSMConfig{
		InitialServers: 200,
		QoSLimitMs:     14,
		StepFrac:       0.10,
		ObserveTicks:   observeTicks,
		MaxIterations:  12,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig7",
		Title:  "RSM iterations toward the 14 ms QoS limit",
		Header: []string{"iteration", "servers", "observed_latency_ms", "forecast_next_ms", "next_servers"},
	}
	for i, it := range rsm.Iterations {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", it.Servers),
			f2(it.ObservedLatencyMs), f2(it.ForecastNextMs), fmt.Sprintf("%d", it.NextServers),
		})
	}
	res.Metric("iterations", float64(len(rsm.Iterations)))
	res.Metric("final_servers", float64(rsm.FinalServers))
	res.Metric("savings_frac", rsm.SavingsFrac)
	res.Notes = append(res.Notes, "stopped: "+rsm.Stopped)
	return res, nil
}

// rsmPlant drives a pool at requested server counts for Fig7, reusing the
// core.SimPlant behaviour without importing core (avoiding a cycle is not
// the issue — experiments may import core — but the figure needs DC-share
// control).
type rsmPlant struct {
	pool  sim.PoolConfig
	seed  int64
	calls int
}

func (p *rsmPlant) Observe(ctx context.Context, servers, ticks int) ([]metrics.TickStat, error) {
	p.calls++
	dc := workload.Datacenter{Name: "DC 1", Weight: 1}
	gen, err := workload.NewGenerator(p.pool.Traffic, []workload.Datacenter{dc}, nil,
		workload.TickDuration, 0.04, p.seed+int64(p.calls))
	if err != nil {
		return nil, err
	}
	offered := make([]float64, ticks)
	for t := range offered {
		v, err := gen.RPS(0, t)
		if err != nil {
			return nil, err
		}
		offered[t] = v * 0.16 // the DC 1 share of global traffic
	}
	recs, err := sim.SimulatePoolContext(ctx, p.pool, dc.Name, offered, servers, p.seed+int64(p.calls))
	if err != nil {
		return nil, err
	}
	agg := metrics.NewAggregator()
	agg.AddAll(recs)
	return agg.PoolSeries(dc.Name, p.pool.Name)
}
