package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestLinearRegressionExact(t *testing.T) {
	tests := []struct {
		name            string
		slope, icpt     float64
		xs              []float64
		wantR2AtLeast   float64
		noiseAmplitude  float64
		wantSlopeWithin float64
	}{
		{"perfect line", 2.5, -3, seq(0, 20), 1, 0, 1e-9},
		{"paper pool B cpu", 0.028, 1.37, seq(100, 700), 0.99, 0, 1e-9},
		{"noisy line", 0.0916, 5.006, seq(10, 200), 0.9, 0.5, 0.01},
	}
	rng := rand.New(rand.NewSource(3))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ys := make([]float64, len(tt.xs))
			for i, x := range tt.xs {
				ys[i] = tt.slope*x + tt.icpt + tt.noiseAmplitude*rng.NormFloat64()
			}
			fit, err := LinearRegression(tt.xs, ys)
			if err != nil {
				t.Fatalf("LinearRegression: %v", err)
			}
			if math.Abs(fit.Slope-tt.slope) > tt.wantSlopeWithin {
				t.Errorf("slope = %v, want %v +/- %v", fit.Slope, tt.slope, tt.wantSlopeWithin)
			}
			if fit.R2 < tt.wantR2AtLeast {
				t.Errorf("R2 = %v, want >= %v", fit.R2, tt.wantR2AtLeast)
			}
			if fit.N != len(tt.xs) {
				t.Errorf("N = %d, want %d", fit.N, len(tt.xs))
			}
		})
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := LinearRegression([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance should error")
	}
}

func TestLinearFitPredictAndString(t *testing.T) {
	f := LinearFit{Slope: 2, Intercept: 1, R2: 0.5, N: 10}
	if got := f.Predict(3); got != 7 {
		t.Errorf("Predict(3) = %v, want 7", got)
	}
	if s := f.String(); !strings.Contains(s, "R2 = 0.500") {
		t.Errorf("String() = %q, missing R2", s)
	}
}

func TestPolyFitRecoversKnownPolynomials(t *testing.T) {
	tests := []struct {
		name   string
		coeffs []float64 // c0, c1, c2...
	}{
		{"constant", []float64{4}},
		{"line", []float64{1.5, -2}},
		{"paper pool B latency", []float64{36.68, -0.031, 4.028e-5}},
		{"paper pool D latency", []float64{86.50, -0.80, 4.66e-3}},
		{"cubic", []float64{1, -1, 0.5, 0.02}},
	}
	xs := seq(1, 120)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			truth := Polynomial{Coeffs: tt.coeffs}
			ys := make([]float64, len(xs))
			for i, x := range xs {
				ys[i] = truth.Predict(x)
			}
			fit, err := PolyFit(xs, ys, len(tt.coeffs)-1)
			if err != nil {
				t.Fatalf("PolyFit: %v", err)
			}
			for i, c := range tt.coeffs {
				tol := 1e-6 * math.Max(1, math.Abs(c))
				if math.Abs(fit.Coeffs[i]-c) > tol {
					t.Errorf("coeff[%d] = %v, want %v", i, fit.Coeffs[i], c)
				}
			}
			if fit.R2 < 1-1e-9 {
				t.Errorf("R2 = %v, want ~1", fit.R2)
			}
		})
	}
}

func TestPolyFitDegreeMismatch(t *testing.T) {
	xs := seq(0, 50)
	// Quadratic data fit with a line should have lower R2 than with a
	// quadratic.
	truth := Polynomial{Coeffs: []float64{5, 0.1, 0.4}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = truth.Predict(x)
	}
	lin, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatalf("linear: %v", err)
	}
	quad, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatalf("quadratic: %v", err)
	}
	if lin.R2 >= quad.R2 {
		t.Errorf("linear R2 %v should be < quadratic R2 %v", lin.R2, quad.R2)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("too few points should error")
	}
	if _, err := PolyFit([]float64{2, 2, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("zero x-variance for degree>=1 should error")
	}
	// Degree 0 with constant x is fine: fits the mean.
	p, err := PolyFit([]float64{2, 2, 2}, []float64{1, 2, 3}, 0)
	if err != nil {
		t.Fatalf("degree 0: %v", err)
	}
	if !almostEqual(p.Coeffs[0], 2, 1e-12) {
		t.Errorf("degree-0 fit = %v, want mean 2", p.Coeffs[0])
	}
}

func TestPolynomialDerivative(t *testing.T) {
	p := Polynomial{Coeffs: []float64{36.68, -0.031, 4.028e-5}}
	d := p.Derivative()
	if len(d.Coeffs) != 2 {
		t.Fatalf("derivative coeffs = %v", d.Coeffs)
	}
	if !almostEqual(d.Coeffs[0], -0.031, 1e-12) || !almostEqual(d.Coeffs[1], 2*4.028e-5, 1e-12) {
		t.Errorf("derivative = %v", d.Coeffs)
	}
	c := Polynomial{Coeffs: []float64{7}}
	if got := c.Derivative().Predict(123); got != 0 {
		t.Errorf("derivative of constant = %v, want 0", got)
	}
}

func TestPolynomialDegreeAndString(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, 2, 3}}
	if p.Degree() != 2 {
		t.Errorf("Degree = %d, want 2", p.Degree())
	}
	var zero Polynomial
	if zero.Degree() != 0 {
		t.Errorf("zero polynomial degree = %d", zero.Degree())
	}
	if zero.String() != "y = 0" {
		t.Errorf("zero polynomial String = %q", zero.String())
	}
	if s := p.String(); !strings.HasPrefix(s, "y = 3*x^2") {
		t.Errorf("String = %q", s)
	}
}

// Property: the OLS line passes through (mean x, mean y).
func TestOLSCentroidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		fit, err := LinearRegression(xs, ys)
		if err != nil {
			continue // duplicated xs can legitimately fail
		}
		if !almostEqual(fit.Predict(Mean(xs)), Mean(ys), 1e-6) {
			t.Fatalf("line does not pass through centroid: %v vs %v",
				fit.Predict(Mean(xs)), Mean(ys))
		}
	}
}

// Property: PolyFit residual SS never exceeds that of a lower degree fit on
// the same data (higher-degree models can only fit at least as well).
func TestPolyFitMonotoneR2Property(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 12 + rng.Intn(80)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()
			ys[i] = 3 + 0.5*xs[i] + 0.01*xs[i]*xs[i] + rng.NormFloat64()
		}
		lin, err1 := PolyFit(xs, ys, 1)
		quad, err2 := PolyFit(xs, ys, 2)
		if err1 != nil || err2 != nil {
			t.Fatalf("fits failed: %v %v", err1, err2)
		}
		if quad.R2 < lin.R2-1e-9 {
			t.Fatalf("quadratic R2 %v < linear R2 %v", quad.R2, lin.R2)
		}
	}
}
