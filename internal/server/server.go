// Package server is the HTTP front-end of capserved: it exposes the
// capacity-planning pipeline (simulate, plan, validate, forecast) as an
// async job API backed by a bounded worker pool (internal/jobs) and a keyed
// result cache (internal/jobcache), and exports Prometheus text-format
// metrics without external dependencies.
//
// Endpoints:
//
//	POST /v1/simulate   submit a fleet-simulation job
//	POST /v1/plan       submit a simulate+plan job
//	POST /v1/validate   submit an offline A/B validation job
//	POST /v1/forecast   submit a workload-forecast job
//	GET  /v1/jobs/{id}  job state and, when done, its result
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 while draining or overloaded)
//	GET  /metrics       Prometheus text exposition
//
// Submissions return 202 with a job envelope; pass ?wait=true (or a
// duration, ?wait=30s) to block until the job is terminal and receive the
// result inline. Identical requests are answered from the result cache and
// deduplicated in flight, so repeated what-if queries cost one simulation.
//
// Failure semantics: each submission endpoint sits behind a circuit breaker
// that opens after a run of consecutive job failures and fast-fails 503
// (with Retry-After) until a half-open probe succeeds. With partial results
// enabled, simulate/plan jobs that lose some pools return a degraded result
// listing the failed pools instead of failing whole; degraded results are
// never stored in the cache.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"headroom/internal/breaker"
	"headroom/internal/dist"
	"headroom/internal/faults"
	"headroom/internal/jobcache"
	"headroom/internal/jobs"
	"headroom/internal/obs"
	"headroom/internal/obs/prom"
)

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// Workers sizes the job worker pool; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending job queue; default 4 × Workers.
	// Submissions beyond it receive 503.
	QueueDepth int
	// CacheSize bounds the result cache (number of results); default 128.
	CacheSize int
	// JobTimeout is the per-job deadline; default 5 minutes.
	JobTimeout time.Duration
	// Shards is the aggregation shard count passed to sessions
	// (0 = one per CPU). Shard count never changes results, so it is
	// excluded from cache keys.
	Shards int
	// DrainTimeout bounds graceful shutdown: connection draining plus job
	// draining; default 30 seconds.
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies; default 8 MiB (forecast series
	// can be large).
	MaxBodyBytes int64
	// PartialResults lets sharded simulate/plan jobs tolerate failed
	// pools: surviving pools aggregate into a degraded result listing the
	// failures instead of failing the whole job. Degraded results are
	// never cached.
	PartialResults bool
	// RetryAttempts wraps job record sources with headroom.ResilientSource
	// using this attempt bound, retrying transient shard failures with
	// backoff before they surface as pool errors. Zero disables source
	// retries.
	RetryAttempts int
	// RetryBackoff is the initial source-retry backoff; default 50 ms
	// (used only when RetryAttempts > 0).
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive-job-failure count that opens an
	// endpoint's circuit breaker; default 5, negative disables breakers.
	BreakerThreshold int
	// BreakerOpenFor is how long an open breaker fast-fails before
	// half-opening; default 10 s.
	BreakerOpenFor time.Duration
	// BreakerProbes is the consecutive half-open successes that close a
	// breaker; default 1.
	BreakerProbes int
	// ReadyHighWatermark marks the server not-ready (/readyz 503) while
	// the pending queue is at or above it; default 3/4 of the queue depth.
	ReadyHighWatermark int
	// Peers enables distributed scale-out: simulate/plan shards are
	// dispatched to these capserved worker base URLs instead of aggregating
	// locally. Requires DistToken. Empty disables distribution.
	Peers []string
	// DistToken is the shared secret authenticating internal shard traffic
	// (X-Dist-Token). Setting it (even without Peers) makes this process
	// serve POST /v1/internal/shard as a worker.
	DistToken string
	// ShardTimeout bounds one distributed shard dispatch end to end
	// (reroutes and hedges included); default 1 minute.
	ShardTimeout time.Duration
	// HedgeAfter tunes hedged shard dispatches: positive hedges after that
	// fixed delay, zero adapts to 2× the worker's EWMA latency, negative
	// disables hedging.
	HedgeAfter time.Duration
	// DistTransport overrides the dispatch HTTP transport, for tests.
	DistTransport http.RoundTripper
	// Faults, when set, injects deterministic faults into every job's
	// record source — the chaos-testing hook (see internal/faults).
	Faults *faults.Injector
	// Clock overrides time.Now for the circuit breakers, for tests.
	Clock func() time.Time
	// Logger receives lifecycle events as structured records; log lines
	// emitted inside a request or job carry its trace_id/span_id/job_id.
	// Default: discard.
	Logger *slog.Logger
	// Tracer retains recent request/job traces for GET /debug/traces.
	// Default: a ring of 128 traces.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAttempts > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 10 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 1
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(128)
	}
	return c
}

// readyHighWatermark resolves the configured not-ready queue threshold
// against the queue's actual depth bound.
func (c Config) readyHighWatermark(queueDepth int) int {
	if c.ReadyHighWatermark > 0 {
		return c.ReadyHighWatermark
	}
	hwm := queueDepth * 3 / 4
	if hwm < 1 {
		hwm = 1
	}
	return hwm
}

// Server wires handlers, the job queue, the result cache, the per-endpoint
// circuit breakers and metrics.
type Server struct {
	cfg      Config
	queue    *jobs.Queue
	cache    *jobcache.Cache
	reg      *prom.Registry
	mux      *http.ServeMux
	handler  http.Handler
	breakers map[string]*breaker.Breaker // by job kind; nil when disabled
	readyHWM int
	draining atomic.Bool
	rate     rateTracker

	// Distributed scale-out (see dist.go): the dispatch client when this
	// process coordinates, the shard-work semaphore when it serves shards,
	// and the hostname stamped into job status and shard responses.
	dist     *dist.Client
	shardSem chan struct{}
	hostname string

	m     serverMetrics
	distM distMetrics
}

// serverMetrics holds the pre-registered metric series.
type serverMetrics struct {
	jobsSubmitted   map[string]*prom.Counter // by kind
	jobsDone        map[string]*prom.Counter
	jobsFailed      map[string]*prom.Counter
	jobRetries      map[string]*prom.Counter   // job attempts beyond the first
	degraded        map[string]*prom.Counter   // degraded (partial) results served
	breakerFastFail map[string]*prom.Counter   // submissions rejected by an open breaker
	breakerOpen     map[string]*prom.Counter   // transitions into open, by kind
	breakerHalf     map[string]*prom.Counter   // transitions into half_open
	breakerClosed   map[string]*prom.Counter   // transitions into closed
	reqTotal        map[string]*prom.Counter   // by handler
	reqDuration     map[string]*prom.Histogram // by handler
	badRequests     *prom.Counter
	queueFull       *prom.Counter
	notReady        *prom.Counter
	sourceRetries   *prom.Counter
}

// rateTracker keeps an exponentially weighted mean of job service time so
// 503 responses can derive an honest Retry-After from queue depth.
type rateTracker struct {
	mu   sync.Mutex
	mean float64 // seconds; EWMA
	n    int64
}

func (rt *rateTracker) observe(d time.Duration) {
	if d <= 0 {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := d.Seconds()
	if rt.n == 0 {
		rt.mean = s
	} else {
		const alpha = 0.2
		rt.mean = alpha*s + (1-alpha)*rt.mean
	}
	rt.n++
}

// meanSeconds returns the observed mean service time, or false before any
// job has completed.
func (rt *rateTracker) meanSeconds() (float64, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.mean, rt.n > 0
}

// endpoints the server serves jobs for, used to pre-register labelled
// metric series.
var jobKinds = []string{"simulate", "plan", "validate", "forecast"}

// New builds a Server and starts its worker pool. Call Shutdown (or Serve
// with a cancellable context) to drain it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: jobcache.New(cfg.CacheSize),
		reg:   prom.NewRegistry(),
		mux:   http.NewServeMux(),
	}
	s.queue = jobs.New(jobs.Config{
		Workers:       cfg.Workers,
		QueueDepth:    cfg.QueueDepth,
		Timeout:       cfg.JobTimeout,
		OnStateChange: s.onJobState,
	})
	s.readyHWM = cfg.readyHighWatermark(s.queue.QueueDepth())
	s.hostname, _ = os.Hostname()
	if s.hostname == "" {
		s.hostname = "local"
	}
	// Shard work bypasses the job queue; bound it at twice the worker pool
	// so a coordinator burst cannot starve this node's own jobs.
	s.shardSem = make(chan struct{}, 2*s.queue.Workers())
	s.initMetrics()
	if len(cfg.Peers) > 0 {
		s.initDist()
	}
	if cfg.BreakerThreshold > 0 {
		s.breakers = make(map[string]*breaker.Breaker, len(jobKinds))
		for _, kind := range jobKinds {
			kind := kind
			s.breakers[kind] = breaker.New(breaker.Config{
				Threshold: cfg.BreakerThreshold,
				OpenFor:   cfg.BreakerOpenFor,
				Probes:    cfg.BreakerProbes,
				Now:       cfg.Clock,
				OnTransition: func(from, to breaker.State) {
					s.onBreakerTransition(kind, from, to)
				},
			})
		}
	}
	s.routes()
	s.handler = s.mux
	return s
}

// onBreakerTransition feeds breaker state changes into the transition
// counters and the lifecycle log.
func (s *Server) onBreakerTransition(kind string, from, to breaker.State) {
	s.cfg.Logger.Info("breaker transition",
		"kind", kind, "from", from.String(), "to", to.String())
	var c *prom.Counter
	switch to {
	case breaker.Open:
		c = s.m.breakerOpen[kind]
	case breaker.HalfOpen:
		c = s.m.breakerHalf[kind]
	case breaker.Closed:
		c = s.m.breakerClosed[kind]
	}
	if c != nil {
		c.Inc()
	}
}

func (s *Server) initMetrics() {
	m := &s.m
	m.jobsSubmitted = map[string]*prom.Counter{}
	m.jobsDone = map[string]*prom.Counter{}
	m.jobsFailed = map[string]*prom.Counter{}
	m.jobRetries = map[string]*prom.Counter{}
	m.degraded = map[string]*prom.Counter{}
	m.breakerFastFail = map[string]*prom.Counter{}
	m.breakerOpen = map[string]*prom.Counter{}
	m.breakerHalf = map[string]*prom.Counter{}
	m.breakerClosed = map[string]*prom.Counter{}
	m.reqTotal = map[string]*prom.Counter{}
	m.reqDuration = map[string]*prom.Histogram{}
	for _, kind := range jobKinds {
		m.jobsSubmitted[kind] = s.reg.Counter("capserved_jobs_submitted_total",
			"Jobs accepted into the queue.", prom.Labels{"kind": kind})
		m.jobsDone[kind] = s.reg.Counter("capserved_jobs_completed_total",
			"Jobs finished, by outcome.", prom.Labels{"kind": kind, "state": "done"})
		m.jobsFailed[kind] = s.reg.Counter("capserved_jobs_completed_total",
			"Jobs finished, by outcome.", prom.Labels{"kind": kind, "state": "failed"})
		m.jobRetries[kind] = s.reg.Counter("capserved_job_retries_total",
			"Job attempts beyond the first (transient-failure retries).", prom.Labels{"kind": kind})
		m.degraded[kind] = s.reg.Counter("capserved_degraded_responses_total",
			"Jobs that completed degraded: partial results after pool failures.", prom.Labels{"kind": kind})
		m.breakerFastFail[kind] = s.reg.Counter("capserved_breaker_fast_fails_total",
			"Submissions rejected immediately by an open circuit breaker.", prom.Labels{"kind": kind})
		m.breakerOpen[kind] = s.reg.Counter("capserved_breaker_transitions_total",
			"Circuit-breaker state transitions, by destination state.", prom.Labels{"kind": kind, "to": "open"})
		m.breakerHalf[kind] = s.reg.Counter("capserved_breaker_transitions_total",
			"Circuit-breaker state transitions, by destination state.", prom.Labels{"kind": kind, "to": "half_open"})
		m.breakerClosed[kind] = s.reg.Counter("capserved_breaker_transitions_total",
			"Circuit-breaker state transitions, by destination state.", prom.Labels{"kind": kind, "to": "closed"})
		kind := kind
		s.reg.Gauge("capserved_breaker_state",
			"Circuit-breaker position (0 closed, 1 open, 2 half-open).", prom.Labels{"kind": kind},
			func() float64 {
				if br := s.breakers[kind]; br != nil {
					return float64(br.State())
				}
				return 0
			})
	}
	for _, h := range append([]string{"jobs", "healthz", "readyz", "metrics", "internal_shard"}, jobKinds...) {
		m.reqTotal[h] = s.reg.Counter("capserved_http_requests_total",
			"HTTP requests served, by handler.", prom.Labels{"handler": h})
		m.reqDuration[h] = s.reg.Histogram("capserved_request_duration_seconds",
			"HTTP request latency, by handler.", prom.Labels{"handler": h}, prom.DefBuckets)
	}
	m.badRequests = s.reg.Counter("capserved_bad_requests_total",
		"Requests rejected by validation.", nil)
	m.queueFull = s.reg.Counter("capserved_queue_rejections_total",
		"Submissions rejected because the job queue was full.", nil)
	m.notReady = s.reg.Counter("capserved_not_ready_total",
		"Readiness probes answered not-ready (draining or overloaded).", nil)
	m.sourceRetries = s.reg.Counter("capserved_source_retries_total",
		"Record-source stream retries (transient shard failures).", nil)
	s.reg.CounterFunc("capserved_injected_faults_total",
		"Faults injected by the chaos fault injector (0 when disabled).", nil,
		func() float64 {
			if s.cfg.Faults == nil {
				return 0
			}
			return float64(s.cfg.Faults.Injected())
		})
	s.reg.CounterFunc("capserved_cache_uncacheable_total",
		"Computations whose (degraded) result was served but not cached.", nil,
		func() float64 { return float64(s.cache.Stats().Uncacheable) })

	s.reg.Gauge("capserved_jobs_running", "Jobs currently executing.", nil,
		func() float64 { return float64(s.queue.Stats().Running) })
	s.reg.Gauge("capserved_queue_depth", "Jobs waiting for a worker.", nil,
		func() float64 { return float64(s.queue.Stats().Depth) })
	s.reg.Gauge("capserved_workers", "Worker-pool size.", nil,
		func() float64 { return float64(s.queue.Workers()) })
	s.reg.CounterFunc("capserved_cache_hits_total",
		"Job submissions answered from the result cache.", nil,
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.reg.CounterFunc("capserved_cache_misses_total",
		"Job submissions that computed a fresh result.", nil,
		func() float64 { return float64(s.cache.Stats().Misses) })
	s.reg.CounterFunc("capserved_cache_deduped_total",
		"Job submissions that joined an identical in-flight computation.", nil,
		func() float64 { return float64(s.cache.Stats().Shared) })
	s.reg.Gauge("capserved_cache_size", "Results currently cached.", nil,
		func() float64 { return float64(s.cache.Stats().Size) })
}

// onJobState feeds queue transitions into the completion counters, the
// service-rate estimate behind Retry-After, and the circuit breakers.
func (s *Server) onJobState(snap jobs.Snapshot) {
	switch snap.State {
	case jobs.Running:
		if snap.Attempts > 1 {
			if c, ok := s.m.jobRetries[snap.Kind]; ok {
				c.Inc()
			}
		}
	case jobs.Done:
		if c, ok := s.m.jobsDone[snap.Kind]; ok {
			c.Inc()
		}
		s.observeCompletion(snap)
		if br := s.breakerFor(snap.Kind); br != nil {
			br.Success()
		}
	case jobs.Failed:
		if c, ok := s.m.jobsFailed[snap.Kind]; ok {
			c.Inc()
		}
		s.observeCompletion(snap)
		if br := s.breakerFor(snap.Kind); br != nil {
			br.Failure()
		}
	}
}

func (s *Server) observeCompletion(snap jobs.Snapshot) {
	if !snap.Started.IsZero() && !snap.Finished.IsZero() {
		s.rate.observe(snap.Finished.Sub(snap.Started))
	}
}

// breakerFor returns the endpoint's breaker, or nil when disabled.
func (s *Server) breakerFor(kind string) *breaker.Breaker {
	if s.breakers == nil {
		return nil
	}
	return s.breakers[kind]
}

// BreakerState exposes an endpoint's breaker position for tests; the second
// return is false when breakers are disabled.
func (s *Server) BreakerState(kind string) (breaker.State, bool) {
	br := s.breakerFor(kind)
	if br == nil {
		return breaker.Closed, false
	}
	return br.State(), true
}

// retryAfterSeconds derives the Retry-After hint for a 503: the estimated
// time to drain `depth` queued jobs across the worker pool at the observed
// mean service rate, clamped to [1 s, 120 s]. Before any job has completed
// the estimate falls back to 1 s.
func (s *Server) retryAfterSeconds(depth int) int {
	mean, ok := s.rate.meanSeconds()
	if !ok {
		return 1
	}
	workers := s.queue.Workers()
	if workers < 1 {
		workers = 1
	}
	// Clamp in the float domain: converting an out-of-range float64 to int is
	// implementation-defined (minInt on amd64), so a pathological EWMA mean
	// would otherwise wrap the estimate to the minimum instead of the cap.
	est := float64(depth+1) * mean / float64(workers)
	if !(est > 1) { // catches NaN as well as sub-second estimates
		return 1
	}
	if est >= 120 {
		return 120
	}
	return int(math.Ceil(est))
}

func (s *Server) routes() {
	s.mux.Handle("POST /v1/simulate", s.instrument("simulate", s.handleSubmit("simulate")))
	s.mux.Handle("POST /v1/plan", s.instrument("plan", s.handleSubmit("plan")))
	s.mux.Handle("POST /v1/validate", s.instrument("validate", s.handleSubmit("validate")))
	s.mux.Handle("POST /v1/forecast", s.instrument("forecast", s.handleSubmit("forecast")))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs", http.HandlerFunc(s.handleJob)))
	s.mux.Handle("GET /healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /readyz", s.instrument("readyz", http.HandlerFunc(s.handleReadyz)))
	s.mux.Handle("GET /metrics", s.instrument("metrics", http.HandlerFunc(s.handleMetrics)))
	if s.cfg.DistToken != "" {
		s.mux.Handle("POST "+dist.DefaultPath, s.instrument("internal_shard", http.HandlerFunc(s.handleInternalShard)))
	}
	// Debug endpoints are served raw: instrumenting them would add a trace
	// to the ring per /debug/traces view.
	s.mux.Handle("GET /debug/traces", obs.TracesHandler(s.cfg.Tracer))
	s.mux.Handle("GET /debug/goroutines", obs.GoroutinesHandler())
}

// Handler returns the server's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Tracer returns the server's trace ring, for the standalone debug listener.
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// instrument wraps a handler with the per-endpoint request counter and
// latency histogram, and roots a span for the request: the request id is
// taken from (or minted into) X-Request-Id, and the trace id is echoed in
// X-Trace-Id so a client can pull the trace from /debug/traces.
func (s *Server) instrument(name string, h http.Handler) http.Handler {
	total, dur := s.m.reqTotal[name], s.m.reqDuration[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NewID()
		}
		ctx := obs.WithTracer(r.Context(), s.cfg.Tracer)
		ctx, sp := obs.StartSpan(ctx, "http."+name,
			obs.Str("method", r.Method), obs.Str("path", r.URL.Path),
			obs.Str("request_id", reqID))
		w.Header().Set("X-Request-Id", reqID)
		if id := sp.TraceID(); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		start := time.Now()
		h.ServeHTTP(w, r.WithContext(ctx))
		sp.End()
		total.Inc()
		dur.Observe(time.Since(start).Seconds())
	})
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: it stops accepting, drains in-flight connections, drains the
// job queue, and returns nil on a clean drain. The drain window is
// Config.DrainTimeout.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	s.cfg.Logger.Info("listening",
		"addr", ln.Addr().String(), "workers", s.queue.Workers(), "cache", s.cfg.CacheSize)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	s.cfg.Logger.Info("draining", "timeout", s.cfg.DrainTimeout)
	s.draining.Store(true) // flips /readyz to 503 so load balancers stop sending
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := httpSrv.Shutdown(drainCtx)
	if qErr := s.queue.Close(drainCtx); err == nil {
		err = qErr
	}
	if s.dist != nil {
		s.dist.Close()
	}
	<-errCh // Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	s.cfg.Logger.Info("drained cleanly")
	return nil
}

// Shutdown drains the job queue directly, for callers using Handler with
// their own HTTP server (httptest).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.queue.Close(ctx)
	if s.dist != nil {
		s.dist.Close()
	}
	return err
}

// --- HTTP plumbing -------------------------------------------------------

// apiError is the uniform error body. TraceID correlates the failure with
// its trace in /debug/traces.
type apiError struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errBody builds the uniform error body carrying the request's trace id.
func errBody(r *http.Request, msg string) apiError {
	return apiError{Error: msg, TraceID: obs.TraceIDFrom(r.Context())}
}

func (s *Server) badRequest(w http.ResponseWriter, r *http.Request, err error) {
	s.m.badRequests.Inc()
	writeJSON(w, http.StatusBadRequest, errBody(r, err.Error()))
}

// jobView is the wire representation of a job.
type jobView struct {
	JobID    string          `json:"job_id"`
	Kind     string          `json:"kind"`
	State    jobs.State      `json:"state"`
	Attempts int             `json:"attempts,omitempty"`
	TraceID  string          `json:"trace_id,omitempty"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
	// Node is the hostname of the coordinator that ran (or is running) the
	// job; Placement lists where each shard of a distributed job executed.
	Node      string           `json:"node"`
	Placement []ShardPlacement `json:"placement,omitempty"`
	Self      string           `json:"self"`
}

func (s *Server) viewOf(j *jobs.Job) jobView {
	snap := j.Snapshot()
	v := jobView{
		JobID:    snap.ID,
		Kind:     snap.Kind,
		State:    snap.State,
		Attempts: snap.Attempts,
		TraceID:  snap.TraceID,
		Created:  snap.Created,
		Node:     s.hostname,
		Self:     "/v1/jobs/" + snap.ID,
	}
	if pl, ok := snap.Meta[placementMetaKey].([]ShardPlacement); ok {
		v.Placement = pl
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		v.Started = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		v.Finished = &t
	}
	if snap.State == jobs.Done {
		if raw, ok := snap.Result.(json.RawMessage); ok {
			v.Result = raw
		}
	}
	if snap.State == jobs.Failed && snap.Err != nil {
		v.Error = snap.Err.Error()
	}
	return v
}

// handleSubmit decodes, validates and canonicalizes a request for kind,
// then submits a job that computes through the result cache.
func (s *Server) handleSubmit(kind string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
		if err != nil {
			s.badRequest(w, r, fmt.Errorf("read body: %w", err))
			return
		}
		if int64(len(body)) > s.cfg.MaxBodyBytes {
			s.m.badRequests.Inc()
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errBody(r, fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)))
			return
		}
		compute, canonical, err := s.buildJob(kind, body)
		if err != nil {
			s.badRequest(w, r, err)
			return
		}
		// Circuit breaker: when this endpoint's jobs keep failing, reject
		// immediately instead of queueing doomed work. Retry-After is the
		// time until the breaker half-opens for a probe.
		br := s.breakerFor(kind)
		if br != nil && !br.Allow() {
			s.m.breakerFastFail[kind].Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterCeil(br.RetryAfter())))
			writeJSON(w, http.StatusServiceUnavailable,
				errBody(r, fmt.Sprintf("circuit breaker open for %s: recent jobs kept failing", kind)))
			return
		}
		// The cache key is the canonicalized request — defaults applied,
		// shard count excluded (sharding never changes results).
		key, err := jobcache.Key(kind, canonical)
		if err != nil {
			if br != nil {
				br.Release()
			}
			s.badRequest(w, r, err)
			return
		}
		// SubmitCtx links the job's span tree under this request's trace;
		// the job outliving the request (async submit) keeps the linkage.
		j, err := s.queue.SubmitCtx(r.Context(), kind, func(ctx context.Context) (any, error) {
			val, _, err := s.cache.Do(key, func() (any, error) { return compute(ctx) })
			return val, err
		})
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			if br != nil {
				br.Release() // the job never ran; don't leak a probe slot
			}
			s.m.queueFull.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(s.queue.Stats().Depth)))
			writeJSON(w, http.StatusServiceUnavailable, errBody(r, err.Error()))
			return
		case errors.Is(err, jobs.ErrClosed):
			if br != nil {
				br.Release()
			}
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(s.queue.Stats().Depth)))
			writeJSON(w, http.StatusServiceUnavailable, errBody(r, "server is draining"))
			return
		case err != nil:
			if br != nil {
				br.Release()
			}
			writeJSON(w, http.StatusInternalServerError, errBody(r, err.Error()))
			return
		}
		s.m.jobsSubmitted[kind].Inc()

		if wait, ok := parseWait(r.URL.Query().Get("wait")); ok {
			waitCtx := r.Context()
			if wait > 0 {
				var cancel context.CancelFunc
				waitCtx, cancel = context.WithTimeout(waitCtx, wait)
				defer cancel()
			}
			j.Wait(waitCtx)
			if !j.State().Terminal() {
				// Timed out waiting: fall back to the async envelope.
				writeJSON(w, http.StatusAccepted, s.viewOf(j))
				return
			}
			code := http.StatusOK
			if j.State() == jobs.Failed {
				code = http.StatusUnprocessableEntity
			}
			writeJSON(w, code, s.viewOf(j))
			return
		}
		writeJSON(w, http.StatusAccepted, s.viewOf(j))
	})
}

// parseWait interprets the ?wait query parameter: absent/false → no wait,
// "true"/"1" → wait until the request context ends, a duration → wait at
// most that long.
func parseWait(v string) (time.Duration, bool) {
	switch v {
	case "":
		return 0, false
	case "true", "1":
		return 0, true
	case "false", "0":
		return 0, false
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return d, true
	}
	return 0, false
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.queue.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errBody(r, fmt.Sprintf("no job %q", id)))
		return
	}
	writeJSON(w, http.StatusOK, s.viewOf(j))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.queue.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": st.Workers,
		"running": st.Running,
		"depth":   st.Depth,
	})
}

// handleReadyz is readiness, distinct from /healthz liveness: the process
// is alive but should not receive new traffic while it is draining or the
// pending queue is at the high watermark.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.queue.Stats()
	switch {
	case s.draining.Load():
		s.m.notReady.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
		})
	case st.Depth >= s.readyHWM:
		s.m.notReady.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(st.Depth)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":         "overloaded",
			"depth":          st.Depth,
			"high_watermark": s.readyHWM,
		})
	case s.distDegraded():
		// Most of the worker fleet is unreachable: distributed jobs would
		// reroute everything onto the few survivors (or fail), so stop
		// taking new traffic until breakers start closing.
		open, total := s.DistStats()
		s.m.notReady.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":     "degraded",
			"peers_open": open,
			"peers":      total,
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":         "ready",
			"depth":          st.Depth,
			"high_watermark": s.readyHWM,
		})
	}
}

// distDegraded reports whether more than half the configured distributed
// workers have an open circuit breaker — the /readyz "degraded" condition.
func (s *Server) distDegraded() bool {
	open, total := s.DistStats()
	return total > 0 && 2*open > total
}

// retryAfterCeil rounds a duration up to whole seconds (minimum 1).
func retryAfterCeil(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Server-owned capserved_* families first, then the process-wide
	// pipeline families (headroom_* stage and queue timings).
	s.reg.WriteText(w)
	prom.Default.WriteText(w)
}

// CacheStats exposes cache counters for tests.
func (s *Server) CacheStats() jobcache.Stats { return s.cache.Stats() }
