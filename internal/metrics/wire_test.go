package metrics

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"headroom/internal/trace"
)

// wireFixture builds an aggregator with two pools, offline windows, and
// awkward float values (negative zero, tiny subnormals) that would not
// survive a text round-trip.
func wireFixture() *Aggregator {
	a := NewAggregator()
	recs := []trace.Record{
		{Tick: 0, DC: "dc1", Pool: "A", Server: "a-1", Generation: "g1", Online: true, RPS: 10.5, CPUPct: 37.25, LatencyMs: 3.125, NetBytes: 1e9, Errors: 0.1},
		{Tick: 0, DC: "dc1", Pool: "A", Server: "a-2", Generation: "g2", Online: true, RPS: 11, CPUPct: math.Copysign(0, -1), LatencyMs: 2.5},
		{Tick: 1, DC: "dc1", Pool: "A", Server: "a-1", Generation: "g1", Online: false},
		{Tick: 0, DC: "dc2", Pool: "B", Server: "b-1", Generation: "g1", Online: true, RPS: 0.1 + 0.2, CPUPct: 5e-324, LatencyMs: 7},
		{Tick: 3, DC: "dc2", Pool: "B", Server: "b-1", Generation: "g1", Online: true, RPS: 1.0 / 3.0, CPUPct: 99.999, LatencyMs: 1e-12},
	}
	a.AddAll(recs)
	return a
}

func TestWireRoundTripExact(t *testing.T) {
	a := wireFixture()
	enc, err := a.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var b Aggregator
	if err := b.UnmarshalBinary(enc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(a.pools, b.pools) {
		t.Fatalf("decoded aggregator differs from original:\n%#v\nvs\n%#v", a.pools, b.pools)
	}
	// Determinism: re-encoding the decoded state yields the same bytes.
	enc2, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoded payload differs: %d vs %d bytes", len(enc), len(enc2))
	}
}

func TestWireDecodedMergesIdentically(t *testing.T) {
	// Merging a decoded shard must equal merging the original shard: the
	// property distributed aggregation rests on.
	shard1, shard2 := wireFixture(), NewAggregator()
	shard2.AddAll([]trace.Record{
		{Tick: 0, DC: "dc3", Pool: "C", Server: "c-1", Generation: "g1", Online: true, RPS: 4, CPUPct: 40, LatencyMs: 4},
	})
	enc, err := shard2.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var remote Aggregator
	if err := remote.UnmarshalBinary(enc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	local := wireFixture()
	local.Merge(shard2)
	shard1.Merge(&remote)
	if !reflect.DeepEqual(local.pools, shard1.pools) {
		t.Fatal("merge of decoded shard differs from merge of original shard")
	}
}

func TestWireRejectsCorruptPayloads(t *testing.T) {
	enc, err := wireFixture().MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  append([]byte("XXXX"), enc[4:]...),
		"truncated":  enc[:len(enc)/2],
		"trailing":   append(append([]byte(nil), enc...), 0xFF),
		"short head": enc[:6],
	}
	for name, payload := range cases {
		var a Aggregator
		if err := a.UnmarshalBinary(payload); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	// Wrong version.
	bad := append([]byte(nil), enc...)
	bad[4] = 0xFE
	var a Aggregator
	if err := a.UnmarshalBinary(bad); err == nil {
		t.Error("wrong version: decode succeeded, want error")
	}
}

func TestWireEmptyAggregator(t *testing.T) {
	enc, err := NewAggregator().MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var a Aggregator
	if err := a.UnmarshalBinary(enc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := a.Pools(); len(got) != 0 {
		t.Fatalf("decoded empty aggregator has pools %v", got)
	}
}

// TestWireRejectsHostilePayloads pins the hardening against forged count
// prefixes and non-finite floats: each must produce a decode error without
// sizing an allocation from attacker-controlled counts.
func TestWireRejectsHostilePayloads(t *testing.T) {
	enc, err := wireFixture().MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	// Oversized pool count: a 9-byte payload claiming 2^32-1 pools must not
	// reserve a ~4-billion-entry map before discovering the truncation.
	hostile := append([]byte(nil), enc[:8]...) // magic + version
	hostile = append(hostile, 0xFF, 0xFF, 0xFF, 0xFF)
	hostile = append(hostile, 0x00)
	var a Aggregator
	if err := a.UnmarshalBinary(hostile); err == nil {
		t.Error("oversized pool count: decode succeeded, want error")
	}

	// Oversized cpu-sample count inside an otherwise valid payload.
	mutated := append([]byte(nil), enc...)
	// The first pool's first server cpu run: find it by decoding offsets is
	// brittle; instead flip every aligned uint32 to 0xFFFFFFFF one at a time
	// and require that no mutation panics (most must error; a few may decode
	// if the flipped word was a float fragment that stays finite).
	for off := 8; off+4 <= len(mutated); off += 4 {
		m := append([]byte(nil), mutated...)
		m[off], m[off+1], m[off+2], m[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
		var b Aggregator
		_ = b.UnmarshalBinary(m) // must not panic or hang
	}

	// NaN and Inf payload values are rejected.
	for name, bits := range map[string]uint64{
		"NaN":  math.Float64bits(math.NaN()),
		"+Inf": math.Float64bits(math.Inf(1)),
		"-Inf": math.Float64bits(math.Inf(-1)),
	} {
		agg := wireFixture()
		good, err := agg.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		// Overwrite the last 8 bytes — the final cpu sample — with the
		// non-finite pattern.
		m := append([]byte(nil), good...)
		for i := 0; i < 8; i++ {
			m[len(m)-8+i] = byte(bits >> (8 * i))
		}
		var b Aggregator
		if err := b.UnmarshalBinary(m); err == nil {
			t.Errorf("%s payload: decode succeeded, want error", name)
		}
	}
}

// FuzzDecodeAggregator: arbitrary bytes must never panic the decoder, and
// any payload that decodes successfully must re-encode deterministically to
// a fixed point (decode → encode → decode → encode yields equal bytes).
func FuzzDecodeAggregator(f *testing.F) {
	good, err := wireFixture().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	empty, _ := NewAggregator().MarshalBinary()
	f.Add(good)
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("HAGG"))
	// Oversized pool count straight after the header.
	f.Add(append(append([]byte(nil), good[:8]...), 0xFF, 0xFF, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		var a Aggregator
		if err := a.UnmarshalBinary(data); err != nil {
			return
		}
		enc, err := a.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded OK but re-encode failed: %v", err)
		}
		var b Aggregator
		if err := b.UnmarshalBinary(enc); err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		enc2, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
