// Package baseline implements the two capacity-planning families the paper
// contrasts with (§I): a queueing-theory model (M/M/c with Erlang-C delay)
// and a dynamic feedback autoscaler. They serve as comparators in the
// benchmark harness — the paper argues both are unsuitable for large
// low-latency online services, and the ablation benches quantify why.
package baseline

import (
	"errors"
	"fmt"
	"math"
)

// MMc is an M/M/c queueing model of a server pool: Poisson arrivals at
// lambda requests/second served by c servers each at mu requests/second.
type MMc struct {
	Lambda float64 // arrival rate (req/s)
	Mu     float64 // per-server service rate (req/s)
	C      int     // servers
}

// Validate checks the model is well formed and stable.
func (m MMc) Validate() error {
	if m.Lambda < 0 {
		return fmt.Errorf("baseline: negative arrival rate %v", m.Lambda)
	}
	if m.Mu <= 0 {
		return fmt.Errorf("baseline: non-positive service rate %v", m.Mu)
	}
	if m.C <= 0 {
		return fmt.Errorf("baseline: non-positive server count %d", m.C)
	}
	if m.Lambda >= float64(m.C)*m.Mu {
		return fmt.Errorf("baseline: unstable system (rho = %v >= 1)", m.Rho())
	}
	return nil
}

// Rho returns the per-server utilisation lambda/(c*mu).
func (m MMc) Rho() float64 {
	return m.Lambda / (float64(m.C) * m.Mu)
}

// ErlangC returns the probability an arriving request has to queue
// (the Erlang-C formula), computed with a numerically stable iterative
// scheme.
func (m MMc) ErlangC() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if m.Lambda == 0 {
		return 0, nil
	}
	a := m.Lambda / m.Mu // offered load in Erlangs
	// Iteratively compute the Erlang-B blocking probability, then convert.
	b := 1.0
	for k := 1; k <= m.C; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := m.Rho()
	c := b / (1 - rho + rho*b)
	return c, nil
}

// MeanWait returns the mean time a request waits in queue (seconds).
func (m MMc) MeanWait() (float64, error) {
	pw, err := m.ErlangC()
	if err != nil {
		return 0, err
	}
	if m.Lambda == 0 {
		return 0, nil
	}
	return pw / (float64(m.C)*m.Mu - m.Lambda), nil
}

// WaitPercentile returns the p-th percentile (0 < p < 100) of queueing
// delay, using the standard M/M/c result that the conditional wait is
// exponential: P(W > t) = ErlangC * exp(-(c*mu - lambda) t).
func (m MMc) WaitPercentile(p float64) (float64, error) {
	if p <= 0 || p >= 100 {
		return 0, fmt.Errorf("baseline: percentile %v outside (0, 100)", p)
	}
	pw, err := m.ErlangC()
	if err != nil {
		return 0, err
	}
	q := 1 - p/100
	if pw <= q {
		return 0, nil // the p-th percentile request does not queue at all
	}
	rate := float64(m.C)*m.Mu - m.Lambda
	return math.Log(pw/q) / rate, nil
}

// PlanConfig describes a queueing-theory capacity plan request: enough
// servers that the p-th percentile response time (service + wait) stays
// under the SLO at peak load.
type PlanConfig struct {
	// PeakLambda is the peak arrival rate to provision for (req/s).
	PeakLambda float64
	// ServiceTimeMs is the mean per-request service time.
	ServiceTimeMs float64
	// SLOMs is the response-time objective.
	SLOMs float64
	// Percentile is the SLO percentile (default 95).
	Percentile float64
	// MaxServers bounds the search (default 1e6).
	MaxServers int
}

// PlanServers returns the minimal c meeting the SLO under the M/M/c model.
// This is the queueing-theory planner of the paper's related work; its
// weakness — which the benches demonstrate — is that the single-service-rate
// abstraction misses the measured non-linear latency profile, so it can
// both under- and over-provision relative to the black-box plan.
func PlanServers(cfg PlanConfig) (int, error) {
	if cfg.PeakLambda < 0 {
		return 0, fmt.Errorf("baseline: negative peak load %v", cfg.PeakLambda)
	}
	if cfg.ServiceTimeMs <= 0 {
		return 0, fmt.Errorf("baseline: non-positive service time %v", cfg.ServiceTimeMs)
	}
	if cfg.SLOMs <= cfg.ServiceTimeMs {
		return 0, fmt.Errorf("baseline: SLO %vms not achievable with service time %vms", cfg.SLOMs, cfg.ServiceTimeMs)
	}
	pct := cfg.Percentile
	if pct <= 0 {
		pct = 95
	}
	maxC := cfg.MaxServers
	if maxC <= 0 {
		maxC = 1_000_000
	}
	mu := 1000 / cfg.ServiceTimeMs // req/s per server
	budgetWait := (cfg.SLOMs - cfg.ServiceTimeMs) / 1000

	cMin := int(cfg.PeakLambda/mu) + 1
	for c := cMin; c <= maxC; c++ {
		m := MMc{Lambda: cfg.PeakLambda, Mu: mu, C: c}
		w, err := m.WaitPercentile(pct)
		if err != nil {
			continue // still unstable at this c
		}
		if w <= budgetWait {
			return c, nil
		}
	}
	return 0, errors.New("baseline: no feasible server count within bound")
}
