package server

// Minimal Prometheus text-format exposition (counters, gauges, histograms)
// with no external dependencies. capserved only needs write-side types: the
// registry renders the version 0.0.4 text format a Prometheus scraper (or
// the e2e tests) parses.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// labels is one metric's label set, rendered sorted by key.
type labels map[string]string

func (l labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one sample-producing member of a family.
type series interface {
	// write appends exposition lines for this series to w, given the
	// family name and pre-rendered label suffix.
	write(w io.Writer, name, lbl string)
}

// counter is a monotonically increasing integer metric.
type counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for counter semantics).
func (c *counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *counter) Value() int64 { return c.v.Load() }

func (c *counter) write(w io.Writer, name, lbl string) {
	fmt.Fprintf(w, "%s%s %d\n", name, lbl, c.v.Load())
}

// gaugeFunc samples a value at scrape time — used for queue depth, cache
// size and other states owned elsewhere.
type gaugeFunc func() float64

func (g gaugeFunc) write(w io.Writer, name, lbl string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lbl, formatFloat(g()))
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending, +Inf implicit
	buckets []int64   // non-cumulative per-bound counts
	inf     int64     // observations above the last bound
	sum     float64
	count   int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]int64, len(bounds))}
}

// Observe records one observation.
func (h *histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.sum += v
	h.count++
}

func (h *histogram) write(w io.Writer, name, lbl string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Exposition buckets are cumulative.
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(lbl, "le", formatFloat(b)), cum)
	}
	cum += h.inf
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(lbl, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lbl, h.count)
}

// mergeLabel inserts an extra label pair into a pre-rendered label suffix.
func mergeLabel(lbl, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if lbl == "" {
		return "{" + pair + "}"
	}
	return lbl[:len(lbl)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// family groups same-named series with their HELP/TYPE header.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	mu     sync.Mutex
	order  []string
	series map[string]series // rendered label suffix -> series
}

func (f *family) add(lbl labels, s series) {
	key := lbl.render()
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.series[key]; dup {
		panic(fmt.Sprintf("server: duplicate metric %s%s", f.name, key))
	}
	f.order = append(f.order, key)
	f.series[key] = s
}

// registry holds the server's metric families in registration order.
type registry struct {
	mu   sync.Mutex
	fams []*family
	byID map[string]*family
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*family)}
}

func (r *registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byID[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("server: metric %s reregistered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, series: make(map[string]series)}
	r.fams = append(r.fams, f)
	r.byID[name] = f
	return f
}

// counter registers (or extends) a counter family with one labelled series.
func (r *registry) counter(name, help string, lbl labels) *counter {
	c := &counter{}
	r.family(name, help, "counter").add(lbl, c)
	return c
}

// gauge registers a scrape-time-sampled gauge series.
func (r *registry) gauge(name, help string, lbl labels, fn gaugeFunc) {
	r.family(name, help, "gauge").add(lbl, fn)
}

// counterFunc registers a scrape-time-sampled counter series, for monotone
// values owned elsewhere (cache hit totals).
func (r *registry) counterFunc(name, help string, lbl labels, fn gaugeFunc) {
	r.family(name, help, "counter").add(lbl, fn)
}

// histogram registers a histogram series with the given upper bounds.
func (r *registry) histogram(name, help string, lbl labels, bounds []float64) *histogram {
	h := newHistogram(bounds)
	r.family(name, help, "histogram").add(lbl, h)
	return h
}

// writeText renders every family in the Prometheus text exposition format.
func (r *registry) writeText(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		for _, key := range f.order {
			f.series[key].write(w, f.name, key)
		}
		f.mu.Unlock()
	}
}

// defBuckets are the request-latency bounds in seconds: sub-millisecond
// cache hits through multi-second fleet simulations.
var defBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}
