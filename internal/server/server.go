// Package server is the HTTP front-end of capserved: it exposes the
// capacity-planning pipeline (simulate, plan, validate, forecast) as an
// async job API backed by a bounded worker pool (internal/jobs) and a keyed
// result cache (internal/jobcache), and exports Prometheus text-format
// metrics without external dependencies.
//
// Endpoints:
//
//	POST /v1/simulate   submit a fleet-simulation job
//	POST /v1/plan       submit a simulate+plan job
//	POST /v1/validate   submit an offline A/B validation job
//	POST /v1/forecast   submit a workload-forecast job
//	GET  /v1/jobs/{id}  job state and, when done, its result
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text exposition
//
// Submissions return 202 with a job envelope; pass ?wait=true (or a
// duration, ?wait=30s) to block until the job is terminal and receive the
// result inline. Identical requests are answered from the result cache and
// deduplicated in flight, so repeated what-if queries cost one simulation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"headroom/internal/jobcache"
	"headroom/internal/jobs"
)

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// Workers sizes the job worker pool; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending job queue; default 4 × Workers.
	// Submissions beyond it receive 503.
	QueueDepth int
	// CacheSize bounds the result cache (number of results); default 128.
	CacheSize int
	// JobTimeout is the per-job deadline; default 5 minutes.
	JobTimeout time.Duration
	// Shards is the aggregation shard count passed to sessions
	// (0 = one per CPU). Shard count never changes results, so it is
	// excluded from cache keys.
	Shards int
	// DrainTimeout bounds graceful shutdown: connection draining plus job
	// draining; default 30 seconds.
	DrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies; default 8 MiB (forecast series
	// can be large).
	MaxBodyBytes int64
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server wires handlers, the job queue, the result cache and metrics.
type Server struct {
	cfg     Config
	queue   *jobs.Queue
	cache   *jobcache.Cache
	reg     *registry
	mux     *http.ServeMux
	handler http.Handler

	m serverMetrics
}

// serverMetrics holds the pre-registered metric series.
type serverMetrics struct {
	jobsSubmitted map[string]*counter // by kind
	jobsDone      map[string]*counter
	jobsFailed    map[string]*counter
	reqTotal      map[string]*counter   // by handler
	reqDuration   map[string]*histogram // by handler
	badRequests   *counter
	queueFull     *counter
}

// endpoints the server serves jobs for, used to pre-register labelled
// metric series.
var jobKinds = []string{"simulate", "plan", "validate", "forecast"}

// New builds a Server and starts its worker pool. Call Shutdown (or Serve
// with a cancellable context) to drain it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: jobcache.New(cfg.CacheSize),
		reg:   newRegistry(),
		mux:   http.NewServeMux(),
	}
	s.queue = jobs.New(jobs.Config{
		Workers:       cfg.Workers,
		QueueDepth:    cfg.QueueDepth,
		Timeout:       cfg.JobTimeout,
		OnStateChange: s.onJobState,
	})
	s.initMetrics()
	s.routes()
	s.handler = s.mux
	return s
}

func (s *Server) initMetrics() {
	m := &s.m
	m.jobsSubmitted = map[string]*counter{}
	m.jobsDone = map[string]*counter{}
	m.jobsFailed = map[string]*counter{}
	m.reqTotal = map[string]*counter{}
	m.reqDuration = map[string]*histogram{}
	for _, kind := range jobKinds {
		m.jobsSubmitted[kind] = s.reg.counter("capserved_jobs_submitted_total",
			"Jobs accepted into the queue.", labels{"kind": kind})
		m.jobsDone[kind] = s.reg.counter("capserved_jobs_completed_total",
			"Jobs finished, by outcome.", labels{"kind": kind, "state": "done"})
		m.jobsFailed[kind] = s.reg.counter("capserved_jobs_completed_total",
			"Jobs finished, by outcome.", labels{"kind": kind, "state": "failed"})
	}
	for _, h := range append([]string{"jobs", "healthz", "metrics"}, jobKinds...) {
		m.reqTotal[h] = s.reg.counter("capserved_http_requests_total",
			"HTTP requests served, by handler.", labels{"handler": h})
		m.reqDuration[h] = s.reg.histogram("capserved_request_duration_seconds",
			"HTTP request latency, by handler.", labels{"handler": h}, defBuckets)
	}
	m.badRequests = s.reg.counter("capserved_bad_requests_total",
		"Requests rejected by validation.", nil)
	m.queueFull = s.reg.counter("capserved_queue_rejections_total",
		"Submissions rejected because the job queue was full.", nil)

	s.reg.gauge("capserved_jobs_running", "Jobs currently executing.", nil,
		func() float64 { return float64(s.queue.Stats().Running) })
	s.reg.gauge("capserved_queue_depth", "Jobs waiting for a worker.", nil,
		func() float64 { return float64(s.queue.Stats().Depth) })
	s.reg.gauge("capserved_workers", "Worker-pool size.", nil,
		func() float64 { return float64(s.queue.Workers()) })
	s.reg.counterFunc("capserved_cache_hits_total",
		"Job submissions answered from the result cache.", nil,
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.reg.counterFunc("capserved_cache_misses_total",
		"Job submissions that computed a fresh result.", nil,
		func() float64 { return float64(s.cache.Stats().Misses) })
	s.reg.counterFunc("capserved_cache_deduped_total",
		"Job submissions that joined an identical in-flight computation.", nil,
		func() float64 { return float64(s.cache.Stats().Shared) })
	s.reg.gauge("capserved_cache_size", "Results currently cached.", nil,
		func() float64 { return float64(s.cache.Stats().Size) })
}

// onJobState feeds queue transitions into the completion counters.
func (s *Server) onJobState(snap jobs.Snapshot) {
	switch snap.State {
	case jobs.Done:
		if c, ok := s.m.jobsDone[snap.Kind]; ok {
			c.Inc()
		}
	case jobs.Failed:
		if c, ok := s.m.jobsFailed[snap.Kind]; ok {
			c.Inc()
		}
	}
}

func (s *Server) routes() {
	s.mux.Handle("POST /v1/simulate", s.instrument("simulate", s.handleSubmit("simulate")))
	s.mux.Handle("POST /v1/plan", s.instrument("plan", s.handleSubmit("plan")))
	s.mux.Handle("POST /v1/validate", s.instrument("validate", s.handleSubmit("validate")))
	s.mux.Handle("POST /v1/forecast", s.instrument("forecast", s.handleSubmit("forecast")))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs", http.HandlerFunc(s.handleJob)))
	s.mux.Handle("GET /healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /metrics", s.instrument("metrics", http.HandlerFunc(s.handleMetrics)))
}

// Handler returns the server's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// instrument wraps a handler with the per-endpoint request counter and
// latency histogram.
func (s *Server) instrument(name string, h http.Handler) http.Handler {
	total, dur := s.m.reqTotal[name], s.m.reqDuration[name]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		total.Inc()
		dur.Observe(time.Since(start).Seconds())
	})
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: it stops accepting, drains in-flight connections, drains the
// job queue, and returns nil on a clean drain. The drain window is
// Config.DrainTimeout.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	s.cfg.Logf("capserved: listening on %s (%d workers, cache %d)",
		ln.Addr(), s.queue.Workers(), s.cfg.CacheSize)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	s.cfg.Logf("capserved: draining (timeout %s)", s.cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := httpSrv.Shutdown(drainCtx)
	if qErr := s.queue.Close(drainCtx); err == nil {
		err = qErr
	}
	<-errCh // Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	s.cfg.Logf("capserved: drained cleanly")
	return nil
}

// Shutdown drains the job queue directly, for callers using Handler with
// their own HTTP server (httptest).
func (s *Server) Shutdown(ctx context.Context) error { return s.queue.Close(ctx) }

// --- HTTP plumbing -------------------------------------------------------

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.m.badRequests.Inc()
	writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
}

// jobView is the wire representation of a job.
type jobView struct {
	JobID    string          `json:"job_id"`
	Kind     string          `json:"kind"`
	State    jobs.State      `json:"state"`
	Attempts int             `json:"attempts,omitempty"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
	Self     string          `json:"self"`
}

func viewOf(j *jobs.Job) jobView {
	snap := j.Snapshot()
	v := jobView{
		JobID:    snap.ID,
		Kind:     snap.Kind,
		State:    snap.State,
		Attempts: snap.Attempts,
		Created:  snap.Created,
		Self:     "/v1/jobs/" + snap.ID,
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		v.Started = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		v.Finished = &t
	}
	if snap.State == jobs.Done {
		if raw, ok := snap.Result.(json.RawMessage); ok {
			v.Result = raw
		}
	}
	if snap.State == jobs.Failed && snap.Err != nil {
		v.Error = snap.Err.Error()
	}
	return v
}

// handleSubmit decodes, validates and canonicalizes a request for kind,
// then submits a job that computes through the result cache.
func (s *Server) handleSubmit(kind string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
		if err != nil {
			s.badRequest(w, fmt.Errorf("read body: %w", err))
			return
		}
		if int64(len(body)) > s.cfg.MaxBodyBytes {
			s.m.badRequests.Inc()
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)})
			return
		}
		compute, canonical, err := s.buildJob(kind, body)
		if err != nil {
			s.badRequest(w, err)
			return
		}
		// The cache key is the canonicalized request — defaults applied,
		// shard count excluded (sharding never changes results).
		key, err := jobcache.Key(kind, canonical)
		if err != nil {
			s.badRequest(w, err)
			return
		}
		j, err := s.queue.Submit(kind, func(ctx context.Context) (any, error) {
			val, _, err := s.cache.Do(key, func() (any, error) { return compute(ctx) })
			return val, err
		})
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.m.queueFull.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
			return
		case errors.Is(err, jobs.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
			return
		case err != nil:
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		s.m.jobsSubmitted[kind].Inc()

		if wait, ok := parseWait(r.URL.Query().Get("wait")); ok {
			waitCtx := r.Context()
			if wait > 0 {
				var cancel context.CancelFunc
				waitCtx, cancel = context.WithTimeout(waitCtx, wait)
				defer cancel()
			}
			j.Wait(waitCtx)
			if !j.State().Terminal() {
				// Timed out waiting: fall back to the async envelope.
				writeJSON(w, http.StatusAccepted, viewOf(j))
				return
			}
			code := http.StatusOK
			if j.State() == jobs.Failed {
				code = http.StatusUnprocessableEntity
			}
			writeJSON(w, code, viewOf(j))
			return
		}
		writeJSON(w, http.StatusAccepted, viewOf(j))
	})
}

// parseWait interprets the ?wait query parameter: absent/false → no wait,
// "true"/"1" → wait until the request context ends, a duration → wait at
// most that long.
func parseWait(v string) (time.Duration, bool) {
	switch v {
	case "":
		return 0, false
	case "true", "1":
		return 0, true
	case "false", "0":
		return 0, false
	}
	if d, err := time.ParseDuration(v); err == nil && d > 0 {
		return d, true
	}
	return 0, false
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.queue.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, viewOf(j))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.queue.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": st.Workers,
		"running": st.Running,
		"depth":   st.Depth,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.writeText(w)
}

// CacheStats exposes cache counters for tests.
func (s *Server) CacheStats() jobcache.Stats { return s.cache.Stats() }
