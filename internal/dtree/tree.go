// Package dtree implements CART-style binary decision trees for both
// classification (Gini impurity) and regression (variance reduction),
// together with k-fold cross-validation helpers.
//
// The paper (§II-A2) trains a decision tree over a per-server feature vector
// (5/25/50/75/95th percentile CPU plus the slope, intercept and R² of a
// linear regression over those percentiles) to decide whether servers in a
// pool form a single predictable capacity-planning group. It reports a tree
// with 34 splits, R² = 0.746 and AUC = 0.9804 under 5-fold cross-validation
// with a minimum leaf size of 2000 machines. This package provides the same
// machinery at our simulated scale.
package dtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Task selects between classification and regression trees.
type Task int

const (
	// Classification grows the tree by Gini impurity; predictions are the
	// majority class probability.
	Classification Task = iota + 1
	// Regression grows the tree by variance reduction; predictions are leaf
	// means.
	Regression
)

// Config controls tree induction.
type Config struct {
	Task        Task
	MaxDepth    int // default 10
	MinLeafSize int // minimum samples per leaf; default 5
	// MinImpurityDecrease prunes splits whose impurity gain is below this
	// threshold. Default 1e-7.
	MinImpurityDecrease float64
}

func (c Config) withDefaults() Config {
	if c.Task == 0 {
		c.Task = Classification
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinLeafSize <= 0 {
		c.MinLeafSize = 5
	}
	if c.MinImpurityDecrease <= 0 {
		c.MinImpurityDecrease = 1e-7
	}
	return c
}

// Node is one node of a fitted tree. Leaves have Left == Right == nil.
type Node struct {
	// Feature and Threshold define the split: samples with
	// x[Feature] <= Threshold go left.
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node

	// Value is the leaf prediction: mean target for regression, positive-
	// class probability for classification.
	Value float64
	// N is the number of training samples that reached this node.
	N int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Tree is a fitted CART decision tree.
type Tree struct {
	Root   *Node
	Config Config
	// NumFeatures is the width of the training matrix; Predict validates
	// inputs against it.
	NumFeatures int
}

// ErrNoData is returned when Fit is called with no samples.
var ErrNoData = errors.New("dtree: no training data")

// Fit grows a tree on the feature matrix xs (rows are samples) and targets
// ys. For classification, ys must be 0 or 1.
func Fit(xs [][]float64, ys []float64, cfg Config) (*Tree, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("dtree: %d samples vs %d targets", len(xs), len(ys))
	}
	cfg = cfg.withDefaults()
	width := len(xs[0])
	if width == 0 {
		return nil, errors.New("dtree: zero-width feature vectors")
	}
	for i, row := range xs {
		if len(row) != width {
			return nil, fmt.Errorf("dtree: row %d has %d features, want %d", i, len(row), width)
		}
	}
	if cfg.Task == Classification {
		for i, y := range ys {
			if y != 0 && y != 1 {
				return nil, fmt.Errorf("dtree: classification target %v at row %d not in {0,1}", y, i)
			}
		}
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	root := grow(xs, ys, idx, cfg, 0)
	return &Tree{Root: root, Config: cfg, NumFeatures: width}, nil
}

// grow recursively builds the subtree over the sample indices idx.
func grow(xs [][]float64, ys []float64, idx []int, cfg Config, depth int) *Node {
	node := &Node{N: len(idx), Value: leafValue(ys, idx)}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeafSize {
		return node
	}
	imp := impurity(ys, idx, cfg.Task)
	if imp == 0 {
		return node
	}
	feature, threshold, gain := bestSplit(xs, ys, idx, cfg)
	if feature < 0 || gain < cfg.MinImpurityDecrease {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if xs[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeafSize || len(right) < cfg.MinLeafSize {
		return node
	}
	node.Feature = feature
	node.Threshold = threshold
	node.Left = grow(xs, ys, left, cfg, depth+1)
	node.Right = grow(xs, ys, right, cfg, depth+1)
	return node
}

func leafValue(ys []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += ys[i]
	}
	return s / float64(len(idx))
}

// impurity returns Gini impurity (classification) or variance (regression)
// over the indexed samples.
func impurity(ys []float64, idx []int, task Task) float64 {
	if len(idx) == 0 {
		return 0
	}
	if task == Classification {
		var pos float64
		for _, i := range idx {
			pos += ys[i]
		}
		p := pos / float64(len(idx))
		return 2 * p * (1 - p)
	}
	var s, ss float64
	for _, i := range idx {
		s += ys[i]
		ss += ys[i] * ys[i]
	}
	n := float64(len(idx))
	m := s / n
	return ss/n - m*m
}

// bestSplit scans every feature and every midpoint between adjacent distinct
// values for the split with the largest weighted impurity decrease.
func bestSplit(xs [][]float64, ys []float64, idx []int, cfg Config) (feature int, threshold, gain float64) {
	parent := impurity(ys, idx, cfg.Task)
	n := float64(len(idx))
	feature = -1

	order := make([]int, len(idx))
	for f := 0; f < len(xs[idx[0]]); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return xs[order[a]][f] < xs[order[b]][f] })

		// Incremental sufficient statistics for left/right partitions.
		var lSum, lSS, lPos float64
		var rSum, rSS, rPos float64
		for _, i := range order {
			rSum += ys[i]
			rSS += ys[i] * ys[i]
			rPos += ys[i]
		}
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			lSum += ys[i]
			lSS += ys[i] * ys[i]
			lPos += ys[i]
			rSum -= ys[i]
			rSS -= ys[i] * ys[i]
			rPos -= ys[i]

			if xs[order[k]][f] == xs[order[k+1]][f] {
				continue // can't split between identical values
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < cfg.MinLeafSize || int(nr) < cfg.MinLeafSize {
				continue
			}
			var childImp float64
			if cfg.Task == Classification {
				pl := lPos / nl
				pr := rPos / nr
				childImp = (nl*2*pl*(1-pl) + nr*2*pr*(1-pr)) / n
			} else {
				ml := lSum / nl
				mr := rSum / nr
				vl := lSS/nl - ml*ml
				vr := rSS/nr - mr*mr
				childImp = (nl*vl + nr*vr) / n
			}
			if g := parent - childImp; g > gain {
				gain = g
				feature = f
				threshold = (xs[order[k]][f] + xs[order[k+1]][f]) / 2
			}
		}
	}
	return feature, threshold, gain
}

// Predict returns the tree's output for a single feature vector: the leaf
// mean (regression) or positive-class probability (classification).
func (t *Tree) Predict(x []float64) (float64, error) {
	if len(x) != t.NumFeatures {
		return 0, fmt.Errorf("dtree: input has %d features, want %d", len(x), t.NumFeatures)
	}
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value, nil
}

// PredictClass returns the hard 0/1 classification for x using a 0.5
// probability cut-off.
func (t *Tree) PredictClass(x []float64) (float64, error) {
	p, err := t.Predict(x)
	if err != nil {
		return 0, err
	}
	if p >= 0.5 {
		return 1, nil
	}
	return 0, nil
}

// Splits returns the number of internal (split) nodes; the paper reports
// its grouping tree used 34 splits.
func (t *Tree) Splits() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		if n == nil || n.IsLeaf() {
			return 0
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(t.Root)
}

// Depth returns the maximum depth of the tree (a lone root has depth 0).
func (t *Tree) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		if n == nil || n.IsLeaf() {
			return 0
		}
		l, r := depth(n.Left), depth(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.Root)
}

// CVResult summarises a k-fold cross-validation run.
type CVResult struct {
	// R2 is the coefficient of determination of out-of-fold predictions
	// against true targets.
	R2 float64
	// AUC is the ranking quality of out-of-fold positive-class
	// probabilities (classification only; NaN for regression with
	// non-binary targets).
	AUC float64
	// Accuracy is the out-of-fold 0/1 accuracy at the 0.5 cut
	// (classification only).
	Accuracy float64
	Folds    int
}

// CrossValidate runs k-fold cross-validation of a tree configuration and
// scores the pooled out-of-fold predictions. folds maps each fold to its
// train/test index sets (as produced by stats.KFold, passed in to avoid a
// dependency cycle).
func CrossValidate(xs [][]float64, ys []float64, cfg Config, folds []struct{ Train, Test []int }) (CVResult, error) {
	if len(folds) < 2 {
		return CVResult{}, fmt.Errorf("dtree: need >= 2 folds, got %d", len(folds))
	}
	preds := make([]float64, len(ys))
	seen := make([]bool, len(ys))
	for fi, fold := range folds {
		trX := make([][]float64, len(fold.Train))
		trY := make([]float64, len(fold.Train))
		for i, j := range fold.Train {
			trX[i] = xs[j]
			trY[i] = ys[j]
		}
		tree, err := Fit(trX, trY, cfg)
		if err != nil {
			return CVResult{}, fmt.Errorf("dtree: fold %d: %w", fi, err)
		}
		for _, j := range fold.Test {
			p, err := tree.Predict(xs[j])
			if err != nil {
				return CVResult{}, fmt.Errorf("dtree: fold %d predict: %w", fi, err)
			}
			preds[j] = p
			seen[j] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			return CVResult{}, fmt.Errorf("dtree: sample %d never held out", i)
		}
	}

	res := CVResult{Folds: len(folds), AUC: math.NaN(), Accuracy: math.NaN()}
	res.R2 = rSquared(ys, preds)
	if cfg.withDefaults().Task == Classification {
		labels := make([]bool, len(ys))
		binary := true
		for i, y := range ys {
			if y != 0 && y != 1 {
				binary = false
				break
			}
			labels[i] = y == 1
		}
		if binary {
			if auc, err := aucScore(labels, preds); err == nil {
				res.AUC = auc
			}
			correct := 0
			for i := range ys {
				hard := 0.0
				if preds[i] >= 0.5 {
					hard = 1
				}
				if hard == ys[i] {
					correct++
				}
			}
			res.Accuracy = float64(correct) / float64(len(ys))
		}
	}
	return res, nil
}

// rSquared duplicates stats.RSquared to keep dtree dependency-free; it
// follows the same zero-variance conventions.
func rSquared(ys, preds []float64) float64 {
	var my float64
	for _, y := range ys {
		my += y
	}
	my /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ys {
		r := ys[i] - preds[i]
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// aucScore is a local Mann-Whitney AUC (mid-rank ties).
func aucScore(labels []bool, scores []float64) (float64, error) {
	type obs struct {
		score float64
		pos   bool
	}
	data := make([]obs, len(labels))
	var nPos, nNeg int
	for i := range labels {
		data[i] = obs{scores[i], labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, errors.New("dtree: single-class AUC undefined")
	}
	sort.Slice(data, func(i, j int) bool { return data[i].score < data[j].score })
	var rankSumPos float64
	i := 0
	for i < len(data) {
		j := i
		for j < len(data) && data[j].score == data[i].score {
			j++
		}
		midRank := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if data[k].pos {
				rankSumPos += midRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}
