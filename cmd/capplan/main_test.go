package main

import (
	"context"
	"os"
	"testing"
)

func TestRejectsInvalidFlags(t *testing.T) {
	cases := [][]string{
		{}, // missing -in
		{"-in", "t.csv", "-budget", "0"},
		{"-in", "t.csv", "-budget", "-3"},
		{"-in", "t.csv", "-shards", "-1"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, os.Stdout); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
}
