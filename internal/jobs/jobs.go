// Package jobs is the async execution backbone of capserved: a bounded
// worker pool fed by a bounded queue, with per-job deadlines, retry with
// exponential backoff for transient failures, and job states queryable by
// ID (pending → running → done | failed).
//
// The queue is deliberately generic — a job is any func(ctx) (any, error) —
// so the server layer owns request decoding and result shaping while this
// package owns scheduling, lifecycle and draining.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"headroom/internal/obs"
)

// State is a job's lifecycle phase.
type State string

const (
	// Pending means the job is queued but no worker has picked it up.
	Pending State = "pending"
	// Running means a worker is executing the job (or sleeping between
	// retry attempts).
	Running State = "running"
	// Done means the job finished successfully; its Result is set.
	Done State = "done"
	// Failed means the job exhausted its attempts or hit a permanent
	// error; its Err is set.
	Failed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed }

// ErrTransient marks an error as retryable. Wrap with Transient (or any
// wrapping that satisfies errors.Is(err, ErrTransient)) to ask the queue to
// retry the job with backoff instead of failing it outright.
var ErrTransient = errors.New("transient failure")

// Transient wraps err so the queue retries the job. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err asks for a retry.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// ErrQueueFull is returned by Submit when the pending queue is at capacity.
// Callers should surface it as backpressure (HTTP 503) rather than block.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("jobs: queue closed")

// Func is the work a job performs. The context carries the per-job deadline
// and is cancelled when the queue shuts down hard (drain deadline passed).
type Func func(ctx context.Context) (any, error)

// Job is one submitted unit of work. Fields are read through the accessor
// methods, which are safe for concurrent use while the job runs.
type Job struct {
	// ID is the queue-unique identifier ("j-000042").
	ID string
	// Kind is a caller-supplied label ("plan", "simulate"), used for
	// metrics and listings.
	Kind string

	fn   Func
	done chan struct{}

	// span covers the job's whole lifetime (enqueue → terminal state) when
	// the submitting context carried a trace; vals propagates the submit
	// context's values (trace, request id) into the worker, detached from
	// its cancellation.
	span *obs.Span
	vals context.Context

	mu        sync.Mutex
	state     State
	result    any
	err       error
	attempts  int
	created   time.Time
	started   time.Time
	finished  time.Time
	meta      map[string]any
	onFinish  func(*Job)
	onRunning func(*Job)
}

// TraceID returns the trace the job was submitted under, or "".
func (j *Job) TraceID() string { return j.span.TraceID() }

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot is a consistent copy of a job's observable state.
type Snapshot struct {
	ID       string
	Kind     string
	State    State
	Result   any
	Err      error
	Attempts int
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// TraceID identifies the trace the job was submitted under, or "".
	TraceID string
	// Meta holds annotations attached during execution via Annotate —
	// e.g. which workers a distributed job's shards were placed on. Nil
	// when the job has none.
	Meta map[string]any
}

// Snapshot returns a consistent copy of the job's observable state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	var meta map[string]any
	if len(j.meta) > 0 {
		meta = make(map[string]any, len(j.meta))
		for k, v := range j.meta {
			meta[k] = v
		}
	}
	return Snapshot{
		ID: j.ID, Kind: j.Kind, State: j.state,
		Result: j.result, Err: j.err, Attempts: j.attempts,
		Created: j.created, Started: j.started, Finished: j.finished,
		TraceID: j.span.TraceID(),
		Meta:    meta,
	}
}

// annotate attaches one metadata key to the job.
func (j *Job) annotate(key string, value any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.meta == nil {
		j.meta = make(map[string]any)
	}
	j.meta[key] = value
}

// jobCtxKey carries the executing *Job in its execution context, so code
// deep inside a job (the distributed coordinator, notably) can annotate it
// without plumbing the Job through every layer.
type jobCtxKey struct{}

// Annotate attaches a metadata key/value to the job executing under ctx,
// visible in later Snapshots (and thus in job status responses). It reports
// whether ctx belonged to a running job; outside one it is a no-op, so
// library code may call it unconditionally.
func Annotate(ctx context.Context, key string, value any) bool {
	j, ok := ctx.Value(jobCtxKey{}).(*Job)
	if !ok || j == nil {
		return false
	}
	j.annotate(key, value)
	return true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx is cancelled, returning the
// result or the job/context error.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.result, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = Running
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.attempts++
	cb := j.onRunning
	j.mu.Unlock()
	if cb != nil {
		cb(j)
	}
}

func (j *Job) finish(result any, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = Failed
		j.err = err
	} else {
		j.state = Done
		j.result = result
	}
	j.finished = time.Now()
	cb := j.onFinish
	j.mu.Unlock()
	close(j.done)
	if cb != nil {
		cb(j)
	}
}

// Config sizes a Queue. Zero values take the documented defaults.
type Config struct {
	// Workers is the worker-pool size; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending queue; Submit returns ErrQueueFull
	// beyond it. Default 4 × Workers.
	QueueDepth int
	// Timeout is the per-job deadline measured from the moment a worker
	// first picks the job up (it spans retries). Zero means no deadline.
	Timeout time.Duration
	// MaxAttempts bounds executions of a job whose error is transient
	// (see Transient). Default 3; permanent errors never retry.
	MaxAttempts int
	// Backoff is the sleep before the first retry, doubling per attempt
	// with seeded jitter (each retry sleeps a uniform value in
	// [Backoff/2, Backoff] of the doubled base), so synchronized retries
	// cannot stampede the queue. Default 50 ms.
	Backoff time.Duration
	// Seed drives the backoff jitter deterministically; default 1.
	Seed int64
	// OnStateChange, when set, is invoked after every job transition
	// (running, done, failed). Used by the server for metrics.
	OnStateChange func(Snapshot)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Queue runs submitted jobs on a bounded worker pool and retains every job
// (terminal or not) for lookup by ID until Forget or shutdown.
type Queue struct {
	cfg    Config
	pend   chan *Job
	seq    atomic.Uint64
	hardMu sync.Mutex
	hard   context.Context // cancels running jobs past the drain deadline
	kill   context.CancelFunc

	wg sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	rngMu sync.Mutex
	rng   *rand.Rand // seeded backoff jitter

	running atomic.Int64
}

// New starts a queue with cfg.Workers workers. Call Close to drain it.
func New(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	hard, kill := context.WithCancel(context.Background())
	q := &Queue{
		cfg:  cfg,
		pend: make(chan *Job, cfg.QueueDepth),
		hard: hard,
		kill: kill,
		jobs: make(map[string]*Job),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Workers returns the pool size.
func (q *Queue) Workers() int { return q.cfg.Workers }

// QueueDepth returns the pending queue's capacity bound.
func (q *Queue) QueueDepth() int { return q.cfg.QueueDepth }

// Submit enqueues fn as a new job labelled kind. It never blocks: when the
// pending queue is full it returns ErrQueueFull, and after Close it returns
// ErrClosed.
func (q *Queue) Submit(kind string, fn Func) (*Job, error) {
	return q.SubmitCtx(context.Background(), kind, fn)
}

// SubmitCtx is Submit with a caller context: the context's values (active
// trace span, request id) propagate into the job's execution context —
// detached from the caller's cancellation, since the job outlives the
// request that submitted it. When ctx carries a trace, the job records an
// enqueue→terminal span with queue-wait and run-time attributes, and its
// spans (and the session spans inside it) nest under the caller's.
func (q *Queue) SubmitCtx(ctx context.Context, kind string, fn Func) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &Job{
		ID:      fmt.Sprintf("j-%06d", q.seq.Add(1)),
		Kind:    kind,
		fn:      fn,
		done:    make(chan struct{}),
		state:   Pending,
		created: time.Now(),
	}
	vals, span := obs.StartSpan(ctx, "jobs.job", obs.Str("kind", kind), obs.Str("job_id", j.ID))
	j.span = span
	j.vals = vals
	if cb := q.cfg.OnStateChange; cb != nil {
		j.onRunning = func(j *Job) { cb(j.Snapshot()) }
		j.onFinish = func(j *Job) { cb(j.Snapshot()) }
	}

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	// Reserve the map slot under the lock so a Get racing the Submit sees
	// the job as soon as Submit succeeds.
	q.jobs[j.ID] = j
	q.mu.Unlock()

	select {
	case q.pend <- j:
		return j, nil
	default:
		q.mu.Lock()
		delete(q.jobs, j.ID)
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Get returns the job with the given ID.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Forget drops a terminal job from the lookup table, bounding memory for
// long-running servers. Non-terminal jobs are kept.
func (q *Queue) Forget(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok && j.State().Terminal() {
		delete(q.jobs, id)
	}
}

// Stats is a point-in-time view of queue load.
type Stats struct {
	// Depth is the number of jobs waiting for a worker.
	Depth int
	// Running is the number of jobs currently executing.
	Running int
	// Workers is the pool size.
	Workers int
}

// Stats returns current queue load.
func (q *Queue) Stats() Stats {
	return Stats{Depth: len(q.pend), Running: int(q.running.Load()), Workers: q.cfg.Workers}
}

// Close drains the queue: it stops accepting submissions, lets queued and
// in-flight jobs finish, and returns when all workers have exited. If ctx
// is cancelled first, running jobs have their contexts cancelled (failing
// them promptly) and Close returns ctx.Err().
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	already := q.closed
	q.closed = true
	q.mu.Unlock()
	if !already {
		close(q.pend)
	}

	drained := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		q.kill() // cancel in-flight job contexts
		<-drained
		return ctx.Err()
	}
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for j := range q.pend {
		q.running.Add(1)
		q.run(j)
		q.running.Add(-1)
	}
}

// valuesCtx carries cancellation and deadline from base while resolving
// values through vals first — how a job runs under the queue's shutdown
// context yet keeps the submitting request's trace linkage.
type valuesCtx struct {
	context.Context                 // base: cancellation, deadline
	vals            context.Context // values: trace span, request metadata
}

func (c valuesCtx) Value(k any) any {
	if v := c.vals.Value(k); v != nil {
		return v
	}
	return c.Context.Value(k)
}

// run executes one job, retrying transient failures with exponential
// backoff until MaxAttempts or the job deadline.
func (q *Queue) run(j *Job) {
	var ctx context.Context = valuesCtx{Context: q.hard, vals: j.vals}
	var cancel context.CancelFunc
	if q.cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, q.cfg.Timeout)
		defer cancel()
	}
	ctx = obs.WithJobID(ctx, j.ID)
	ctx = context.WithValue(ctx, jobCtxKey{}, j)

	// Queue-wait vs run split: how long the job sat pending, then how long
	// it executed (spanning retries).
	pickup := time.Now()
	wait := pickup.Sub(j.created)
	obs.ObserveQueueWait(wait)
	j.span.Event("jobs.queued", j.created, wait, obs.Int64("queue_wait_ns", wait.Nanoseconds()))
	defer func() {
		run := time.Since(pickup)
		obs.ObserveJobRun(run)
		snap := j.Snapshot()
		j.span.SetAttr(
			obs.Str("state", string(snap.State)),
			obs.Int("attempts", snap.Attempts),
			obs.Int64("queue_wait_ns", wait.Nanoseconds()),
			obs.Int64("run_ns", run.Nanoseconds()),
		)
		if snap.Err != nil {
			j.span.RecordError(snap.Err)
		}
		j.span.End()
	}()

	backoff := q.cfg.Backoff
	for attempt := 1; ; attempt++ {
		j.setRunning()
		attemptCtx, sp := obs.StartSpan(ctx, "jobs.attempt", obs.Int("attempt", attempt))
		result, err := safeCall(attemptCtx, j.fn)
		sp.RecordError(err)
		sp.End()
		if err == nil {
			j.finish(result, nil)
			return
		}
		retryable := IsTransient(err) && attempt < q.cfg.MaxAttempts && ctx.Err() == nil
		if !retryable {
			j.finish(nil, err)
			return
		}
		sleep := q.jitter(backoff)
		// Cap cumulative retry time by the job deadline: a sleep that
		// cannot finish before the deadline would only burn a worker, so
		// give up now with the last real error.
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= sleep {
			j.finish(nil, fmt.Errorf("jobs: retry abandoned after %d attempts (backoff %s exceeds job deadline): %w",
				attempt, sleep, err))
			return
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			j.finish(nil, fmt.Errorf("%w (after %d attempts: %w)", ctx.Err(), attempt, err))
			return
		}
		backoff *= 2
	}
}

// jitter returns a seeded half-jittered sleep in [backoff/2, backoff].
func (q *Queue) jitter(backoff time.Duration) time.Duration {
	half := backoff / 2
	if half <= 0 {
		return backoff
	}
	q.rngMu.Lock()
	defer q.rngMu.Unlock()
	return half + time.Duration(q.rng.Int63n(int64(half)+1))
}

// safeCall invokes fn, converting a panic into a permanent job failure so
// one bad request cannot take a worker (or the server) down.
func safeCall(ctx context.Context, fn Func) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v", r)
		}
	}()
	return fn(ctx)
}
