// Package optimize implements Step 2 of the capacity-planning methodology
// (§II-B of the paper): determining the minimal server count for each pool
// that still meets its QoS, using historical data, natural experiments, and
// iterative server-reduction experiments driven by Response Surface
// Methodology (RSM).
//
// Two complementary model families are provided, matching the paper:
//
//   - Workload models (Figures 8-11): %CPU as a linear function of
//     RPS/server and p95 latency as a quadratic, fitted on pool history and
//     used to forecast the effect of a reduction (fewer servers ⇒ more
//     RPS/server at the same total load).
//
//   - Load-partitioned server-count models (eq. (1), Figure 7): time points
//     are partitioned by total pool workload; within each partition a robust
//     second-order polynomial lat ≈ a2·n² + a1·n + a0 is fitted against the
//     observed server count n, isolating the capacity effect from the
//     traffic effect.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"headroom/internal/metrics"
	"headroom/internal/stats"
)

// PoolModel is the black-box workload→resource/QoS model of one pool in one
// datacenter, fitted from per-tick pool aggregates.
type PoolModel struct {
	// CPU is the linear %CPU model against RPS/server (Figure 8/10).
	CPU stats.LinearFit
	// Latency is the quadratic p95-latency model against RPS/server
	// (Figure 9/11).
	Latency stats.Polynomial
	// Windows is the number of observation windows behind the fits.
	Windows int
}

// FitPoolModel fits the workload models from pool history.
func FitPoolModel(series []metrics.TickStat) (PoolModel, error) {
	if len(series) < 6 {
		return PoolModel{}, fmt.Errorf("optimize: need >= 6 windows, got %d", len(series))
	}
	xs := make([]float64, 0, len(series))
	cpu := make([]float64, 0, len(series))
	lat := make([]float64, 0, len(series))
	for _, t := range series {
		if t.Servers == 0 {
			continue
		}
		xs = append(xs, t.RPSPerServer)
		cpu = append(cpu, t.CPUMean)
		lat = append(lat, t.LatencyMean)
	}
	cf, err := stats.LinearRegression(xs, cpu)
	if err != nil {
		return PoolModel{}, fmt.Errorf("optimize: cpu fit: %w", err)
	}
	lf, err := stats.PolyFit(xs, lat, 2)
	if err != nil {
		return PoolModel{}, fmt.Errorf("optimize: latency fit: %w", err)
	}
	return PoolModel{CPU: cf, Latency: lf, Windows: len(xs)}, nil
}

// Forecast is the predicted operating point of a pool after a capacity
// change.
type Forecast struct {
	// RPSPerServer is the per-server load implied by the new server count
	// at the reference total load.
	RPSPerServer float64
	// CPUPct and LatencyMs are the model predictions at that load.
	CPUPct    float64
	LatencyMs float64
}

// ForecastReduction predicts the pool's operating point when the server
// count changes from current to proposed at a fixed total workload
// (totalRPS). This is the calculation behind the paper's "predicted the
// 95th-perc. latency to be 31.5 ms after removing 30% of servers".
func (m PoolModel) ForecastReduction(totalRPS float64, current, proposed int) (Forecast, error) {
	if current <= 0 || proposed <= 0 {
		return Forecast{}, fmt.Errorf("optimize: non-positive server count (%d -> %d)", current, proposed)
	}
	if totalRPS < 0 {
		return Forecast{}, fmt.Errorf("optimize: negative total RPS %v", totalRPS)
	}
	perServer := totalRPS / float64(proposed)
	return Forecast{
		RPSPerServer: perServer,
		CPUPct:       m.CPU.Predict(perServer),
		LatencyMs:    m.Latency.Predict(perServer),
	}, nil
}

// MaxReduction returns the smallest server count (and the savings fraction)
// that keeps the forecast latency within qosLimitMs at the given reference
// total load. It scans downward from current-1; the forecast latency is the
// quadratic model's value at the implied per-server load.
func (m PoolModel) MaxReduction(totalRPS float64, current int, qosLimitMs float64) (servers int, savingsFrac float64, err error) {
	if current <= 0 {
		return 0, 0, fmt.Errorf("optimize: non-positive server count %d", current)
	}
	best := current
	for n := current - 1; n >= 1; n-- {
		f, err := m.ForecastReduction(totalRPS, current, n)
		if err != nil {
			return 0, 0, err
		}
		// Stop as soon as QoS would be violated or the CPU model leaves
		// its trustworthy range (beyond 100% a server cannot serve).
		if f.LatencyMs > qosLimitMs || f.CPUPct >= 100 {
			break
		}
		best = n
	}
	return best, 1 - float64(best)/float64(current), nil
}

// ObsPoint is one (server count, latency) observation inside a total-load
// partition, in the paper's notation one (n_idjk, l_idjk) pair.
type ObsPoint struct {
	Tick     int
	Servers  float64
	Latency  float64
	TotalRPS float64
}

// Partition is one total-load bucket r_idj with its observations t_idj.
type Partition struct {
	LoadLo, LoadHi float64
	Points         []ObsPoint
}

// PartitionByLoad splits pool history into j buckets of total workload with
// (approximately) equal observation counts, the {r_idj} partitioning of
// §II-B2. Quantile-based bucket edges keep "sufficient data within each
// heavily used partition".
func PartitionByLoad(series []metrics.TickStat, j int) ([]Partition, error) {
	if j < 1 {
		return nil, fmt.Errorf("optimize: need >= 1 partition, got %d", j)
	}
	var pts []ObsPoint
	for _, t := range series {
		if t.Servers == 0 {
			continue
		}
		pts = append(pts, ObsPoint{Tick: t.Tick, Servers: float64(t.Servers), Latency: t.LatencyMean, TotalRPS: t.TotalRPS})
	}
	return PartitionPoints(pts, j)
}

// PartitionPoints is PartitionByLoad over raw observation points.
func PartitionPoints(points []ObsPoint, j int) ([]Partition, error) {
	if j < 1 {
		return nil, fmt.Errorf("optimize: need >= 1 partition, got %d", j)
	}
	pts := append([]ObsPoint(nil), points...)
	if len(pts) < j {
		return nil, fmt.Errorf("optimize: %d observations for %d partitions", len(pts), j)
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].TotalRPS < pts[b].TotalRPS })
	parts := make([]Partition, j)
	for k := 0; k < j; k++ {
		lo, hi := k*len(pts)/j, (k+1)*len(pts)/j
		seg := pts[lo:hi]
		p := Partition{Points: append([]ObsPoint(nil), seg...)}
		p.LoadLo = seg[0].TotalRPS
		p.LoadHi = seg[len(seg)-1].TotalRPS
		// Restore time order within the partition.
		sort.Slice(p.Points, func(a, b int) bool { return p.Points[a].Tick < p.Points[b].Tick })
		parts[k] = p
	}
	return parts, nil
}

// LatencyVsServers fits the paper's equation (1) — a robust second-order
// polynomial of latency against server count — within one total-load
// partition. Production partitions are contaminated by deployments and
// traffic shifts, hence RANSAC.
func LatencyVsServers(p Partition, seed int64) (stats.RANSACResult, error) {
	if len(p.Points) < 8 {
		return stats.RANSACResult{}, fmt.Errorf("optimize: partition has %d points, need >= 8", len(p.Points))
	}
	ns := make([]float64, len(p.Points))
	ls := make([]float64, len(p.Points))
	for i, pt := range p.Points {
		ns[i] = pt.Servers
		ls[i] = pt.Latency
	}
	res, err := stats.RANSAC(ns, ls, stats.RANSACConfig{Degree: 2, Seed: seed, MaxIterations: 300})
	if err != nil {
		return stats.RANSACResult{}, fmt.Errorf("optimize: %w", err)
	}
	return res, nil
}

// EventValidation compares a model fitted before a natural experiment with
// the observations during it (§II-B1, Figures 4-6).
type EventValidation struct {
	// Model is the pre-event fit.
	Model PoolModel
	// MeanAbsCPUErr and MeanAbsLatErr are the mean absolute prediction
	// errors over the event windows.
	MeanAbsCPUErr float64
	MeanAbsLatErr float64
	// PeakRPSRatio is the event's peak per-server load over the pre-event
	// p95 load (the paper's first event: ~1.56 median, 2.27 max; second
	// event: ~4x).
	PeakRPSRatio float64
	// EventWindows is the number of in-event observations scored.
	EventWindows int
}

// ValidateOnEvent fits the pool model on pre-event windows and scores it on
// the event windows. inEvent selects event ticks.
func ValidateOnEvent(series []metrics.TickStat, inEvent func(tick int) bool) (EventValidation, error) {
	if inEvent == nil {
		return EventValidation{}, errors.New("optimize: nil event selector")
	}
	var pre, during []metrics.TickStat
	for _, t := range series {
		if inEvent(t.Tick) {
			during = append(during, t)
		} else {
			pre = append(pre, t)
		}
	}
	if len(during) == 0 {
		return EventValidation{}, errors.New("optimize: no event windows selected")
	}
	model, err := FitPoolModel(pre)
	if err != nil {
		return EventValidation{}, fmt.Errorf("optimize: pre-event fit: %w", err)
	}
	var preLoads []float64
	for _, t := range pre {
		preLoads = append(preLoads, t.RPSPerServer)
	}
	preP95 := stats.Percentile(preLoads, 95)

	ev := EventValidation{Model: model, EventWindows: len(during)}
	var cpuErr, latErr, peak float64
	for _, t := range during {
		cpuErr += math.Abs(t.CPUMean - model.CPU.Predict(t.RPSPerServer))
		latErr += math.Abs(t.LatencyMean - model.Latency.Predict(t.RPSPerServer))
		if t.RPSPerServer > peak {
			peak = t.RPSPerServer
		}
	}
	ev.MeanAbsCPUErr = cpuErr / float64(len(during))
	ev.MeanAbsLatErr = latErr / float64(len(during))
	if preP95 > 0 {
		ev.PeakRPSRatio = peak / preP95
	}
	return ev, nil
}
