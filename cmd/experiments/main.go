// Command experiments regenerates the paper's evaluation artifacts — every
// table and figure plus the ablations — from the simulated fleet, printing
// the same rows/series the paper reports.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -fast
//
// Interrupting the process (Ctrl-C) cancels the in-flight experiment.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"headroom"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id   = fs.String("run", "all", "experiment ID to run, or 'all'")
		seed = fs.Int64("seed", 1, "deterministic seed")
		fast = fs.Bool("fast", false, "shorten observation horizons")
		list = fs.Bool("list", false, "list experiment IDs and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range headroom.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}
	s, err := headroom.New(ctx, headroom.WithSeed(*seed))
	if err != nil {
		return err
	}
	if *id != "all" {
		res, err := s.RunExperiment(ctx, *id, *fast)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	}
	for _, e := range headroom.Experiments() {
		res, err := s.RunExperiment(ctx, e.ID, *fast)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
