// Command capplan runs the black-box capacity-planning methodology over a
// fleet trace produced by cmd/capsim: it validates workload metrics
// (refining contaminated ones), groups servers, fits the workload→QoS
// models, and prints the right-sized server count per pool per datacenter.
//
// Usage:
//
//	capsim -days 2 -pools B,D -out bd.csv
//	capplan -in bd.csv -budget 5
//
// The trace is replayed through the same Source interface the simulator
// streams through, so the planner is agnostic to where records came from.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"headroom"
	"headroom/internal/obs"
	"headroom/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capplan:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out *os.File) error {
	fs := flag.NewFlagSet("capplan", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input trace file (csv or jsonl by extension)")
		budget   = fs.Float64("budget", 5, "acceptable latency increase in ms")
		seed     = fs.Int64("seed", 1, "seed for clustering and robust fits")
		shards   = fs.Int("shards", 0, "parallel aggregation shards (0 = one per CPU)")
		traceOut = fs.String("trace-out", "", "write a Chrome trace_event JSON of the run (load at chrome://tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Invalid flag values print usage and exit non-zero instead of
	// proceeding with a garbage configuration.
	fail := func(format string, v ...any) error {
		fmt.Fprintf(fs.Output(), format+"\n\n", v...)
		fs.Usage()
		return fmt.Errorf(format, v...)
	}
	if *in == "" {
		return fail("missing -in trace file")
	}
	if *budget <= 0 {
		return fail("budget must be positive milliseconds, got %v", *budget)
	}
	if *shards < 0 {
		return fail("shards must be >= 0 (0 = one per CPU), got %d", *shards)
	}
	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()

	var records []trace.Record
	if strings.HasSuffix(*in, ".jsonl") {
		records, err = trace.ReadJSONL(f)
	} else {
		records, err = trace.ReadCSV(f)
	}
	if err != nil {
		return fmt.Errorf("read trace: %w", err)
	}
	if len(records) == 0 {
		return fmt.Errorf("trace %q is empty", *in)
	}

	if *traceOut != "" {
		var finish func() error
		ctx, finish = obs.FileTrace(ctx, "capplan", *traceOut)
		defer func() {
			if err := finish(); err != nil {
				fmt.Fprintln(os.Stderr, "capplan:", err)
			}
		}()
	}

	s, err := headroom.New(ctx,
		headroom.WithSource(headroom.NewReplaySource(records)),
		headroom.WithShards(*shards),
		headroom.WithPlanConfig(headroom.PlanConfig{LatencyBudgetMs: *budget, Seed: *seed}),
	)
	if err != nil {
		return err
	}
	agg, err := s.Aggregate(ctx, nil)
	if err != nil {
		return err
	}
	plans, err := s.Plan(ctx, agg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%-6s %-6s %-7s %-8s %-8s %-9s %-10s %-10s %s\n",
		"pool", "dc", "groups", "current", "target", "savings", "base_ms", "fcst_ms", "status")
	var totalCur, totalNew int
	for _, p := range plans {
		status := "ok"
		if p.Refined {
			status = "ok (metric refined)"
		}
		if !p.Plannable {
			fmt.Fprintf(out, "%-6s %-6s %-7s %-8s %-8s %-9s %-10s %-10s %s\n",
				p.Pool, p.DC, "-", "-", "-", "-", "-", "-", "skipped: "+p.Reason)
			continue
		}
		totalCur += p.CurrentServers
		totalNew += p.RecommendedServers
		fmt.Fprintf(out, "%-6s %-6s %-7d %-8d %-8d %-9s %-10.1f %-10.1f %s\n",
			p.Pool, p.DC, p.Groups, p.CurrentServers, p.RecommendedServers,
			fmt.Sprintf("%.0f%%", 100*p.SavingsFrac), p.BaselineLatencyMs, p.ForecastLatencyMs, status)
	}
	if totalCur > 0 {
		fmt.Fprintf(out, "\ntotal: %d -> %d servers (%.0f%% savings) within a %.1f ms latency budget\n",
			totalCur, totalNew, 100*(1-float64(totalNew)/float64(totalCur)), *budget)
	}
	return nil
}
